//! String strategies from regex-like patterns.
//!
//! `&str` implements [`Strategy`], generating `String`s matching the
//! pattern. Supported subset (all the workspace's suites use):
//!
//! * literals and escapes (`\n`, `\t`, `\r`, `\\`, and escaped metachars)
//! * character classes `[a-z0-9_]` with ranges, singles and a trailing `-`
//! * `\PC` — any non-control character (printable), and `.` likewise
//! * quantifiers `*`, `+`, `?`, `{n}`, `{n,m}` (unbounded repeats cap at 8)

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

const UNBOUNDED_MAX: usize = 8;

/// Non-ASCII, non-control characters mixed into `\PC` / `.` output so
/// multi-byte UTF-8 paths get exercised.
const EXOTIC: &[char] = &[
    'é', 'ß', 'ñ', 'Ж', 'λ', 'Ω', '中', '文', '€', '←', '∀', '🦀',
];

/// A printable (non-control) character: mostly ASCII, sometimes beyond.
pub fn printable_char(rng: &mut TestRng) -> char {
    if rng.below(100) < 85 {
        char::from_u32(0x20 + rng.below(0x7F - 0x20) as u32).unwrap()
    } else {
        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
    }
}

#[derive(Debug, Clone)]
enum Atom {
    /// Inclusive character ranges; singles are `(c, c)`.
    Class(Vec<(char, char)>),
    Lit(char),
    Printable,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (class, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                class
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                match c {
                    'P' => {
                        // Negated one-letter Unicode category: only \PC
                        // ("not control", i.e. printable) is supported.
                        let cat = chars.get(i).copied();
                        i += 1;
                        match cat {
                            Some('C') => Atom::Printable,
                            other => {
                                panic!("unsupported category \\P{other:?} in pattern {pattern:?}")
                            }
                        }
                    }
                    'n' => Atom::Lit('\n'),
                    't' => Atom::Lit('\t'),
                    'r' => Atom::Lit('\r'),
                    'd' => Atom::Class(vec![('0', '9')]),
                    other => Atom::Lit(other),
                }
            }
            '.' => {
                i += 1;
                Atom::Printable
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Parse the body of a `[...]` class starting just past the `[`.
/// Returns the atom and the index just past the closing `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Atom, usize) {
    let mut ranges: Vec<(char, char)> = Vec::new();
    assert!(
        chars.get(i) != Some(&'^'),
        "negated classes are unsupported in pattern {pattern:?}"
    );
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            match chars[i] {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }
        } else {
            chars[i]
        };
        i += 1;
        // `x-y` range, unless the `-` is the final char of the class.
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']') {
            i += 1;
            let hi = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(
        chars.get(i) == Some(&']'),
        "unterminated class in pattern {pattern:?}"
    );
    (Atom::Class(ranges), i + 1)
}

/// Parse an optional quantifier at `*i`, advancing past it.
fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('*') => {
            *i += 1;
            (0, UNBOUNDED_MAX)
        }
        Some('+') => {
            *i += 1;
            (1, UNBOUNDED_MAX)
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated {{}} in pattern {pattern:?}"));
            let body: String = chars[*i + 1..*i + close].iter().collect();
            *i += close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => {
                    let lo = lo.trim().parse().expect("bad {n,m} lower bound");
                    let hi = hi.trim().parse().expect("bad {n,m} upper bound");
                    (lo, hi)
                }
                None => {
                    let n = body.trim().parse().expect("bad {n} count");
                    (n, n)
                }
            }
        }
        _ => (1, 1),
    }
}

fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::Printable => printable_char(rng),
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let size = (hi as u64) - (lo as u64) + 1;
                if pick < size {
                    return char::from_u32(lo as u32 + pick as u32)
                        .expect("class range spans a surrogate gap");
                }
                pick -= size;
            }
            unreachable!()
        }
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let count = rng.usize_in(piece.min, piece.max.max(piece.min));
            for _ in 0..count {
                out.push(gen_atom(&piece.atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn class_with_counts() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z]{1,6}".generate(&mut r);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn mixed_class_with_escapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-zA-Z][a-zA-Z ,\"\n_-]{0,20}[a-zA-Z]".generate(&mut r);
            assert!(s.chars().count() >= 2, "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphabetic() || " ,\"\n_-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn printable_star() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "\\PC*".generate(&mut r);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }
}
