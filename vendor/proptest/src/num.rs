//! Numeric strategies (subset of `proptest::num`).

pub mod f64 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over all *normal* `f64`s: finite, non-zero, non-subnormal,
    /// both signs, uniform over the normal bit patterns — mirrors
    /// `proptest::num::f64::NORMAL`.
    #[derive(Debug, Clone, Copy)]
    pub struct NormalF64;

    pub const NORMAL: NormalF64 = NormalF64;

    impl Strategy for NormalF64 {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let sign = rng.below(2) << 63;
            // Biased exponents 1..=2046 cover exactly the normal floats
            // (0 is zero/subnormal, 2047 is inf/NaN).
            let exponent = (1 + rng.below(2046)) << 52;
            let mantissa = rng.next_u64() & ((1u64 << 52) - 1);
            ::core::primitive::f64::from_bits(sign | exponent | mantissa)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn normal_floats_are_normal() {
            let mut rng = TestRng::from_seed(3);
            for _ in 0..2000 {
                let x = NORMAL.generate(&mut rng);
                assert!(x.is_normal(), "{x} (bits {:x})", x.to_bits());
            }
        }
    }
}
