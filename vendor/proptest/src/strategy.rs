//! The `Strategy` trait and combinators (no shrinking — generation only).

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::test_runner::TestRng;

/// A generator of values. Mirrors `proptest::strategy::Strategy`, minus
/// shrinking: `generate` produces one value per test case.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Type-erased strategy (mirrors `proptest::strategy::BoxedStrategy`).
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    source: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Rejection sampling; mirrors proptest's local-reject behaviour
        // with a hard cap instead of global bookkeeping.
        for _ in 0..10_000 {
            let candidate = self.source.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive values",
            self.reason
        );
    }
}

/// Weighted union built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Types with a canonical strategy (subset of `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix edge cases and small values in with uniform bits so
                // short runs still hit the interesting corners.
                match rng.below(8) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => (rng.below(200) as i64 - 100) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(8) {
            0 => 0.0,
            1 => -1.0,
            2 => f64::INFINITY,
            3 => f64::NAN,
            _ => (rng.unit_f64() - 0.5) * 2e6,
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::string::printable_char(rng)
    }
}

// Numeric ranges are strategies: `0u32..500`, `-100.0f64..100.0`, `1..=3`.
macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + off) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128) - (start as i128) + 1;
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((start as i128) + off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

// A Vec of strategies is a strategy for a Vec of values, element-wise.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// Tuples of strategies are strategies generating tuples of values.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
