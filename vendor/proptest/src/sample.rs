//! Sampling strategies (subset of `proptest::sample`).

use std::fmt::Debug;

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding order-preserving subsequences of `values` with a
/// size drawn from `size` (clamped to the available length). Mirrors
/// `proptest::sample::subsequence`.
pub fn subsequence<T>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T>
where
    T: Clone + Debug,
{
    let size = size.into();
    assert!(
        size.min <= values.len(),
        "subsequence size {} exceeds pool of {}",
        size.min,
        values.len()
    );
    Subsequence { values, size }
}

pub struct Subsequence<T> {
    values: Vec<T>,
    size: SizeRange,
}

impl<T: Clone + Debug> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let max = self.size.max.min(self.values.len());
        let n = rng.usize_in(self.size.min, max);
        // Partial Fisher–Yates over the index space, then restore order.
        let mut indices: Vec<usize> = (0..self.values.len()).collect();
        for i in 0..n {
            let j = rng.usize_in(i, indices.len() - 1);
            indices.swap(i, j);
        }
        let mut picked = indices[..n].to_vec();
        picked.sort_unstable();
        picked.into_iter().map(|i| self.values[i].clone()).collect()
    }
}
