//! Collection strategies (subset of `proptest::collection`).

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// `Vec` of values from `element`, with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.usize_in(self.size.min, self.size.max);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `HashSet` of values from `element`, with size in `size` where the
/// element domain allows it (small domains may saturate below `min`).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = rng.usize_in(self.size.min, self.size.max);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while out.len() < target && attempts < 20 * target + 100 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
