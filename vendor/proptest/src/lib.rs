//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors
//! a small property-testing engine under the same package name and import
//! paths: the `proptest!` macro, `Strategy` with `prop_map` /
//! `prop_flat_map` / `prop_filter`, `prop_oneof!`, `Just`, `any::<T>()`,
//! numeric range strategies, regex-subset string strategies,
//! `prop::collection::{vec, hash_set}`, `prop::sample::subsequence` and
//! `prop::num::f64::NORMAL`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs and
//!   panics; it is not minimized.
//! * **Case counts are capped for speed.** The default is
//!   [`test_runner::DEFAULT_CASES`] (32) rather than 256, and the
//!   `PROPTEST_CASES` environment variable overrides *everything*,
//!   including explicit `ProptestConfig::with_cases` values — so
//!   `PROPTEST_CASES=1024 cargo test` is the deep-run escape hatch.
//! * String strategies implement the small regex subset the workspace
//!   uses (char classes, literals, `\PC`, and `*` `+` `?` `{n}` `{n,m}`
//!   quantifiers), not full `regex-syntax`.

#![forbid(unsafe_code)]

pub mod collection;
pub mod num;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestRng};

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! Mirrors `proptest::prelude::prop`: module shorthands.
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_holds(x in 0u32..10, v in prop::collection::vec(any::<bool>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
///
/// Each test runs its body for N generated cases (see
/// [`test_runner::resolve_cases`]); on panic the generated inputs are
/// printed before the panic is propagated.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let cases = $crate::test_runner::resolve_cases(config.cases);
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                // A tuple of strategies is itself a strategy; build it once.
                let strategies = ($($strat,)+);
                for case in 0..cases {
                    let ($($arg,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                    let rendered = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || {
                            let _ = $body;
                        }),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest: {} failed at case {}/{} with inputs: {}",
                            stringify!($name), case + 1, cases, rendered
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted/unweighted union of strategies. Mirrors `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Assertion inside a `proptest!` body. This shim panics (no shrinking),
/// which fails the surrounding test case identically.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left,
                right
            ),
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(*left == *right, $($fmt)*),
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left != *right,
                "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
                left,
                right
            ),
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(*left != *right, $($fmt)*),
        }
    }};
}
