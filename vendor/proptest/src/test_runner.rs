//! Deterministic RNG and run configuration for the proptest shim.

/// Default number of cases per property. Deliberately low so the whole
/// workspace's proptest suites finish in seconds under `cargo test -q`;
/// set `PROPTEST_CASES` (e.g. `PROPTEST_CASES=1024`) for deep runs.
pub const DEFAULT_CASES: u32 = 32;

/// Resolve the case count for one property: the `PROPTEST_CASES`
/// environment variable wins over any configured value.
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_CASES must be an integer, got {v:?}")),
        Err(_) => configured,
    }
}

/// Run configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property (before `PROPTEST_CASES`).
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// Deterministic SplitMix64 generator driving all strategies.
///
/// Each property seeds its own stream from the test's fully-qualified
/// name, so runs are reproducible and independent of test order.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        };
        rng.next_u64();
        rng
    }

    /// Seed from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi]` (inclusive); panics if `lo > hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty size range {lo}..={hi}");
        lo + self.below((hi - lo + 1) as u64) as usize
    }
}
