//! Offline stand-in for the subset of `criterion` this workspace's
//! benches use: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, plus the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical sampling it runs a short warm-up,
//! then times `sample_size × iters` executions and prints mean wall time
//! per iteration. Good enough to keep benches compiling, runnable and
//! comparable in trend; swap the path dependency for the real crate for
//! publication-grade numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, f);
        self
    }
}

/// Group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Warm-up / calibration pass.
    f(&mut bencher);
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..sample_size {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        total += bencher.elapsed;
        iters += bencher.iters;
        // Keep shim bench runs short: stop sampling once we have spent
        // a modest wall-time budget on this benchmark.
        if total > Duration::from_millis(200) {
            break;
        }
    }
    let mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    println!(
        "bench {label:<40} {:>12.1} ns/iter ({iters} iters)",
        mean_ns
    );
}

/// Per-benchmark timing harness (subset of `criterion::Bencher`).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark identifier: `function-name/parameter` (subset of
/// `criterion::BenchmarkId`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Collects benchmark functions into a single runner fn named `$name`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
