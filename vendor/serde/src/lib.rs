//! Offline no-op stand-in for `serde`.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` so that
//! they serialize once the real `serde` is available, but the build
//! environment has no registry access. This shim provides the two traits
//! and derive macros under the same names; the derives expand to nothing,
//! so deriving is a no-op and nothing in-tree may *call* serialization.
//! Swap the path dependency for the real crate to activate it.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
