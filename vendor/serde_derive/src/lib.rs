//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! Each derive accepts the `#[serde(...)]` helper attribute (so field
//! annotations like `#[serde(skip)]` parse) and expands to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
