//! Concrete RNGs. `StdRng` here is a SplitMix64 generator — deterministic
//! and well-distributed, though its stream differs from the real crate's
//! ChaCha-based `StdRng`.

use crate::{RngCore, SeedableRng};

/// Deterministic seeded generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // Pre-mix so that small consecutive seeds give unrelated streams.
        let mut rng = StdRng {
            state: state ^ 0x5851_F42D_4C95_7F2D,
        };
        rng.next_u64();
        rng
    }
}
