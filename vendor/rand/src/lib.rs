//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}` and `seq::SliceRandom::shuffle`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small deterministic implementation (SplitMix64) under the
//! same package name and import paths. Swap this path dependency for the
//! real crate when a registry is available; no source changes needed.
//!
//! The stream of values differs from the real `rand` crate's `StdRng`,
//! but it is deterministic for a given seed, which is all the seeded
//! data generators and tests rely on.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Map 64 random bits to a float uniform in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing random value generation (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    fn gen<T>(&mut self) -> T
    where
        T: Standard,
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types producible by `Rng::gen` (stand-in for the `Standard` distribution).
pub trait Standard {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges samplable by `Rng::gen_range` (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128) - (start as i128) + 1;
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((start as i128) + off) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                // Closed-unit sample so `end` is reachable, matching the
                // real crate's inclusive semantics.
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                start + (unit as $t) * (end - start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
