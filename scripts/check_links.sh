#!/usr/bin/env bash
# Verify that relative markdown links in the top-level docs resolve to
# real files/directories. External (scheme-prefixed) links and pure
# in-page anchors are skipped. Exits non-zero listing every broken link.
set -euo pipefail

cd "$(dirname "$0")/.."

files=(README.md ARCHITECTURE.md ROADMAP.md vendor/README.md)
status=0

for file in "${files[@]}"; do
    [ -f "$file" ] || { echo "missing doc file: $file"; status=1; continue; }
    dir=$(dirname "$file")
    # Extract inline markdown link targets: [text](target)
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*) continue ;;  # external
            '#'*) continue ;;                          # in-page anchor
        esac
        # Strip a trailing in-page anchor from relative links.
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "$file: broken relative link -> $target"
            status=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$status" -eq 0 ]; then
    echo "all relative doc links resolve"
fi
exit "$status"
