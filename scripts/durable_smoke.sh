#!/usr/bin/env bash
# Release-mode durability smoke: snapshot a small CSV lake into a durable
# data dir in one process, then reopen it from *separate* processes —
# discover and serve must recover the lake (snapshot + commitlog replay)
# and find the seeded join, proving the on-disk format round-trips across
# process boundaries, not just within one test binary.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
csv="$workdir/csv"
data="$workdir/data"
mkdir -p "$csv"

cat > "$csv/cases_by_city.csv" <<'EOF'
city,cases
berlin,10
barcelona,20
boston,30
new delhi,40
EOF
cat > "$csv/populations.csv" <<'EOF'
city,pop
berlin,3
madrid,6
EOF
cat > "$workdir/q.csv" <<'EOF'
city,rate
berlin,0.5
barcelona,0.8
boston,0.6
EOF

run() { cargo run --release --quiet -- "$@"; }

echo "== snapshot (process 1: ingest + checkpoint) =="
run snapshot --data-dir "$data" --lake "$csv"
test -f "$data/snapshot.bin" || { echo "FAIL: no snapshot written"; exit 1; }

echo "== discover (process 2: reopen from disk) =="
out="$(run discover --data-dir "$data" --query "$workdir/q.csv" --column 0 --k 3)"
echo "$out" | grep -q "cases_by_city" \
  || { echo "FAIL: recovered lake lost the joinable table"; echo "$out"; exit 1; }

echo "== serve (process 3: reopen + serve under load) =="
out="$(run serve --data-dir "$data" --query "$workdir/q.csv" --column 0 \
        --clients 4 --requests 32 --shards 2)"
echo "$out" | grep -q "cases_by_city" \
  || { echo "FAIL: served results lost the joinable table"; echo "$out"; exit 1; }

echo "durable smoke OK"
