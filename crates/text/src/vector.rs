//! A minimal sparse vector for TF-IDF document/column representations.

/// A sparse vector stored as (dimension, weight) pairs sorted by dimension.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    entries: Vec<(u64, f64)>,
}

impl SparseVector {
    /// Build from unsorted (dimension, weight) pairs; duplicate dimensions
    /// are summed, zero weights dropped.
    pub fn from_pairs(mut pairs: Vec<(u64, f64)>) -> SparseVector {
        pairs.sort_by_key(|&(d, _)| d);
        let mut entries: Vec<(u64, f64)> = Vec::with_capacity(pairs.len());
        for (d, w) in pairs {
            match entries.last_mut() {
                Some((ld, lw)) if *ld == d => *lw += w,
                _ => entries.push((d, w)),
            }
        }
        entries.retain(|&(_, w)| w != 0.0);
        SparseVector { entries }
    }

    /// Number of non-zero dimensions.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the vector has no non-zero entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate (dimension, weight) pairs in dimension order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Dot product via sorted merge.
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let mut i = 0;
        let mut j = 0;
        let mut acc = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            let (da, wa) = self.entries[i];
            let (db, wb) = other.entries[j];
            match da.cmp(&db) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += wa * wb;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Cosine similarity; 0 when either vector is zero.
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let na = self.norm();
        let nb = other.norm();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            self.dot(other) / (na * nb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_merges_and_drops_zero() {
        let v = SparseVector::from_pairs(vec![(5, 1.0), (2, 2.0), (5, 3.0), (7, 0.0)]);
        let entries: Vec<_> = v.iter().collect();
        assert_eq!(entries, vec![(2, 2.0), (5, 4.0)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn dot_merges_sorted_dims() {
        let a = SparseVector::from_pairs(vec![(1, 2.0), (3, 1.0)]);
        let b = SparseVector::from_pairs(vec![(3, 4.0), (9, 5.0)]);
        assert_eq!(a.dot(&b), 4.0);
        assert_eq!(b.dot(&a), 4.0);
    }

    #[test]
    fn cosine_identity_and_orthogonality() {
        let a = SparseVector::from_pairs(vec![(1, 3.0), (2, 4.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
        let b = SparseVector::from_pairs(vec![(7, 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
        let zero = SparseVector::default();
        assert_eq!(a.cosine(&zero), 0.0);
    }

    #[test]
    fn norm_is_euclidean() {
        let a = SparseVector::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        assert!((a.norm() - 5.0).abs() < 1e-12);
    }
}
