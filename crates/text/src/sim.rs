//! Set, string and vector similarity measures.
//!
//! All set measures operate on [`HashSet<String>`]; the join/union search
//! literature conventions are followed: Jaccard = |∩|/|∪|, containment of
//! `q` in `x` = |q ∩ x| / |q| (the measure LSH Ensemble indexes for),
//! overlap coefficient = |∩| / min(|a|, |b|).

use std::collections::HashSet;

/// Jaccard similarity |a ∩ b| / |a ∪ b|. Two empty sets are defined to be 1.
pub fn jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Containment of `q` in `x`: |q ∩ x| / |q|. The asymmetric measure used by
/// joinable-table search (Zhu et al., VLDB'16). Empty `q` has containment 1.
pub fn containment(q: &HashSet<String>, x: &HashSet<String>) -> f64 {
    if q.is_empty() {
        return 1.0;
    }
    q.intersection(x).count() as f64 / q.len() as f64
}

/// Overlap coefficient |a ∩ b| / min(|a|, |b|); 1 if either set is empty.
pub fn overlap_coefficient(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    inter as f64 / a.len().min(b.len()) as f64
}

/// Dice coefficient 2|a ∩ b| / (|a| + |b|); 1 if both sets are empty.
pub fn dice(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    2.0 * inter as f64 / (a.len() + b.len()) as f64
}

/// Levenshtein edit distance (unit costs), O(|a|·|b|) time, O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized Levenshtein similarity in [0, 1]: `1 - dist / max_len`,
/// case-insensitive. Two empty strings are 1.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let la = a.to_lowercase();
    let lb = b.to_lowercase();
    let max = la.chars().count().max(lb.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(&la, &lb) as f64 / max as f64
}

/// Does `short` read as an acronym/initialism of `long`?
/// "USA" matches "United States of America"; stop-words (`of`, `the`, `and`)
/// may be skipped; comparison is case-insensitive and punctuation-blind
/// ("J&J" → letters `jj` matches "Johnson Johnson").
pub fn acronym_of(short: &str, long: &str) -> bool {
    let letters: Vec<char> = short
        .chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(char::to_lowercase)
        .collect();
    if letters.len() < 2 {
        return false;
    }
    let words = crate::tokenize::word_tokens(long);
    if words.len() < 2 {
        return false;
    }
    let initials: Vec<char> = words.iter().filter_map(|w| w.chars().next()).collect();
    if initials == letters {
        return true;
    }
    // Allow stop-words to be skipped ("United States of America" → "usa").
    const STOP: [&str; 4] = ["of", "the", "and", "for"];
    let non_stop: Vec<char> = words
        .iter()
        .filter(|w| !STOP.contains(&w.as_str()))
        .filter_map(|w| w.chars().next())
        .collect();
    non_stop == letters
}

/// Cosine similarity of two dense vectors; 0 when either has zero norm.
pub fn cosine_dense(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> HashSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jaccard_basics() {
        assert!((jaccard(&set(&["a", "b"]), &set(&["b", "c"])) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard(&set(&[]), &set(&[])), 1.0);
        assert_eq!(jaccard(&set(&["a"]), &set(&[])), 0.0);
        assert_eq!(jaccard(&set(&["a"]), &set(&["a"])), 1.0);
    }

    #[test]
    fn containment_is_asymmetric() {
        let q = set(&["berlin", "boston"]);
        let x = set(&["berlin", "boston", "barcelona", "delhi"]);
        assert_eq!(containment(&q, &x), 1.0);
        assert_eq!(containment(&x, &q), 0.5);
        assert_eq!(containment(&set(&[]), &x), 1.0);
    }

    #[test]
    fn overlap_and_dice() {
        let a = set(&["x", "y"]);
        let b = set(&["y", "z", "w"]);
        assert!((overlap_coefficient(&a, &b) - 0.5).abs() < 1e-12);
        assert!((dice(&a, &b) - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn levenshtein_known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("jnj", "jj"), 1);
    }

    #[test]
    fn levenshtein_sim_normalizes_and_ignores_case() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("ABC", "abc"), 1.0);
        assert!((levenshtein_sim("JnJ", "J&J") - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn acronyms() {
        assert!(acronym_of("USA", "United States of America"));
        assert!(acronym_of("US", "United States"));
        assert!(acronym_of("J&J", "Johnson Johnson"));
        assert!(acronym_of("FDA", "Food and Drug Administration"));
        assert!(!acronym_of("UK", "United States"));
        assert!(!acronym_of("U", "United")); // too short
        assert!(!acronym_of("USA", "USA")); // long side must be multi-word
    }

    #[test]
    fn cosine_dense_basics() {
        assert!((cosine_dense(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_dense(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert_eq!(cosine_dense(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert!((cosine_dense(&[1.0, 1.0], &[2.0, 2.0]) - 1.0).abs() < 1e-9);
    }
}
