//! Tokenizers and the FNV-1a hash used throughout the workspace for
//! deterministic, dependency-free feature hashing.

/// 64-bit FNV-1a hash. Deterministic across runs and platforms, which
/// matters for reproducible indexes and embeddings.
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Lower-cased alphanumeric word tokens. Everything that is not
/// alphanumeric separates tokens; empty tokens are dropped.
///
/// ```
/// use dialite_text::word_tokens;
/// assert_eq!(word_tokens("New-Delhi, India"), vec!["new", "delhi", "india"]);
/// ```
pub fn word_tokens(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if c.is_alphanumeric() {
            for lc in c.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Character n-grams of the lower-cased input (no padding). Returns the
/// whole string as a single gram when it is shorter than `n`.
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    let chars: Vec<char> = s.to_lowercase().chars().collect();
    if chars.is_empty() || n == 0 {
        return Vec::new();
    }
    if chars.len() <= n {
        return vec![chars.iter().collect()];
    }
    (0..=chars.len() - n)
        .map(|i| chars[i..i + n].iter().collect())
        .collect()
}

/// Padded q-grams: the input is wrapped in `q - 1` boundary markers (`#`)
/// before sliding, so that string starts/ends contribute distinct grams —
/// the classic construction for q-gram string similarity.
pub fn qgrams_padded(s: &str, q: usize) -> Vec<String> {
    if q == 0 || s.is_empty() {
        return Vec::new();
    }
    let pad = "#".repeat(q.saturating_sub(1));
    let padded = format!("{pad}{}{pad}", s.to_lowercase());
    char_ngrams(&padded, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_values() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn word_tokens_splits_and_lowercases() {
        assert_eq!(word_tokens("J&J Vaccine"), vec!["j", "j", "vaccine"]);
        assert_eq!(word_tokens("  "), Vec::<String>::new());
        assert_eq!(word_tokens("COVID-19"), vec!["covid", "19"]);
    }

    #[test]
    fn word_tokens_handles_unicode() {
        assert_eq!(word_tokens("Łódź café"), vec!["łódź", "café"]);
    }

    #[test]
    fn char_ngrams_basics() {
        assert_eq!(char_ngrams("abcd", 2), vec!["ab", "bc", "cd"]);
        assert_eq!(char_ngrams("ab", 3), vec!["ab"]);
        assert_eq!(char_ngrams("", 2), Vec::<String>::new());
        assert_eq!(char_ngrams("ABC", 2), vec!["ab", "bc"]);
    }

    #[test]
    fn char_ngrams_zero_n_is_empty() {
        assert_eq!(char_ngrams("abc", 0), Vec::<String>::new());
    }

    #[test]
    fn qgrams_pad_boundaries() {
        let grams = qgrams_padded("ab", 2);
        assert_eq!(grams, vec!["#a", "ab", "b#"]);
    }

    #[test]
    fn qgrams_q1_is_plain_chars() {
        assert_eq!(qgrams_padded("abc", 1), vec!["a", "b", "c"]);
    }
}
