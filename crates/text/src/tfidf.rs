//! TF-IDF weighting over token bags, used to represent columns as weighted
//! term vectors (e.g. for the synthesized-KB fallback of semantic search
//! and for baseline column matchers).

use std::collections::HashMap;

use crate::tokenize::fnv1a64;
use crate::vector::SparseVector;

/// A fitted TF-IDF model: document frequencies over a corpus of token bags.
///
/// Terms are identified by their FNV-1a hash, so the model never stores the
/// corpus vocabulary strings themselves.
#[derive(Debug, Clone, Default)]
pub struct TfIdf {
    doc_count: usize,
    doc_freq: HashMap<u64, usize>,
}

impl TfIdf {
    /// Fit from a corpus of documents, each a bag of tokens.
    pub fn fit<D, T>(corpus: D) -> TfIdf
    where
        D: IntoIterator<Item = T>,
        T: IntoIterator<Item = String>,
    {
        let mut model = TfIdf::default();
        for doc in corpus {
            model.add_document(doc);
        }
        model
    }

    /// Incrementally add one document to the statistics.
    pub fn add_document<T: IntoIterator<Item = String>>(&mut self, doc: T) {
        self.doc_count += 1;
        let mut seen: HashMap<u64, ()> = HashMap::new();
        for tok in doc {
            seen.entry(fnv1a64(tok.as_bytes())).or_insert(());
        }
        for term in seen.keys() {
            *self.doc_freq.entry(*term).or_insert(0) += 1;
        }
    }

    /// Number of documents the model was fitted on.
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Smoothed inverse document frequency: `ln((1 + N) / (1 + df)) + 1`.
    pub fn idf(&self, token: &str) -> f64 {
        let df = self
            .doc_freq
            .get(&fnv1a64(token.as_bytes()))
            .copied()
            .unwrap_or(0);
        ((1.0 + self.doc_count as f64) / (1.0 + df as f64)).ln() + 1.0
    }

    /// Transform a token bag into an L2-normalizable TF-IDF sparse vector
    /// (raw term frequency × smoothed idf).
    pub fn transform<'a, T: IntoIterator<Item = &'a str>>(&self, doc: T) -> SparseVector {
        let mut tf: HashMap<&str, usize> = HashMap::new();
        for tok in doc {
            *tf.entry(tok).or_insert(0) += 1;
        }
        let pairs = tf
            .into_iter()
            .map(|(tok, count)| (fnv1a64(tok.as_bytes()), count as f64 * self.idf(tok)))
            .collect();
        SparseVector::from_pairs(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn rare_terms_weigh_more() {
        let model = TfIdf::fit(vec![
            doc(&["city", "berlin"]),
            doc(&["city", "boston"]),
            doc(&["city", "delhi"]),
        ]);
        assert!(model.idf("berlin") > model.idf("city"));
        assert_eq!(model.doc_count(), 3);
    }

    #[test]
    fn unseen_terms_get_max_idf() {
        let model = TfIdf::fit(vec![doc(&["a"]), doc(&["a", "b"])]);
        assert!(model.idf("zzz") >= model.idf("b"));
        assert!(model.idf("b") > model.idf("a"));
    }

    #[test]
    fn transform_counts_term_frequency() {
        let model = TfIdf::fit(vec![doc(&["x", "y"])]);
        let v1 = model.transform(["x"]);
        let v2 = model.transform(["x", "x"]);
        assert!(v2.norm() > v1.norm());
        assert_eq!(v1.nnz(), 1);
    }

    #[test]
    fn similar_docs_have_higher_cosine() {
        let model = TfIdf::fit(vec![
            doc(&["covid", "cases", "city"]),
            doc(&["vaccine", "country", "approver"]),
            doc(&["population", "gdp"]),
        ]);
        let a = model.transform(["covid", "cases", "city"]);
        let b = model.transform(["covid", "cases", "berlin"]);
        let c = model.transform(["population", "gdp"]);
        assert!(a.cosine(&b) > a.cosine(&c));
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_doc_transforms_to_zero_vector() {
        let model = TfIdf::fit(vec![doc(&["a"])]);
        let v = model.transform([]);
        assert!(v.is_empty());
        assert_eq!(v.norm(), 0.0);
    }
}
