//! Deterministic hashed character n-gram embeddings.
//!
//! This is the reproduction's substitute for the pretrained value embeddings
//! ALITE's holistic schema matcher feeds to its clustering step (DESIGN.md
//! §1). Strings are decomposed into padded character n-grams; each gram is
//! feature-hashed into a fixed-dimension vector with a ±1 sign hash (the
//! "hashing trick"), and the result is L2-normalized. Bags of strings embed
//! as the normalized centroid of their member embeddings, so two columns
//! drawing from lexically similar domains get high cosine similarity.

use crate::tokenize::{fnv1a64, qgrams_padded, word_tokens};

/// A hashed n-gram embedder with a fixed output dimension and gram sizes.
#[derive(Debug, Clone)]
pub struct NgramEmbedder {
    dim: usize,
    gram_sizes: Vec<usize>,
    include_words: bool,
}

impl Default for NgramEmbedder {
    /// 256 dimensions, 2- and 3-grams plus whole-word features: small enough
    /// to centroid thousands of columns quickly, selective enough to
    /// separate unrelated domains.
    fn default() -> Self {
        NgramEmbedder {
            dim: 256,
            gram_sizes: vec![2, 3],
            include_words: true,
        }
    }
}

impl NgramEmbedder {
    /// Custom dimension and gram sizes.
    pub fn new(dim: usize, gram_sizes: Vec<usize>, include_words: bool) -> NgramEmbedder {
        assert!(dim > 0, "embedding dimension must be positive");
        assert!(!gram_sizes.is_empty(), "need at least one gram size");
        NgramEmbedder {
            dim,
            gram_sizes,
            include_words,
        }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn add_feature(&self, out: &mut [f32], feature: &str) {
        let h = fnv1a64(feature.as_bytes());
        let idx = (h % self.dim as u64) as usize;
        // An independent bit decides the sign, which keeps hash collisions
        // from systematically inflating similarity.
        let sign = if (h >> 63) & 1 == 1 { -1.0 } else { 1.0 };
        out[idx] += sign;
    }

    /// Embed one string into an (unnormalized) feature vector.
    fn accumulate(&self, s: &str, out: &mut [f32]) {
        for &q in &self.gram_sizes {
            for gram in qgrams_padded(s, q) {
                self.add_feature(out, &gram);
            }
        }
        if self.include_words {
            for w in word_tokens(s) {
                self.add_feature(out, &format!("w:{w}"));
            }
        }
    }

    /// Embed a single string; L2-normalized (zero vector for empty input).
    pub fn embed(&self, s: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        self.accumulate(s, &mut v);
        normalize(&mut v);
        v
    }

    /// Embed a bag of strings as the normalized centroid of member
    /// embeddings. The per-member normalization stops a single long value
    /// from dominating the column representation.
    pub fn embed_bag<'a, I: IntoIterator<Item = &'a str>>(&self, bag: I) -> Vec<f32> {
        let mut centroid = vec![0.0f32; self.dim];
        let mut n = 0usize;
        let mut member = vec![0.0f32; self.dim];
        for s in bag {
            member.iter_mut().for_each(|x| *x = 0.0);
            self.accumulate(s, &mut member);
            if normalize(&mut member) {
                for (c, m) in centroid.iter_mut().zip(member.iter()) {
                    *c += *m;
                }
                n += 1;
            }
        }
        if n > 0 {
            normalize(&mut centroid);
        }
        centroid
    }
}

/// L2-normalize in place; returns false (leaving zeros) for a zero vector.
fn normalize(v: &mut [f32]) -> bool {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm == 0.0 {
        return false;
    }
    v.iter_mut().for_each(|x| *x /= norm);
    true
}

/// Convenience: embed a column's non-null value tokens with the default
/// embedder configuration.
pub fn column_embedding<'a, I: IntoIterator<Item = &'a str>>(values: I) -> Vec<f32> {
    NgramEmbedder::default().embed_bag(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::cosine_dense;

    #[test]
    fn embedding_is_deterministic() {
        let e = NgramEmbedder::default();
        assert_eq!(e.embed("Berlin"), e.embed("Berlin"));
    }

    #[test]
    fn embedding_is_case_insensitive() {
        let e = NgramEmbedder::default();
        assert_eq!(e.embed("BERLIN"), e.embed("berlin"));
    }

    #[test]
    fn similar_strings_are_closer_than_dissimilar() {
        let e = NgramEmbedder::default();
        let berlin = e.embed("berlin");
        let berlin2 = e.embed("berlin city");
        let number = e.embed("42,17");
        assert!(cosine_dense(&berlin, &berlin2) > cosine_dense(&berlin, &number));
    }

    #[test]
    fn similar_domains_have_high_cosine() {
        let e = NgramEmbedder::default();
        let cities_a = e.embed_bag(["berlin", "manchester", "barcelona"]);
        let cities_b = e.embed_bag(["toronto", "mexico city", "boston", "barcelona"]);
        let rates = e.embed_bag(["63%", "78%", "82%"]);
        assert!(
            cosine_dense(&cities_a, &cities_b) > cosine_dense(&cities_a, &rates),
            "city domains should be closer to each other than to percentage domains"
        );
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let e = NgramEmbedder::default();
        let v = e.embed("hello world");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        let bag = e.embed_bag(["a", "b", "c"]);
        let norm: f32 = bag.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_inputs_embed_to_zero() {
        let e = NgramEmbedder::default();
        assert!(e.embed("").iter().all(|&x| x == 0.0));
        assert!(e.embed_bag([]).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn bag_order_does_not_matter() {
        let e = NgramEmbedder::default();
        let a = e.embed_bag(["x", "y", "z"]);
        let b = e.embed_bag(["z", "x", "y"]);
        for (p, q) in a.iter().zip(b.iter()) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        let _ = NgramEmbedder::new(0, vec![2], true);
    }

    #[test]
    fn custom_dim_is_respected() {
        let e = NgramEmbedder::new(64, vec![3], false);
        assert_eq!(e.dim(), 64);
        assert_eq!(e.embed("abc").len(), 64);
    }
}
