//! # dialite-text
//!
//! Text and similarity toolkit shared by discovery, alignment and entity
//! resolution: tokenizers, set/string/vector similarity measures, TF-IDF
//! weighting and a deterministic *hashed character n-gram embedder*.
//!
//! The embedder is this reproduction's substitute for the pretrained
//! fastText/BERT embeddings used by ALITE's holistic schema matcher: it maps
//! any string (or bag of strings) to a fixed-dimension dense vector via
//! feature hashing of character n-grams, so that lexically similar value
//! sets land close in cosine space. It is fully deterministic, dependency
//! free and fast — preserving the *geometry-based clustering code path*
//! without shipping model weights (see DESIGN.md §1).

mod embed;
mod sim;
mod tfidf;
mod tokenize;
mod vector;

pub use embed::{column_embedding, NgramEmbedder};
pub use sim::{
    acronym_of, containment, cosine_dense, dice, jaccard, levenshtein, levenshtein_sim,
    overlap_coefficient,
};
pub use tfidf::TfIdf;
pub use tokenize::{char_ngrams, fnv1a64, qgrams_padded, word_tokens};
pub use vector::SparseVector;
