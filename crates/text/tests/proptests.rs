//! Property-based tests: metric bounds, symmetry and known identities for
//! the similarity toolkit.

use std::collections::HashSet;

use dialite_text::{
    containment, cosine_dense, dice, jaccard, levenshtein, levenshtein_sim, NgramEmbedder, TfIdf,
};
use proptest::prelude::*;

fn arb_set() -> impl Strategy<Value = HashSet<String>> {
    prop::collection::hash_set("[a-z]{1,6}", 0..12)
}

proptest! {
    #[test]
    fn jaccard_bounds_and_symmetry(a in arb_set(), b in arb_set()) {
        let j = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, jaccard(&b, &a));
    }

    #[test]
    fn jaccard_self_is_one(a in arb_set()) {
        prop_assert_eq!(jaccard(&a, &a), 1.0);
    }

    #[test]
    fn dice_dominates_jaccard(a in arb_set(), b in arb_set()) {
        // dice = 2j/(1+j) ≥ j for j in [0,1]
        prop_assert!(dice(&a, &b) >= jaccard(&a, &b) - 1e-12);
    }

    #[test]
    fn containment_bounds(a in arb_set(), b in arb_set()) {
        let c = containment(&a, &b);
        prop_assert!((0.0..=1.0).contains(&c));
        // containment in a superset is 1
        let union: HashSet<String> = a.union(&b).cloned().collect();
        prop_assert_eq!(containment(&a, &union), 1.0);
    }

    #[test]
    fn levenshtein_is_a_metric(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
        let ab = levenshtein(&a, &b);
        let ba = levenshtein(&b, &a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(levenshtein(&a, &a), 0);
        // triangle inequality
        prop_assert!(levenshtein(&a, &c) <= ab + levenshtein(&b, &c));
        // bounded by max length
        prop_assert!(ab <= a.chars().count().max(b.chars().count()));
    }

    #[test]
    fn levenshtein_sim_bounds(a in "\\PC{0,12}", b in "\\PC{0,12}") {
        let s = levenshtein_sim(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
    }

    #[test]
    fn embedding_cosine_bounds(a in "[a-zA-Z0-9 ]{0,20}", b in "[a-zA-Z0-9 ]{0,20}") {
        let e = NgramEmbedder::default();
        let va = e.embed(&a);
        let vb = e.embed(&b);
        let c = cosine_dense(&va, &vb);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
    }

    #[test]
    fn embedding_self_cosine_is_one(a in "[a-zA-Z]{1,20}") {
        let e = NgramEmbedder::default();
        let v = e.embed(&a);
        prop_assert!((cosine_dense(&v, &v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn tfidf_transform_norm_monotone_in_repetition(
        words in prop::collection::vec("[a-z]{1,5}", 1..6),
    ) {
        let model = TfIdf::fit(vec![words.clone()]);
        let once = model.transform(words.iter().map(String::as_str));
        let twice_words: Vec<&str> = words.iter().chain(words.iter()).map(String::as_str).collect();
        let twice = model.transform(twice_words);
        prop_assert!(twice.norm() >= once.norm());
    }
}
