//! The semantic signal of the holistic matcher.
//!
//! ALITE's matcher feeds *pretrained* value embeddings to its clustering, so
//! columns over disjoint-but-same-type domains (two sets of city names with
//! no city in common — exactly the unionable pair of paper Fig. 2) still
//! land close together. Hashed n-gram embeddings cannot provide that world
//! knowledge, so this reproduction restores it through an explicit
//! [`SemanticAnnotator`]: a pluggable component that maps a column's value
//! domain to a distribution over semantic type labels. The KB-backed
//! implementation ([`KbAnnotator`]) uses the mini knowledge base
//! (`dialite-kb`); when no annotator is configured the matcher degrades
//! gracefully to its lexical signals (DESIGN.md §1 documents the
//! substitution).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use dialite_kb::KnowledgeBase;

/// Maps a column's distinct value tokens to `type label → confidence`.
pub trait SemanticAnnotator: Send + Sync {
    /// Confidence per semantic type (fraction of values carrying it).
    /// Return an empty map when nothing is known about the domain.
    fn annotate(&self, tokens: &HashSet<String>) -> HashMap<String, f64>;
}

/// Cosine similarity of two `label → confidence` distributions.
pub fn semantic_cosine(a: &HashMap<String, f64>, b: &HashMap<String, f64>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let dot: f64 = a
        .iter()
        .filter_map(|(k, va)| b.get(k).map(|vb| va * vb))
        .sum();
    let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Knowledge-base-backed annotator using *leaf* types (most specific
/// classification; a shared distant ancestor must not make city and country
/// columns look alike).
#[derive(Clone)]
pub struct KbAnnotator {
    kb: Arc<KnowledgeBase>,
    /// Minimum fraction of values that must be known to emit any annotation;
    /// guards against spurious matches on columns the KB barely covers.
    min_coverage: f64,
}

impl KbAnnotator {
    /// Annotator over a shared KB with default minimum coverage (0.5).
    pub fn new(kb: Arc<KnowledgeBase>) -> KbAnnotator {
        KbAnnotator {
            kb,
            min_coverage: 0.5,
        }
    }

    /// Override the minimum coverage gate.
    pub fn with_min_coverage(mut self, min_coverage: f64) -> KbAnnotator {
        self.min_coverage = min_coverage;
        self
    }
}

impl SemanticAnnotator for KbAnnotator {
    fn annotate(&self, tokens: &HashSet<String>) -> HashMap<String, f64> {
        if tokens.is_empty() {
            return HashMap::new();
        }
        let mut votes: HashMap<String, usize> = HashMap::new();
        let mut known = 0usize;
        for tok in tokens {
            let leafs = self.kb.leaf_types_of(tok);
            if !leafs.is_empty() {
                known += 1;
            }
            for t in leafs {
                *votes.entry(self.kb.type_name(t).to_string()).or_insert(0) += 1;
            }
        }
        if (known as f64) < self.min_coverage * tokens.len() as f64 {
            return HashMap::new();
        }
        votes
            .into_iter()
            .map(|(name, v)| (name, v as f64 / tokens.len() as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_kb::curated::covid_kb;

    fn toks(items: &[&str]) -> HashSet<String> {
        items.iter().map(|s| s.to_lowercase()).collect()
    }

    #[test]
    fn city_columns_annotate_alike_country_columns_differently() {
        let ann = KbAnnotator::new(Arc::new(covid_kb()));
        let cities_a = ann.annotate(&toks(&["berlin", "manchester", "barcelona"]));
        let cities_b = ann.annotate(&toks(&["toronto", "mexico city", "boston"]));
        let countries = ann.annotate(&toks(&["germany", "england", "spain"]));
        let city_city = semantic_cosine(&cities_a, &cities_b);
        let city_country = semantic_cosine(&cities_a, &countries);
        assert!(
            city_city > 0.8,
            "disjoint city domains must still look alike: {city_city}"
        );
        assert!(
            city_country < 0.3,
            "city and country domains must separate: {city_country}"
        );
    }

    #[test]
    fn unknown_domains_annotate_empty() {
        let ann = KbAnnotator::new(Arc::new(covid_kb()));
        assert!(ann.annotate(&toks(&["qwerty", "asdf"])).is_empty());
        assert!(ann.annotate(&HashSet::new()).is_empty());
    }

    #[test]
    fn coverage_gate_blocks_sparse_matches() {
        let ann = KbAnnotator::new(Arc::new(covid_kb()));
        // Only 1 of 4 values known → below the 0.5 coverage gate.
        let sparse = ann.annotate(&toks(&["berlin", "aa", "bb", "cc"]));
        assert!(sparse.is_empty());
        // Lowering the gate admits it.
        let lax = KbAnnotator::new(Arc::new(covid_kb())).with_min_coverage(0.2);
        assert!(!lax
            .annotate(&toks(&["berlin", "aa", "bb", "cc"]))
            .is_empty());
    }

    #[test]
    fn semantic_cosine_identities() {
        let a: HashMap<String, f64> = [("city".to_string(), 1.0)].into_iter().collect();
        let b: HashMap<String, f64> = [("country".to_string(), 1.0)].into_iter().collect();
        assert_eq!(semantic_cosine(&a, &b), 0.0);
        assert!((semantic_cosine(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(semantic_cosine(&a, &HashMap::new()), 0.0);
    }

    #[test]
    fn aliases_count_toward_annotation() {
        let ann = KbAnnotator::new(Arc::new(covid_kb()));
        let with_alias = ann.annotate(&toks(&["usa", "germany"]));
        assert!(with_alias.contains_key("country"), "{with_alias:?}");
        assert!((with_alias["country"] - 1.0).abs() < 1e-12);
    }
}
