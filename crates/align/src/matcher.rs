//! The holistic schema matcher: column similarity + constrained clustering
//! → integration IDs.

use std::collections::HashMap;
use std::sync::Arc;

use dialite_table::Table;
use dialite_text::{cosine_dense, jaccard, levenshtein_sim, NgramEmbedder};

use crate::alignment::Alignment;
use crate::cluster::{average_linkage_cluster, silhouette_score};
use crate::semantic::{semantic_cosine, SemanticAnnotator};
use crate::signature::{column_signature_with, ColumnSignature};

/// Weights and cut policy of the holistic matcher.
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    /// Weight of embedding-centroid cosine similarity.
    pub embedding_weight: f64,
    /// Weight of distinct-value Jaccard overlap.
    pub overlap_weight: f64,
    /// Weight of the semantic-type distribution cosine (only when an
    /// annotator is configured and both domains annotate non-empty).
    pub semantic_weight: f64,
    /// Weight of numeric-distribution proximity (only when both numeric).
    pub numeric_weight: f64,
    /// Weight of header similarity. Low by default: data-lake headers are
    /// unreliable (paper §2.2); set to 0 for purely instance-based matching.
    pub header_weight: f64,
    /// Fixed clustering cut; `None` selects the cut by silhouette sweep,
    /// mirroring ALITE's cluster-count selection.
    pub threshold: Option<f64>,
    /// Candidate cuts for the silhouette sweep.
    pub sweep: Vec<f64>,
    /// Multiplier applied when column types are incompatible
    /// (numeric vs. text); a soft gate rather than a hard one because type
    /// inference on dirty data errs.
    pub type_mismatch_penalty: f64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            embedding_weight: 0.30,
            overlap_weight: 0.25,
            semantic_weight: 0.40,
            numeric_weight: 0.15,
            header_weight: 0.10,
            threshold: None,
            sweep: vec![0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60],
            type_mismatch_penalty: 0.1,
        }
    }
}

/// ALITE's Align stage. See the crate docs for the full construction.
#[derive(Clone, Default)]
pub struct HolisticMatcher {
    config: MatcherConfig,
    embedder: NgramEmbedder,
    annotator: Option<Arc<dyn SemanticAnnotator>>,
}

impl std::fmt::Debug for HolisticMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HolisticMatcher")
            .field("config", &self.config)
            .field("annotator", &self.annotator.is_some())
            .finish()
    }
}

impl HolisticMatcher {
    /// Matcher with custom configuration (no semantic annotator).
    pub fn new(config: MatcherConfig) -> HolisticMatcher {
        HolisticMatcher {
            config,
            embedder: NgramEmbedder::default(),
            annotator: None,
        }
    }

    /// Matcher with a fixed clustering cut (no silhouette sweep).
    pub fn with_threshold(threshold: f64) -> HolisticMatcher {
        HolisticMatcher::new(MatcherConfig {
            threshold: Some(threshold),
            ..MatcherConfig::default()
        })
    }

    /// Attach a semantic annotator (builder style).
    pub fn with_annotator(mut self, annotator: Arc<dyn SemanticAnnotator>) -> HolisticMatcher {
        self.annotator = Some(annotator);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &MatcherConfig {
        &self.config
    }

    /// Similarity of two column signatures in `[0, 1]` — the weighted
    /// combination described in the crate docs. Terms without evidence
    /// (empty token sets, missing annotations, non-numeric pairs) drop out
    /// of both numerator and denominator.
    pub fn similarity(&self, a: &ColumnSignature, b: &ColumnSignature) -> f64 {
        let c = &self.config;
        let both_numeric = a.ctype.is_numeric() && b.ctype.is_numeric();

        let mut score = 0.0;
        let mut weight = 0.0;

        let e = cosine_dense(&a.embedding, &b.embedding).max(0.0);
        score += c.embedding_weight * e;
        weight += c.embedding_weight;

        // Jaccard of two empty token sets is 1 by convention, but two empty
        // columns are no evidence of a match — skip the term instead.
        if !(a.tokens.is_empty() && b.tokens.is_empty()) {
            score += c.overlap_weight * jaccard(&a.tokens, &b.tokens);
            weight += c.overlap_weight;
        }

        if !a.semantics.is_empty() && !b.semantics.is_empty() {
            score += c.semantic_weight * semantic_cosine(&a.semantics, &b.semantics);
            weight += c.semantic_weight;
        }

        if both_numeric {
            score += c.numeric_weight * a.range_overlap(b);
            weight += c.numeric_weight;
        }

        if c.header_weight > 0.0 && !a.header.is_empty() && !b.header.is_empty() {
            score += c.header_weight * levenshtein_sim(&a.header, &b.header);
            weight += c.header_weight;
        }

        let mut s = if weight > 0.0 { score / weight } else { 0.0 };

        // Soft type gate.
        if a.ctype.is_numeric() != b.ctype.is_numeric() {
            s *= c.type_mismatch_penalty;
        }
        s.clamp(0.0, 1.0)
    }

    /// Build the signatures of every column in the integration set.
    pub fn signatures(&self, tables: &[&Table]) -> Vec<ColumnSignature> {
        let mut sigs = Vec::new();
        for (t, table) in tables.iter().enumerate() {
            for c in 0..table.column_count() {
                sigs.push(column_signature_with(
                    &self.embedder,
                    self.annotator.as_deref(),
                    tables,
                    t,
                    c,
                ));
            }
        }
        sigs
    }

    /// Align an integration set: returns the integration-ID assignment.
    pub fn align(&self, tables: &[&Table]) -> Alignment {
        let sigs = self.signatures(tables);
        let n = sigs.len();
        let groups: Vec<usize> = sigs.iter().map(|s| s.col.table).collect();

        let mut sim = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            sim[i][i] = 1.0;
            for j in i + 1..n {
                let s = if groups[i] == groups[j] {
                    0.0 // never merged anyway; keep the matrix cheap
                } else {
                    self.similarity(&sigs[i], &sigs[j])
                };
                sim[i][j] = s;
                sim[j][i] = s;
            }
        }

        let labels = match self.config.threshold {
            Some(t) => average_linkage_cluster(&sim, &groups, t),
            None => {
                // Silhouette sweep (ALITE's cut selection): evaluate each
                // candidate cut, keep the best-scoring clustering; fall back
                // to the middle candidate when no cut produces structure.
                let mut best: Option<(f64, Vec<u32>)> = None;
                for &t in &self.config.sweep {
                    let labels = average_linkage_cluster(&sim, &groups, t);
                    let score = silhouette_score(&sim, &labels);
                    if best.as_ref().is_none_or(|(bs, _)| score > *bs) {
                        best = Some((score, labels));
                    }
                }
                match best {
                    Some((score, labels)) if score > 0.0 => labels,
                    _ => {
                        let mid = self.config.sweep.get(self.config.sweep.len() / 2);
                        average_linkage_cluster(&sim, &groups, *mid.unwrap_or(&0.5))
                    }
                }
            }
        };

        // Name each integration ID after the most frequent member header.
        let num_ids = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut header_votes: Vec<HashMap<String, usize>> = vec![HashMap::new(); num_ids];
        for (i, sig) in sigs.iter().enumerate() {
            *header_votes[labels[i] as usize]
                .entry(sig.header.clone())
                .or_insert(0) += 1;
        }
        let mut names: Vec<String> = Vec::with_capacity(num_ids);
        let mut used: HashMap<String, usize> = HashMap::new();
        for votes in header_votes {
            let mut candidates: Vec<(&String, &usize)> = votes.iter().collect();
            candidates.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            let base = candidates
                .first()
                .map(|(h, _)| (*h).clone())
                .unwrap_or_else(|| "col".to_string());
            let count = used.entry(base.clone()).or_insert(0);
            *count += 1;
            names.push(if *count == 1 {
                base
            } else {
                format!("{base}_{count}")
            });
        }

        // Repackage flat labels per table.
        let mut assignments: Vec<Vec<u32>> = Vec::with_capacity(tables.len());
        let mut idx = 0usize;
        for table in tables {
            let mut row = Vec::with_capacity(table.column_count());
            for _ in 0..table.column_count() {
                row.push(labels[idx]);
                idx += 1;
            }
            assignments.push(row);
        }
        Alignment::new(assignments, names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::KbAnnotator;
    use crate::signature::column_signature;
    use dialite_kb::curated::covid_kb;
    use dialite_table::table;

    fn demo_matcher() -> HolisticMatcher {
        HolisticMatcher::default().with_annotator(Arc::new(KbAnnotator::new(Arc::new(covid_kb()))))
    }

    /// The paper's Fig. 2 tables with deliberately unreliable headers on T3:
    /// holistic matching must align City columns by *values*, not names.
    fn covid_tables() -> (Table, Table, Table) {
        let t1 = table! {
            "T1"; ["Country", "City", "Vaccination Rate"];
            ["Germany", "Berlin", 0.63],
            ["England", "Manchester", 0.78],
            ["Spain", "Barcelona", 0.82],
        };
        let t2 = table! {
            "T2"; ["Country", "City", "Vaccination Rate"];
            ["Canada", "Toronto", 0.83],
            ["USA", "Boston", 0.62],
        };
        let t3 = table! {
            // Headers scrambled — the data lake reality the paper stresses.
            "T3"; ["a", "b", "c"];
            ["Berlin", 1_400_000, 147],
            ["Barcelona", 2_680_000, 275],
            ["Boston", 263_000, 335],
            ["New Delhi", 2_000_000, 158],
        };
        (t1, t2, t3)
    }

    #[test]
    fn aligns_city_columns_despite_scrambled_headers() {
        let (t1, t2, t3) = covid_tables();
        let al = demo_matcher().align(&[&t1, &t2, &t3]);
        let city1 = al.id_of(0, 1);
        let city2 = al.id_of(1, 1);
        let city3 = al.id_of(2, 0);
        assert_eq!(city1, city2, "T1.City must align with T2.City");
        assert_eq!(city1, city3, "T1.City must align with T3.a by values");
        // Case/Death-rate columns of T3 must not leak into City.
        assert_ne!(al.id_of(2, 1), city1);
        assert_ne!(al.id_of(2, 2), city1);
    }

    #[test]
    fn unionable_tables_align_column_for_column() {
        let (t1, t2, _) = covid_tables();
        let al = demo_matcher().align(&[&t1, &t2]);
        for c in 0..3 {
            assert_eq!(
                al.id_of(0, c),
                al.id_of(1, c),
                "column {c} of the unionable pair must align"
            );
        }
        assert_eq!(al.num_ids(), 3);
    }

    #[test]
    fn overlapping_values_align_without_any_annotator() {
        // Pure lexical evidence: strong value overlap.
        let a = table! { "a"; ["x"]; ["berlin"], ["boston"], ["barcelona"] };
        let b = table! { "b"; ["y"]; ["berlin"], ["boston"], ["new delhi"] };
        let al = HolisticMatcher::default().align(&[&a, &b]);
        assert_eq!(al.id_of(0, 0), al.id_of(1, 0));
    }

    #[test]
    fn same_table_columns_are_never_merged() {
        // Two identical columns inside one table plus a matching one outside.
        let a = table! { "a"; ["x", "y"]; ["p", "p"], ["q", "q"] };
        let b = table! { "b"; ["z"]; ["p"], ["q"] };
        let matcher = HolisticMatcher::with_threshold(0.1);
        let al = matcher.align(&[&a, &b]);
        assert_ne!(al.id_of(0, 0), al.id_of(0, 1));
    }

    #[test]
    fn numeric_columns_with_disjoint_ranges_stay_apart() {
        let a = table! { "a"; ["rate"]; [0.63], [0.78], [0.82] };
        let b = table! { "b"; ["cases"]; [1_400_000], [2_680_000], [263_000] };
        let al = demo_matcher().align(&[&a, &b]);
        assert_ne!(al.id_of(0, 0), al.id_of(1, 0));
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let (t1, _, t3) = covid_tables();
        let matcher = demo_matcher();
        let e = NgramEmbedder::default();
        let tables = [&t1, &t3];
        for i in 0..3 {
            for j in 0..3 {
                let a = column_signature(&e, &tables, 0, i);
                let b = column_signature(&e, &tables, 1, j);
                let s1 = matcher.similarity(&a, &b);
                let s2 = matcher.similarity(&b, &a);
                assert!((s1 - s2).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&s1));
            }
        }
    }

    #[test]
    fn single_table_gets_one_id_per_column() {
        let (t1, _, _) = covid_tables();
        let al = demo_matcher().align(&[&t1]);
        assert_eq!(al.num_ids(), 3);
        let ids: std::collections::HashSet<u32> = (0..3).map(|c| al.id_of(0, c)).collect();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn empty_integration_set() {
        let al = demo_matcher().align(&[]);
        assert_eq!(al.num_ids(), 0);
    }

    #[test]
    fn names_are_unique_and_derived_from_headers() {
        let (t1, t2, _) = covid_tables();
        let al = demo_matcher().align(&[&t1, &t2]);
        let names: std::collections::HashSet<&str> =
            (0..al.num_ids() as u32).map(|i| al.name_of(i)).collect();
        assert_eq!(names.len(), al.num_ids());
        assert!(names.contains("City"));
        assert!(names.contains("Country"));
    }

    #[test]
    fn silhouette_sweep_finds_five_semantic_columns() {
        let (t1, t2, t3) = covid_tables();
        let al = demo_matcher().align(&[&t1, &t2, &t3]);
        // Country, City, Vaccination Rate, Total Cases, Death Rate = 5.
        assert_eq!(al.num_ids(), 5, "expected 5 integration ids");
    }

    #[test]
    fn header_weight_zero_still_aligns_by_values() {
        let (t1, t2, _) = covid_tables();
        let matcher = HolisticMatcher::new(MatcherConfig {
            header_weight: 0.0,
            ..MatcherConfig::default()
        })
        .with_annotator(Arc::new(KbAnnotator::new(Arc::new(covid_kb()))));
        let al = matcher.align(&[&t1, &t2]);
        assert_eq!(al.id_of(0, 1), al.id_of(1, 1));
    }

    #[test]
    fn fig7_vaccine_tables_align() {
        // Paper Fig. 7: T4(Vaccine, Approver), T5(Country, Approver),
        // T6(Vaccine, Country) — with neutral headers.
        let t4 = table! { "T4"; ["p", "q"]; ["Pfizer", "FDA"], ["JnJ", Value::null_missing()] };
        let t5 =
            table! { "T5"; ["r", "s"]; ["United States", "FDA"], ["USA", Value::null_missing()] };
        let t6 = table! { "T6"; ["u", "v"]; ["J&J", "United States"], ["JnJ", "USA"] };
        use dialite_table::Value;
        let al = demo_matcher().align(&[&t4, &t5, &t6]);
        assert_eq!(al.id_of(0, 0), al.id_of(2, 0), "Vaccine columns align");
        assert_eq!(al.id_of(0, 1), al.id_of(1, 1), "Approver columns align");
        assert_eq!(al.id_of(1, 0), al.id_of(2, 1), "Country columns align");
        assert_eq!(al.num_ids(), 3);
    }
}
