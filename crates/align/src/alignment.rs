//! The output of schema matching: integration-ID assignments.

use std::collections::HashMap;

use dialite_table::Table;

/// An assignment of one integration ID to every column of every table in an
/// integration set. Produced by [`crate::HolisticMatcher`] (or baselines),
/// consumed by the integration engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// `assignments[t][c]` = integration ID of column `c` of table `t`.
    assignments: Vec<Vec<u32>>,
    /// Human-readable name per integration ID (unique).
    names: Vec<String>,
}

impl Alignment {
    /// Build from raw assignments and per-ID names.
    ///
    /// # Panics
    /// If any assignment references an ID ≥ `names.len()`, or two columns of
    /// the same table share an ID (the cannot-link invariant).
    pub fn new(assignments: Vec<Vec<u32>>, names: Vec<String>) -> Alignment {
        for (t, cols) in assignments.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for &id in cols {
                assert!(
                    (id as usize) < names.len(),
                    "assignment references unknown integration id {id}"
                );
                assert!(
                    seen.insert(id),
                    "table {t} has two columns with integration id {id}"
                );
            }
        }
        Alignment { assignments, names }
    }

    /// The header-equality baseline: columns match iff their (trimmed,
    /// lower-cased) headers are identical. This is the naive matcher the
    /// holistic matcher is evaluated against (experiment E8).
    pub fn by_headers(tables: &[&Table]) -> Alignment {
        let mut ids: HashMap<String, u32> = HashMap::new();
        let mut names: Vec<String> = Vec::new();
        let mut assignments = Vec::with_capacity(tables.len());
        for table in tables {
            let mut row = Vec::with_capacity(table.column_count());
            let mut used = std::collections::HashSet::new();
            for meta in table.schema().columns() {
                let key = meta.name.trim().to_lowercase();
                let mut id = *ids.entry(key.clone()).or_insert_with(|| {
                    names.push(meta.name.clone());
                    (names.len() - 1) as u32
                });
                // Cannot-link: a header repeated within one table (e.g.
                // "City" and "city") gets a fresh ID rather than violating
                // the invariant.
                if used.contains(&id) {
                    names.push(format!("{}*", meta.name));
                    id = (names.len() - 1) as u32;
                }
                used.insert(id);
                row.push(id);
            }
            assignments.push(row);
        }
        Alignment::new(assignments, names)
    }

    /// Integration ID of a column.
    pub fn id_of(&self, table: usize, column: usize) -> u32 {
        self.assignments[table][column]
    }

    /// Number of distinct integration IDs.
    pub fn num_ids(&self) -> usize {
        self.names.len()
    }

    /// Name of an integration ID.
    pub fn name_of(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// All `(table, column)` pairs carrying an integration ID.
    pub fn columns_of(&self, id: u32) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (t, cols) in self.assignments.iter().enumerate() {
            for (c, &cid) in cols.iter().enumerate() {
                if cid == id {
                    out.push((t, c));
                }
            }
        }
        out
    }

    /// Per-table assignment rows.
    pub fn assignments(&self) -> &[Vec<u32>] {
        &self.assignments
    }

    /// Number of integration IDs shared by at least two tables — a quick
    /// connectivity measure used in reports.
    pub fn shared_id_count(&self) -> usize {
        (0..self.names.len() as u32)
            .filter(|&id| {
                let cols = self.columns_of(id);
                let tables: std::collections::HashSet<usize> =
                    cols.iter().map(|&(t, _)| t).collect();
                tables.len() >= 2
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::table;

    #[test]
    fn by_headers_matches_same_names_case_insensitively() {
        let a = table! { "a"; ["City", "Rate"]; ["x", 1] };
        let b = table! { "b"; ["city", "Cases"]; ["y", 2] };
        let al = Alignment::by_headers(&[&a, &b]);
        assert_eq!(al.id_of(0, 0), al.id_of(1, 0));
        assert_ne!(al.id_of(0, 1), al.id_of(1, 1));
        assert_eq!(al.num_ids(), 3);
        assert_eq!(al.shared_id_count(), 1);
    }

    #[test]
    fn columns_of_lists_members() {
        let a = table! { "a"; ["x"]; [1] };
        let b = table! { "b"; ["x"]; [2] };
        let al = Alignment::by_headers(&[&a, &b]);
        assert_eq!(al.columns_of(0), vec![(0, 0), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "two columns with integration id")]
    fn same_table_duplicate_id_panics() {
        let _ = Alignment::new(vec![vec![0, 0]], vec!["x".into()]);
    }

    #[test]
    #[should_panic(expected = "unknown integration id")]
    fn out_of_range_id_panics() {
        let _ = Alignment::new(vec![vec![3]], vec!["x".into()]);
    }

    #[test]
    fn name_lookup_round_trips() {
        let al = Alignment::new(vec![vec![0], vec![1]], vec!["city".into(), "rate".into()]);
        assert_eq!(al.name_of(0), "city");
        assert_eq!(al.name_of(1), "rate");
        assert_eq!(al.num_ids(), 2);
    }
}
