//! Column signatures: the per-column evidence the holistic matcher
//! clusters on.

use std::collections::{HashMap, HashSet};

use dialite_table::{ColumnType, Table};
use dialite_text::NgramEmbedder;

use crate::semantic::SemanticAnnotator;

/// Identifies a column within an integration set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table index within the integration set.
    pub table: usize,
    /// Column index within the table.
    pub column: usize,
}

/// Everything the matcher knows about one column.
#[derive(Debug, Clone)]
pub struct ColumnSignature {
    /// Which column this describes.
    pub col: ColumnRef,
    /// Header (unreliable in data lakes; used with low weight).
    pub header: String,
    /// Inferred type.
    pub ctype: ColumnType,
    /// Normalized distinct value tokens.
    pub tokens: HashSet<String>,
    /// Hashed n-gram embedding centroid of the values.
    pub embedding: Vec<f32>,
    /// Semantic type distribution of the domain (empty without an
    /// annotator or for unknown domains).
    pub semantics: HashMap<String, f64>,
    /// Mean of numeric values (0 when not numeric).
    pub mean: f64,
    /// Standard deviation of numeric values (0 when not numeric).
    pub std: f64,
    /// Minimum / maximum of numeric values.
    pub range: (f64, f64),
    /// Number of non-null cells.
    pub non_null: usize,
}

/// Build the signature of table `t`'s column `c`. Pass an annotator to add
/// the semantic type distribution (see [`crate::SemanticAnnotator`]).
pub fn column_signature(
    embedder: &NgramEmbedder,
    tables: &[&Table],
    table: usize,
    column: usize,
) -> ColumnSignature {
    column_signature_with(embedder, None, tables, table, column)
}

/// [`column_signature`] with an optional semantic annotator.
pub fn column_signature_with(
    embedder: &NgramEmbedder,
    annotator: Option<&dyn SemanticAnnotator>,
    tables: &[&Table],
    table: usize,
    column: usize,
) -> ColumnSignature {
    let t = tables[table];
    let tokens = t.column_token_set(column);
    let embedding = embedder.embed_bag(tokens.iter().map(String::as_str));
    let semantics = annotator.map(|a| a.annotate(&tokens)).unwrap_or_default();
    let numerics: Vec<f64> = t.column_values(column).filter_map(|v| v.as_f64()).collect();
    let non_null = t.column_values(column).filter(|v| !v.is_null()).count();
    let (mean, std, range) = if numerics.is_empty() {
        (0.0, 0.0, (0.0, 0.0))
    } else {
        let n = numerics.len() as f64;
        let mean = numerics.iter().sum::<f64>() / n;
        let var = numerics.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let min = numerics.iter().copied().fold(f64::INFINITY, f64::min);
        let max = numerics.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (mean, var.sqrt(), (min, max))
    };
    ColumnSignature {
        col: ColumnRef { table, column },
        header: t.schema().column(column).name.clone(),
        ctype: t.schema().column(column).ctype,
        tokens,
        embedding,
        semantics,
        mean,
        std,
        range,
        non_null,
    }
}

impl ColumnSignature {
    /// Overlap ratio of the two numeric ranges in [0, 1]
    /// (|intersection| / |union|; 1 when both are single points that agree).
    pub fn range_overlap(&self, other: &ColumnSignature) -> f64 {
        let (a_lo, a_hi) = self.range;
        let (b_lo, b_hi) = other.range;
        let inter = (a_hi.min(b_hi) - a_lo.max(b_lo)).max(0.0);
        let union = (a_hi.max(b_hi) - a_lo.min(b_lo)).max(0.0);
        if union == 0.0 {
            // Both ranges are points; equal points overlap fully.
            if a_lo == b_lo && inter == 0.0 && a_hi == a_lo && b_hi == b_lo {
                1.0
            } else {
                0.0
            }
        } else {
            inter / union
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::table;
    use dialite_text::NgramEmbedder;

    #[test]
    fn signature_captures_numeric_stats() {
        let t = table! { "t"; ["x"]; [1.0], [2.0], [3.0] };
        let e = NgramEmbedder::default();
        let tables = [&t];
        let sig = column_signature(&e, &tables, 0, 0);
        assert!((sig.mean - 2.0).abs() < 1e-12);
        assert!((sig.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert_eq!(sig.range, (1.0, 3.0));
        assert_eq!(sig.non_null, 3);
        assert_eq!(sig.ctype, ColumnType::Float);
    }

    #[test]
    fn signature_of_text_column_has_zero_numeric_stats() {
        let t = table! { "t"; ["city"]; ["Berlin"], ["Boston"] };
        let e = NgramEmbedder::default();
        let tables = [&t];
        let sig = column_signature(&e, &tables, 0, 0);
        assert_eq!(sig.mean, 0.0);
        assert_eq!(sig.tokens.len(), 2);
        assert_eq!(sig.header, "city");
    }

    #[test]
    fn range_overlap_cases() {
        let t1 = table! { "a"; ["x"]; [0.0], [10.0] };
        let t2 = table! { "b"; ["x"]; [5.0], [15.0] };
        let t3 = table! { "c"; ["x"]; [100.0], [200.0] };
        let e = NgramEmbedder::default();
        let tables = [&t1, &t2, &t3];
        let s1 = column_signature(&e, &tables, 0, 0);
        let s2 = column_signature(&e, &tables, 1, 0);
        let s3 = column_signature(&e, &tables, 2, 0);
        assert!((s1.range_overlap(&s2) - 5.0 / 15.0).abs() < 1e-12);
        assert_eq!(s1.range_overlap(&s3), 0.0);
        assert!((s1.range_overlap(&s1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_ranges() {
        let t1 = table! { "a"; ["x"]; [5.0] };
        let t2 = table! { "b"; ["x"]; [5.0] };
        let t3 = table! { "c"; ["x"]; [7.0] };
        let e = NgramEmbedder::default();
        let tables = [&t1, &t2, &t3];
        let s1 = column_signature(&e, &tables, 0, 0);
        let s2 = column_signature(&e, &tables, 1, 0);
        let s3 = column_signature(&e, &tables, 2, 0);
        assert_eq!(s1.range_overlap(&s2), 1.0);
        assert_eq!(s1.range_overlap(&s3), 0.0);
    }

    #[test]
    fn nulls_do_not_count_as_values() {
        let t = dialite_table::Table::from_rows(
            "t",
            &["x"],
            vec![
                vec![dialite_table::Value::Int(1)],
                vec![dialite_table::Value::null_missing()],
            ],
        )
        .unwrap();
        let e = NgramEmbedder::default();
        let tables = [&t];
        let sig = column_signature(&e, &tables, 0, 0);
        assert_eq!(sig.non_null, 1);
        assert_eq!(sig.tokens.len(), 1);
    }
}
