//! Constrained average-linkage agglomerative clustering and a silhouette
//! criterion — the machinery behind ALITE's integration-ID assignment.

/// Average-linkage agglomerative clustering with cannot-link groups.
///
/// * `sim` — symmetric pairwise similarity matrix in `[0, 1]`.
/// * `groups` — items with equal group id can never share a cluster
///   (columns of the same table).
/// * `threshold` — merging stops when the best average inter-cluster
///   similarity falls below it.
///
/// Returns compact cluster labels `0..k` in first-appearance order.
pub fn average_linkage_cluster(sim: &[Vec<f64>], groups: &[usize], threshold: f64) -> Vec<u32> {
    let n = sim.len();
    assert_eq!(groups.len(), n, "one group id per item");
    for row in sim {
        assert_eq!(row.len(), n, "similarity matrix must be square");
    }
    // Each cluster: member list + set of groups represented.
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut cluster_groups: Vec<Vec<usize>> = (0..n).map(|i| vec![groups[i]]).collect();
    let mut active: Vec<bool> = vec![true; n.max(1)];
    if n == 0 {
        return Vec::new();
    }

    let avg_sim = |a: &[usize], b: &[usize]| -> f64 {
        let mut acc = 0.0;
        for &i in a {
            for &j in b {
                acc += sim[i][j];
            }
        }
        acc / (a.len() * b.len()) as f64
    };

    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..members.len() {
            if !active[i] {
                continue;
            }
            for j in i + 1..members.len() {
                if !active[j] {
                    continue;
                }
                // Cannot-link: clusters sharing any group cannot merge.
                if cluster_groups[i]
                    .iter()
                    .any(|g| cluster_groups[j].contains(g))
                {
                    continue;
                }
                let s = avg_sim(&members[i], &members[j]);
                if best.is_none_or(|(_, _, bs)| s > bs) {
                    best = Some((i, j, s));
                }
            }
        }
        match best {
            Some((i, j, s)) if s >= threshold => {
                let (mj, gj) = (
                    std::mem::take(&mut members[j]),
                    std::mem::take(&mut cluster_groups[j]),
                );
                members[i].extend(mj);
                cluster_groups[i].extend(gj);
                active[j] = false;
            }
            _ => break,
        }
    }

    let mut labels = vec![0u32; n];
    let mut order: Vec<&Vec<usize>> = members
        .iter()
        .enumerate()
        .filter(|(i, _)| active[*i])
        .map(|(_, m)| m)
        .collect();
    // Deterministic label order: by smallest member index.
    order.sort_by_key(|m| *m.iter().min().unwrap());
    for (next, m) in order.into_iter().enumerate() {
        for &item in m {
            labels[item] = next as u32;
        }
    }
    labels
}

/// Mean silhouette score of a clustering, computed on `1 − sim` distances.
///
/// Singletons score 0 (the convention of scikit-learn). Returns 0 when all
/// items share one cluster or every item is a singleton — both cuts carry no
/// structure to score.
pub fn silhouette_score(sim: &[Vec<f64>], labels: &[u32]) -> f64 {
    let n = sim.len();
    if n == 0 {
        return 0.0;
    }
    let k = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    if k <= 1 || k == n {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        let own = labels[i];
        let own_size = labels.iter().filter(|&&l| l == own).count();
        if own_size == 1 {
            continue; // silhouette 0
        }
        let mut a = 0.0;
        for j in 0..n {
            if j != i && labels[j] == own {
                a += 1.0 - sim[i][j];
            }
        }
        a /= (own_size - 1) as f64;
        let mut b = f64::INFINITY;
        for other in 0..k as u32 {
            if other == own {
                continue;
            }
            let mut d = 0.0;
            let mut cnt = 0usize;
            for j in 0..n {
                if labels[j] == other {
                    d += 1.0 - sim[i][j];
                    cnt += 1;
                }
            }
            if cnt > 0 {
                b = b.min(d / cnt as f64);
            }
        }
        let denom = a.max(b);
        if denom > 0.0 && b.is_finite() {
            total += (b - a) / denom;
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two obvious blobs: items 0-1 similar, 2-3 similar, across ~0.
    fn two_blobs() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 0.9, 0.1, 0.0],
            vec![0.9, 1.0, 0.0, 0.1],
            vec![0.1, 0.0, 1.0, 0.8],
            vec![0.0, 0.1, 0.8, 1.0],
        ]
    }

    #[test]
    fn clusters_obvious_blobs() {
        let labels = average_linkage_cluster(&two_blobs(), &[0, 1, 0, 1], 0.5);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn cannot_link_blocks_same_group_merges() {
        // Items 0 and 1 are nearly identical but share a group.
        let sim = vec![vec![1.0, 0.99], vec![0.99, 1.0]];
        let labels = average_linkage_cluster(&sim, &[7, 7], 0.1);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn cannot_link_propagates_through_merges() {
        // 0 (group A) merges with 1 (group B); then 2 (group A) may not join
        // the merged cluster even though it is similar to 1.
        let sim = vec![
            vec![1.0, 0.95, 0.0],
            vec![0.95, 1.0, 0.94],
            vec![0.0, 0.94, 1.0],
        ];
        let labels = average_linkage_cluster(&sim, &[0, 1, 0], 0.5);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[2], labels[0]);
    }

    #[test]
    fn threshold_stops_merging() {
        let labels = average_linkage_cluster(&two_blobs(), &[0, 1, 0, 1], 0.95);
        // Nothing reaches 0.95 average similarity.
        let unique: std::collections::HashSet<u32> = labels.iter().copied().collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn zero_threshold_merges_all_compatible() {
        let labels = average_linkage_cluster(&two_blobs(), &[0, 1, 2, 3], 0.0);
        let unique: std::collections::HashSet<u32> = labels.iter().copied().collect();
        assert_eq!(unique.len(), 1);
    }

    #[test]
    fn empty_input() {
        let labels = average_linkage_cluster(&[], &[], 0.5);
        assert!(labels.is_empty());
        assert_eq!(silhouette_score(&[], &[]), 0.0);
    }

    #[test]
    fn labels_are_compact_and_deterministic() {
        let labels = average_linkage_cluster(&two_blobs(), &[0, 1, 0, 1], 0.5);
        assert_eq!(labels, vec![0, 0, 1, 1]);
    }

    #[test]
    fn silhouette_prefers_true_structure() {
        let sim = two_blobs();
        let good = silhouette_score(&sim, &[0, 0, 1, 1]);
        let bad = silhouette_score(&sim, &[0, 1, 0, 1]);
        assert!(good > bad, "good {good} should beat bad {bad}");
        assert!(good > 0.0);
    }

    #[test]
    fn silhouette_degenerate_cuts_are_zero() {
        let sim = two_blobs();
        assert_eq!(silhouette_score(&sim, &[0, 0, 0, 0]), 0.0);
        assert_eq!(silhouette_score(&sim, &[0, 1, 2, 3]), 0.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_matrix_panics() {
        let _ = average_linkage_cluster(&[vec![1.0, 0.5]], &[0], 0.5);
    }
}
