//! # dialite-align
//!
//! ALITE's **Align** stage: holistic schema matching over an integration set.
//!
//! Data-lake tables "may lack consistent and meaningful column headers"
//! (paper §1), so ALITE identifies matching columns *holistically* — across
//! all tables of the integration set at once — and assigns every set of
//! matching columns a dummy header called an **integration ID**. Natural
//! full disjunction is then computed over those IDs (see `dialite-integrate`).
//!
//! The matcher follows ALITE's construction:
//!
//! 1. every column gets a *signature*: a hashed n-gram embedding centroid of
//!    its values (this reproduction's stand-in for pretrained embeddings —
//!    DESIGN.md §1), its distinct-value token set, numeric statistics and
//!    (optionally, low weight) its header;
//! 2. pairwise column similarities combine embedding cosine, value-overlap
//!    Jaccard, numeric-distribution proximity and header similarity, gated
//!    by type compatibility;
//! 3. average-linkage agglomerative clustering merges columns under a
//!    **cannot-link constraint** — two columns of the *same* table are never
//!    co-clustered (a table does not say the same thing twice);
//! 4. the cut threshold is either fixed or chosen by a silhouette sweep,
//!    mirroring ALITE's cluster-count selection.
//!
//! Each resulting cluster is an integration ID. [`Alignment`] also offers
//! the naive header-equality baseline ([`Alignment::by_headers`]) used by
//! experiment E8.

mod alignment;
mod cluster;
mod matcher;
mod semantic;
mod signature;

pub use alignment::Alignment;
pub use cluster::{average_linkage_cluster, silhouette_score};
pub use matcher::{HolisticMatcher, MatcherConfig};
pub use semantic::{semantic_cosine, KbAnnotator, SemanticAnnotator};
pub use signature::{column_signature, column_signature_with, ColumnRef, ColumnSignature};
