//! Property-based tests for schema matching: the cannot-link invariant,
//! clustering determinism and similarity bounds on arbitrary small
//! integration sets.

use dialite_align::{average_linkage_cluster, silhouette_score, HolisticMatcher};
use dialite_table::{Table, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => "[a-z]{1,6}".prop_map(Value::Text),
        1 => (0i64..50).prop_map(Value::Int),
        1 => Just(Value::null_missing()),
    ]
}

fn arb_tables() -> impl Strategy<Value = Vec<Table>> {
    prop::collection::vec((1usize..4, 0usize..5), 1..4).prop_flat_map(|shapes| {
        let strategies: Vec<_> = shapes
            .into_iter()
            .enumerate()
            .map(|(i, (cols, rows))| {
                let names: Vec<String> = (0..cols).map(|c| format!("t{i}c{c}")).collect();
                prop::collection::vec(prop::collection::vec(arb_value(), cols), rows).prop_map(
                    move |data| {
                        Table::from_rows(&format!("T{i}"), &names, data).expect("fixed arity")
                    },
                )
            })
            .collect();
        strategies
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Two columns of the same table must never share an integration ID
    /// (the core ALITE constraint), whatever the data looks like.
    #[test]
    fn cannot_link_invariant_holds(tables in arb_tables()) {
        let refs: Vec<&Table> = tables.iter().collect();
        let al = HolisticMatcher::default().align(&refs);
        for (t, table) in refs.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for c in 0..table.column_count() {
                prop_assert!(
                    seen.insert(al.id_of(t, c)),
                    "table {t} repeats an integration id"
                );
            }
        }
        // Every ID is used and named.
        for id in 0..al.num_ids() as u32 {
            prop_assert!(!al.columns_of(id).is_empty());
            prop_assert!(!al.name_of(id).is_empty());
        }
    }

    #[test]
    fn alignment_is_deterministic(tables in arb_tables()) {
        let refs: Vec<&Table> = tables.iter().collect();
        let a = HolisticMatcher::default().align(&refs);
        let b = HolisticMatcher::default().align(&refs);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn cluster_labels_are_compact(
        n in 1usize..8,
        threshold in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        // Random symmetric similarity matrix.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = vec![vec![0.0; n]; n];
        #[allow(clippy::needless_range_loop)] // symmetric fill needs both indices
        for i in 0..n {
            sim[i][i] = 1.0;
            for j in i + 1..n {
                let s: f64 = rng.gen();
                sim[i][j] = s;
                sim[j][i] = s;
            }
        }
        let groups: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let labels = average_linkage_cluster(&sim, &groups, threshold);
        prop_assert_eq!(labels.len(), n);
        // Labels form a compact 0..k range.
        let max = labels.iter().copied().max().unwrap_or(0) as usize;
        for l in 0..=max {
            prop_assert!(labels.contains(&(l as u32)), "gap at label {l}");
        }
        // Cannot-link respected.
        for i in 0..n {
            for j in i + 1..n {
                if groups[i] == groups[j] {
                    prop_assert_ne!(labels[i], labels[j]);
                }
            }
        }
        // Silhouette is bounded.
        let s = silhouette_score(&sim, &labels);
        prop_assert!((-1.0..=1.0).contains(&s));
    }
}
