//! The [`Integrator`] trait — DIALITE's integration extension point
//! (paper Fig. 6: "users can add alternative integration operators").

use std::fmt;

use dialite_align::Alignment;
use dialite_table::Table;

use crate::result::IntegratedTable;

/// Errors produced by integration engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrateError {
    /// The alignment does not cover the integration set.
    AlignmentMismatch { expected: usize, got: usize },
    /// An engine-specific limit was exceeded (e.g. the merge budget of an
    /// FD fixpoint on adversarial input).
    BudgetExceeded { engine: String, limit: usize },
}

impl fmt::Display for IntegrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrateError::AlignmentMismatch { expected, got } => write!(
                f,
                "alignment covers {got} tables but the integration set has {expected}"
            ),
            IntegrateError::BudgetExceeded { engine, limit } => {
                write!(f, "{engine}: merge budget of {limit} tuples exceeded")
            }
        }
    }
}

impl std::error::Error for IntegrateError {}

/// An integration operator: integration set + alignment → integrated table.
pub trait Integrator: Send + Sync {
    /// Short identifier used in reports and benchmarks (e.g. `"alite-fd"`).
    fn name(&self) -> &str;

    /// Integrate the aligned tables.
    fn integrate(
        &self,
        tables: &[&Table],
        alignment: &Alignment,
    ) -> Result<IntegratedTable, IntegrateError>;
}

/// Shared argument validation for engines.
pub(crate) fn check_alignment(
    tables: &[&Table],
    alignment: &Alignment,
) -> Result<(), IntegrateError> {
    if alignment.assignments().len() != tables.len() {
        return Err(IntegrateError::AlignmentMismatch {
            expected: tables.len(),
            got: alignment.assignments().len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = IntegrateError::AlignmentMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3'));
        let b = IntegrateError::BudgetExceeded {
            engine: "naive-fd".into(),
            limit: 10,
        };
        assert!(b.to_string().contains("naive-fd"));
    }
}
