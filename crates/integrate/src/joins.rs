//! The alternative integration operators of the demo: natural outer join
//! (paper Fig. 6, evaluated in Fig. 8(a)), inner join and outer union.
//!
//! Natural join semantics over the integrated schema: tuples join when they
//! agree — with **null-rejecting** equality — on *every* integration ID
//! present in both operands' schemas. Operands with no shared IDs produce a
//! cross product (the textbook natural-join degenerate case). Evaluation is
//! left-to-right, which is exactly why outer join is not associative and
//! loses derivable facts — the demo's motivating contrast with FD.

use std::collections::{HashMap, HashSet};

use dialite_align::Alignment;
use dialite_table::{Table, ValueInterner};

use crate::engine::{check_alignment, IntegrateError, Integrator};
use crate::result::IntegratedTable;
use crate::subsume::{dedup_content, remove_subsumed_indexed};
use crate::tuple::{outer_union, AlignedTuple};

/// One operand of a join chain: its aligned tuples plus the set of schema
/// slots (integration IDs) its table covers.
type Operand = (Vec<AlignedTuple>, HashSet<usize>);

/// Per-table aligned tuples plus the set of schema slots the table covers.
fn aligned_per_table(
    tables: &[&Table],
    alignment: &Alignment,
) -> (Vec<String>, Vec<Operand>, ValueInterner) {
    let (names, all, interner) = outer_union(tables, alignment);
    // Recover the slot coverage of each table from the alignment.
    let mut slot_of: HashMap<u32, usize> = HashMap::new();
    {
        let mut next = 0usize;
        for (t, table) in tables.iter().enumerate() {
            for c in 0..table.column_count() {
                let id = alignment.id_of(t, c);
                slot_of.entry(id).or_insert_with(|| {
                    let s = next;
                    next += 1;
                    s
                });
            }
        }
    }
    let mut per_table: Vec<Operand> = tables
        .iter()
        .enumerate()
        .map(|(t, table)| {
            let slots: HashSet<usize> = (0..table.column_count())
                .map(|c| slot_of[&alignment.id_of(t, c)])
                .collect();
            (Vec::new(), slots)
        })
        .collect();
    for tup in all {
        let t = tup
            .tids
            .iter()
            .next()
            .expect("base tuple has one tid")
            .table as usize;
        per_table[t].0.push(tup);
    }
    (names, per_table, interner)
}

/// Join two aligned tuple sets naturally on `shared` slots.
/// Returns (joined, matched_left_flags, matched_right_flags).
fn natural_match(
    left: &[AlignedTuple],
    right: &[AlignedTuple],
    shared: &[usize],
) -> (Vec<AlignedTuple>, Vec<bool>, Vec<bool>) {
    let mut joined = Vec::new();
    let mut left_matched = vec![false; left.len()];
    let mut right_matched = vec![false; right.len()];

    if shared.is_empty() {
        // Degenerate natural join: cross product.
        for (i, l) in left.iter().enumerate() {
            for (j, r) in right.iter().enumerate() {
                joined.push(l.merge(r));
                left_matched[i] = true;
                right_matched[j] = true;
            }
        }
        return (joined, left_matched, right_matched);
    }

    // Hash join keyed on the shared-slot value-ids; null-rejecting → tuples
    // with any null in a shared slot never enter the hash table.
    let key_of = |t: &AlignedTuple| -> Option<Vec<u32>> {
        let mut key = Vec::with_capacity(shared.len());
        for &s in shared {
            if ValueInterner::is_null_id(t.values[s]) {
                return None;
            }
            key.push(t.values[s]);
        }
        Some(key)
    };
    let mut table: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
    for (j, r) in right.iter().enumerate() {
        if let Some(k) = key_of(r) {
            table.entry(k).or_default().push(j);
        }
    }
    for (i, l) in left.iter().enumerate() {
        let Some(k) = key_of(l) else { continue };
        if let Some(matches) = table.get(&k) {
            for &j in matches {
                joined.push(l.merge(&right[j]));
                left_matched[i] = true;
                right_matched[j] = true;
            }
        }
    }
    (joined, left_matched, right_matched)
}

fn join_chain(
    tables: &[&Table],
    alignment: &Alignment,
    keep_unmatched: bool,
    op_symbol: &str,
) -> Result<(String, Vec<String>, Vec<AlignedTuple>, ValueInterner), IntegrateError> {
    check_alignment(tables, alignment)?;
    let (names, per_table, interner) = aligned_per_table(tables, alignment);
    let mut iter = per_table.into_iter();
    let Some((mut acc, mut present)) = iter.next() else {
        let display = format!(
            "{}()",
            if keep_unmatched {
                "OuterJoin"
            } else {
                "InnerJoin"
            }
        );
        return Ok((display, names, Vec::new(), interner));
    };
    for (right, right_slots) in iter {
        let shared: Vec<usize> = {
            let mut s: Vec<usize> = present.intersection(&right_slots).copied().collect();
            s.sort_unstable();
            s
        };
        let (joined, lmat, rmat) = natural_match(&acc, &right, &shared);
        let mut next = joined;
        if keep_unmatched {
            for (i, m) in lmat.iter().enumerate() {
                if !m {
                    next.push(acc[i].clone());
                }
            }
            for (j, m) in rmat.iter().enumerate() {
                if !m {
                    next.push(right[j].clone());
                }
            }
        }
        acc = next;
        present.extend(right_slots);
    }
    let table_names: Vec<&str> = tables.iter().map(|t| t.name()).collect();
    let display = table_names.join(&format!(" {op_symbol} "));
    Ok((display, names, acc, interner))
}

/// Left-to-right natural **full outer join** — the demo's user-defined
/// alternative operator (Fig. 6), shown non-maximal in Fig. 8(a).
#[derive(Debug, Clone, Default)]
pub struct OuterJoinIntegrator;

impl Integrator for OuterJoinIntegrator {
    fn name(&self) -> &str {
        "outer-join"
    }

    fn integrate(
        &self,
        tables: &[&Table],
        alignment: &Alignment,
    ) -> Result<IntegratedTable, IntegrateError> {
        let (display, names, tuples, interner) = join_chain(tables, alignment, true, "⟗")?;
        let tuples = dedup_content(tuples);
        Ok(IntegratedTable::from_tuples(
            &display, &names, tuples, &interner,
        ))
    }
}

/// Left-to-right natural **inner join** (the integration Auctus applies to
/// joinable pairs; loses all unmatched facts).
#[derive(Debug, Clone, Default)]
pub struct InnerJoinIntegrator;

impl Integrator for InnerJoinIntegrator {
    fn name(&self) -> &str {
        "inner-join"
    }

    fn integrate(
        &self,
        tables: &[&Table],
        alignment: &Alignment,
    ) -> Result<IntegratedTable, IntegrateError> {
        let (display, names, tuples, interner) = join_chain(tables, alignment, false, "⋈")?;
        let tuples = dedup_content(tuples);
        Ok(IntegratedTable::from_tuples(
            &display, &names, tuples, &interner,
        ))
    }
}

/// Outer union: align, pad, deduplicate — optionally also subsumption-free.
/// With `subsume = true` this is FD *minus the complementation step*, a
/// useful ablation of how much work the merges do.
#[derive(Debug, Clone, Default)]
pub struct OuterUnionIntegrator {
    /// Also remove subsumed tuples.
    pub subsume: bool,
}

impl Integrator for OuterUnionIntegrator {
    fn name(&self) -> &str {
        if self.subsume {
            "outer-union-subsumed"
        } else {
            "outer-union"
        }
    }

    fn integrate(
        &self,
        tables: &[&Table],
        alignment: &Alignment,
    ) -> Result<IntegratedTable, IntegrateError> {
        check_alignment(tables, alignment)?;
        let (names, tuples, interner) = outer_union(tables, alignment);
        let tuples = if self.subsume {
            remove_subsumed_indexed(tuples)
        } else {
            dedup_content(tuples)
        };
        let table_names: Vec<&str> = tables.iter().map(|t| t.name()).collect();
        let display = format!("OuterUnion({})", table_names.join(", "));
        Ok(IntegratedTable::from_tuples(
            &display, &names, tuples, &interner,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig2_tables, fig7_tables};
    use dialite_table::{table, Tid};

    fn fig7_alignment(tables: &[&Table; 3]) -> Alignment {
        Alignment::by_headers(tables)
    }

    #[test]
    fn reproduces_paper_fig8a_outer_join() {
        let (t4, t5, t6) = fig7_tables();
        let al = fig7_alignment(&[&t4, &t5, &t6]);
        let out = OuterJoinIntegrator
            .integrate(&[&t4, &t5, &t6], &al)
            .unwrap();
        let expected = table! {
            "T4 ⟗ T5 ⟗ T6";
            ["Vaccine", "Approver", "Country"];
            ["Pfizer", "FDA", "United States"],
            ["JnJ", Value::null_missing(), Value::null_produced()],
            [Value::null_produced(), Value::null_missing(), "USA"],
            ["J&J", Value::null_produced(), "United States"],
            ["JnJ", Value::null_produced(), "USA"],
        };
        use dialite_table::Value;
        assert!(
            out.table().same_content(&expected),
            "got:\n{}\nexpected:\n{}",
            out.table(),
            expected
        );
        assert_eq!(out.row_count(), 5, "paper Fig. 8(a) has f8–f12");
    }

    #[test]
    fn outer_join_is_order_sensitive_unlike_fd() {
        // The motivation for FD: outer join is not associative. Reordering
        // T4, T5, T6 changes the result (J&J's approver is only derivable
        // when T6 links first).
        let (t4, t5, t6) = fig7_tables();
        let a = OuterJoinIntegrator
            .integrate(&[&t4, &t5, &t6], &Alignment::by_headers(&[&t4, &t5, &t6]))
            .unwrap();
        let b = OuterJoinIntegrator
            .integrate(&[&t6, &t5, &t4], &Alignment::by_headers(&[&t6, &t5, &t4]))
            .unwrap();
        // Compare as value multisets over the same column order.
        let cols_b: Vec<usize> = ["Vaccine", "Approver", "Country"]
            .iter()
            .map(|n| b.table().column_index(n).unwrap())
            .collect();
        let b_reordered = b.table().project(&cols_b, "b").unwrap();
        let a_named = a.table().clone().renamed("b");
        assert!(
            !a_named.same_content(&b_reordered),
            "outer join should be order-sensitive on Fig. 7:\n{}\nvs\n{}",
            a_named,
            b_reordered
        );
    }

    #[test]
    fn inner_join_keeps_only_full_matches() {
        let (t1, _, t3) = fig2_tables();
        let al = Alignment::by_headers(&[&t1, &t3]);
        let out = InnerJoinIntegrator.integrate(&[&t1, &t3], &al).unwrap();
        // Berlin and Barcelona join; Manchester/Boston/New Delhi drop.
        assert_eq!(out.row_count(), 2);
        for row in out.table().rows() {
            assert!(row.iter().all(|v| !v.is_null()));
        }
    }

    #[test]
    fn outer_join_with_no_shared_columns_is_cross_product() {
        let a = table! { "A"; ["x"]; [1], [2] };
        let b = table! { "B"; ["y"]; ["p"], ["q"], ["r"] };
        let al = Alignment::by_headers(&[&a, &b]);
        let out = OuterJoinIntegrator.integrate(&[&a, &b], &al).unwrap();
        assert_eq!(out.row_count(), 6);
    }

    #[test]
    fn outer_union_stacks_and_dedups() {
        let a = table! { "A"; ["x", "y"]; [1, 2], [3, 4] };
        let b = table! { "B"; ["x", "y"]; [1, 2] };
        let al = Alignment::by_headers(&[&a, &b]);
        let out = OuterUnionIntegrator::default()
            .integrate(&[&a, &b], &al)
            .unwrap();
        assert_eq!(out.row_count(), 2);
    }

    #[test]
    fn outer_union_subsumed_removes_partial_rows() {
        let a = table! { "A"; ["x", "y"]; [1, 2] };
        let b = table! { "B"; ["x"]; [1] };
        let al = Alignment::by_headers(&[&a, &b]);
        let plain = OuterUnionIntegrator { subsume: false }
            .integrate(&[&a, &b], &al)
            .unwrap();
        assert_eq!(plain.row_count(), 2);
        let subsumed = OuterUnionIntegrator { subsume: true }
            .integrate(&[&a, &b], &al)
            .unwrap();
        assert_eq!(subsumed.row_count(), 1);
    }

    #[test]
    fn provenance_propagates_through_joins() {
        let (t4, t5, t6) = fig7_tables();
        let al = fig7_alignment(&[&t4, &t5, &t6]);
        let out = OuterJoinIntegrator
            .integrate(&[&t4, &t5, &t6], &al)
            .unwrap();
        // The Pfizer row is witnessed by t11 (T4 row 0) and t13 (T5 row 0).
        let (i, _) = out
            .table()
            .rows()
            .enumerate()
            .find(|(_, r)| r[0] == Value::Text("Pfizer".into()))
            .unwrap();
        use dialite_table::Value;
        let tids: Vec<Tid> = out.provenance(i).iter().copied().collect();
        assert_eq!(tids, vec![Tid::new(0, 0), Tid::new(1, 0)]);
    }

    #[test]
    fn empty_chain() {
        let out = OuterJoinIntegrator
            .integrate(&[], &Alignment::by_headers(&[]))
            .unwrap();
        assert_eq!(out.row_count(), 0);
        let out = InnerJoinIntegrator
            .integrate(&[], &Alignment::by_headers(&[]))
            .unwrap();
        assert_eq!(out.row_count(), 0);
    }

    #[test]
    fn engine_names() {
        assert_eq!(OuterJoinIntegrator.name(), "outer-join");
        assert_eq!(InnerJoinIntegrator.name(), "inner-join");
        assert_eq!(OuterUnionIntegrator::default().name(), "outer-union");
        assert_eq!(
            OuterUnionIntegrator { subsume: true }.name(),
            "outer-union-subsumed"
        );
    }
}
