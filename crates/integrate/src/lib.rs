//! # dialite-integrate
//!
//! ALITE's **Integrate** stage: computing the **Full Disjunction** (FD) of an
//! aligned integration set, plus the alternative integration operators the
//! DIALITE demo compares against (natural outer join, inner join, outer
//! union).
//!
//! ## Semantics (paper §1–§2, Figs. 2–3 and 7–8)
//!
//! After alignment, every input tuple is viewed over the integrated schema
//! (one column per integration ID); attributes a source table does not have
//! are *produced* nulls (`⊥`), nulls present in the source are *missing*
//! nulls (`±`). Over these tuples:
//!
//! * two tuples are **consistent** when they agree on every attribute where
//!   both are non-null (any null is a wildcard);
//! * they are **connected** when they share at least one attribute where
//!   both are non-null and equal (null never joins with anything);
//! * a set of pairwise-consistent tuples whose connection graph is connected
//!   merges into one integrated tuple taking the non-null values.
//!
//! The **full disjunction** is the set of all such merges (including
//! singletons), with *subsumed* tuples removed: `t` is subsumed by `t′` when
//! `t′` agrees with `t` on every attribute where `t` is non-null. Duplicate
//! contents are deduplicated keeping the smallest witness TID set — exactly
//! the convention of paper Fig. 8(b), where `f12 = {t16}` even though
//! `{t12, t16}` merges to the same content.
//!
//! ## Engines
//!
//! | Engine | Description |
//! |---|---|
//! | [`NaiveFd`] | reference: quadratic complementation fixpoint + pairwise subsumption scan |
//! | [`AliteFd`] | ALITE's algorithm: outer union → hash-indexed complementation fixpoint → index-accelerated subsumption removal |
//! | [`ParallelFd`] | ParaFD-style (Paganelli et al.) round-parallel complementation on std scoped threads |
//! | [`OuterJoinIntegrator`] | left-to-right natural outer join (Fig. 6 / Fig. 8(a)); *not* associative, the demo's foil |
//! | [`InnerJoinIntegrator`] | left-to-right natural inner join (Auctus-style) |
//! | [`OuterUnionIntegrator`] | outer union with optional subsumption removal |
//!
//! All engines implement the [`Integrator`] trait, the extension point the
//! demo's Fig. 6 illustrates ("users can add alternative integration
//! operators").
//!
//! ## Dictionary-encoded core
//!
//! Every engine runs over **interned tuples**: [`outer_union`] interns
//! each distinct cell value once into a [`dialite_table::ValueInterner`]
//! and emits [`AlignedTuple`]s of `u32` value-ids. Consistency,
//! connection, merge and subsumption are integer compares; the inverted
//! indexes key on packed `(column, id)` words; and content dedup hashes
//! `Vec<u32>` rows. The [`Integrator`] engines and [`IntegratedTable`]
//! results stay `Value`-typed — ids are resolved back at
//! [`IntegratedTable::from_tuples`]. The lower-level tuple toolkit
//! ([`outer_union`], [`AlignedTuple`], [`remove_subsumed_naive`],
//! [`remove_subsumed_indexed`]) *is* id-typed and passes the interner
//! explicitly; use it when composing custom operators.

mod alite;
mod engine;
mod joins;
mod naive;
mod parallel;
mod result;
mod subsume;
#[cfg(test)]
pub(crate) mod testutil;
mod tuple;

pub use alite::AliteFd;
pub use engine::{IntegrateError, Integrator};
pub use joins::{InnerJoinIntegrator, OuterJoinIntegrator, OuterUnionIntegrator};
pub use naive::NaiveFd;
pub use parallel::ParallelFd;
pub use result::IntegratedTable;
pub use subsume::{remove_subsumed_indexed, remove_subsumed_naive};
pub use tuple::{outer_union, AlignedTuple};
