//! Shared fixtures for the engine tests: the paper's Fig. 2 and Fig. 7
//! integration sets, re-exported from the workspace-wide fixture set in
//! [`dialite_table::fixtures`] so every layer tests against one copy.

pub(crate) use dialite_table::fixtures::{fig2_tables, fig7_tables};
