//! Shared fixtures for the engine tests: the paper's Fig. 2 and Fig. 7
//! integration sets.

use dialite_table::{table, Table, Value};

/// Paper Fig. 2: the COVID tables (T1 query, T2 unionable, T3 joinable).
pub(crate) fn fig2_tables() -> (Table, Table, Table) {
    let t1 = table! {
        "T1"; ["Country", "City", "Vaccination Rate"];
        ["Germany", "Berlin", 0.63],
        ["England", "Manchester", 0.78],
        ["Spain", "Barcelona", 0.82],
    };
    let t2 = table! {
        "T2"; ["Country", "City", "Vaccination Rate"];
        ["Canada", "Toronto", 0.83],
        ["Mexico", "Mexico City", Value::null_missing()],
        ["USA", "Boston", 0.62],
    };
    let t3 = table! {
        "T3"; ["City", "Total Cases", "Death Rate"];
        ["Berlin", 1_400_000, 147],
        ["Barcelona", 2_680_000, 275],
        ["Boston", 263_000, 335],
        ["New Delhi", 2_000_000, 158],
    };
    (t1, t2, t3)
}

/// Paper Fig. 7: the vaccine tables (T4, T5, T6).
pub(crate) fn fig7_tables() -> (Table, Table, Table) {
    let t4 = table! {
        "T4"; ["Vaccine", "Approver"];
        ["Pfizer", "FDA"],
        ["JnJ", Value::null_missing()],
    };
    let t5 = table! {
        "T5"; ["Country", "Approver"];
        ["United States", "FDA"],
        ["USA", Value::null_missing()],
    };
    let t6 = table! {
        "T6"; ["Vaccine", "Country"];
        ["J&J", "United States"],
        ["JnJ", "USA"],
    };
    (t4, t5, t6)
}
