//! ALITE's FD algorithm: outer union → hash-indexed complementation
//! fixpoint → index-accelerated subsumption removal.
//!
//! The key observation (Khatiwada et al., PVLDB 16(4)) is that two tuples
//! can only complement each other if they *share a non-null value in some
//! column* — so candidate pairs come from an inverted index over
//! `(column, value)` posting lists instead of a quadratic scan, and the
//! fixpoint is driven by a worklist of freshly created tuples.
//!
//! The index is keyed on packed `(column << 32) | value_id` words over the
//! dictionary built by [`outer_union`] — probing it is a `u64` hash, not a
//! `Value` clone.

use std::collections::{HashMap, HashSet, VecDeque};

use dialite_align::Alignment;
use dialite_table::{Table, ValueInterner};

use crate::engine::{check_alignment, IntegrateError, Integrator};
use crate::naive::{fd_name, insert_tuple};
use crate::result::IntegratedTable;
use crate::subsume::remove_subsumed_indexed;
use crate::tuple::{outer_union, slot_key, AlignedTuple};

/// ALITE's production FD engine.
#[derive(Debug, Clone)]
pub struct AliteFd {
    /// Abort with [`IntegrateError::BudgetExceeded`] when the working set
    /// exceeds this many tuples (FD output can be exponential).
    pub max_tuples: usize,
}

impl Default for AliteFd {
    fn default() -> Self {
        AliteFd {
            max_tuples: 1_000_000,
        }
    }
}

impl Integrator for AliteFd {
    fn name(&self) -> &str {
        "alite-fd"
    }

    fn integrate(
        &self,
        tables: &[&Table],
        alignment: &Alignment,
    ) -> Result<IntegratedTable, IntegrateError> {
        check_alignment(tables, alignment)?;
        let (names, base, interner) = outer_union(tables, alignment);

        let mut store: Vec<AlignedTuple> = Vec::with_capacity(base.len());
        let mut by_content: HashMap<Vec<u32>, usize> = HashMap::new();
        for t in base {
            insert_tuple(&mut store, &mut by_content, t);
        }

        // Inverted index: packed (column, value-id) → tuple indices.
        let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
        let index_tuple = |index: &mut HashMap<u64, Vec<u32>>, store: &[AlignedTuple], i: usize| {
            for (c, &v) in store[i].values.iter().enumerate() {
                if !ValueInterner::is_null_id(v) {
                    index.entry(slot_key(c, v)).or_default().push(i as u32);
                }
            }
        };
        for i in 0..store.len() {
            index_tuple(&mut index, &store, i);
        }

        let mut tried: HashSet<(u32, u32)> = HashSet::new();
        let mut work: VecDeque<u32> = (0..store.len() as u32).collect();
        while let Some(i) = work.pop_front() {
            // Collect complement candidates: all tuples sharing any
            // non-null value with tuple i.
            let mut candidates: Vec<u32> = Vec::new();
            for (c, &v) in store[i as usize].values.iter().enumerate() {
                if ValueInterner::is_null_id(v) {
                    continue;
                }
                if let Some(post) = index.get(&slot_key(c, v)) {
                    candidates.extend(post.iter().copied());
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
            for j in candidates {
                if j == i {
                    continue;
                }
                let key = (i.min(j), i.max(j));
                if !tried.insert(key) {
                    continue;
                }
                // Shared value ⇒ connected; only consistency left to check.
                if store[i as usize].consistent(&store[j as usize]) {
                    let merged = store[i as usize].merge(&store[j as usize]);
                    let before = store.len();
                    insert_tuple(&mut store, &mut by_content, merged);
                    if store.len() > before {
                        let new_idx = store.len() - 1;
                        index_tuple(&mut index, &store, new_idx);
                        work.push_back(new_idx as u32);
                    }
                }
            }
            if store.len() > self.max_tuples {
                return Err(IntegrateError::BudgetExceeded {
                    engine: self.name().to_string(),
                    limit: self.max_tuples,
                });
            }
        }

        let tuples = remove_subsumed_indexed(store);
        Ok(IntegratedTable::from_tuples(
            &fd_name(tables),
            &names,
            tuples,
            &interner,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveFd;
    use crate::testutil::fig2_tables;
    use dialite_align::Alignment;
    use dialite_table::{table, Value};

    #[test]
    fn reproduces_paper_fig3_exactly() {
        let (t1, t2, t3) = fig2_tables();
        let al = Alignment::by_headers(&[&t1, &t2, &t3]);
        let out = AliteFd::default().integrate(&[&t1, &t2, &t3], &al).unwrap();

        let expected = table! {
            "FD(T1, T2, T3)";
            ["Country", "City", "Vaccination Rate", "Total Cases", "Death Rate"];
            ["Germany", "Berlin", 0.63, 1_400_000, 147],
            ["England", "Manchester", 0.78, Value::null_produced(), Value::null_produced()],
            ["Spain", "Barcelona", 0.82, 2_680_000, 275],
            ["Canada", "Toronto", 0.83, Value::null_produced(), Value::null_produced()],
            ["Mexico", "Mexico City", Value::null_missing(), Value::null_produced(), Value::null_produced()],
            ["USA", "Boston", 0.62, 263_000, 335],
            [Value::null_produced(), "New Delhi", Value::null_produced(), 2_000_000, 158],
        };
        assert!(
            out.table().same_content(&expected),
            "got:\n{}\nexpected:\n{}",
            out.table(),
            expected
        );
        assert_eq!(out.row_count(), 7);
    }

    #[test]
    fn fig3_provenance_matches_paper() {
        let (t1, t2, t3) = fig2_tables();
        let al = Alignment::by_headers(&[&t1, &t2, &t3]);
        let out = AliteFd::default().integrate(&[&t1, &t2, &t3], &al).unwrap();
        // Find the Berlin row; it must be witnessed by t1 (T1 row 0) and
        // t7 (T3 row 0) — `f1 = {t1, t7}` in the paper.
        let city_col = 1;
        let (i, _) = out
            .table()
            .rows()
            .enumerate()
            .find(|(_, r)| r[city_col] == Value::Text("Berlin".into()))
            .expect("Berlin row present");
        let tids: Vec<(u32, u32)> = out.provenance(i).iter().map(|t| (t.table, t.row)).collect();
        assert_eq!(tids, vec![(0, 0), (2, 0)]);
    }

    #[test]
    fn matches_naive_on_fig2() {
        let (t1, t2, t3) = fig2_tables();
        let al = Alignment::by_headers(&[&t1, &t2, &t3]);
        let fast = AliteFd::default().integrate(&[&t1, &t2, &t3], &al).unwrap();
        let slow = NaiveFd::default().integrate(&[&t1, &t2, &t3], &al).unwrap();
        assert!(fast.table().same_content(slow.table()));
    }

    #[test]
    fn preserves_null_kind_distinction() {
        let (t1, t2, t3) = fig2_tables();
        let al = Alignment::by_headers(&[&t1, &t2, &t3]);
        let out = AliteFd::default().integrate(&[&t1, &t2, &t3], &al).unwrap();
        let rate_col = 2;
        let mut missing = 0;
        let mut produced = 0;
        for row in out.table().rows() {
            match &row[rate_col] {
                Value::Null(dialite_table::NullKind::Missing) => missing += 1,
                Value::Null(dialite_table::NullKind::Produced) => produced += 1,
                _ => {}
            }
        }
        // Mexico City's rate is a missing null; New Delhi's is produced.
        assert_eq!(missing, 1);
        assert_eq!(produced, 1);
    }

    #[test]
    fn budget_guard_trips() {
        let mut rows_a = Vec::new();
        let mut rows_b = Vec::new();
        for i in 0..8 {
            rows_a.push(vec![
                Value::Int(1),
                Value::Text(format!("a{i}")),
                Value::null_missing(),
            ]);
            rows_b.push(vec![
                Value::Int(1),
                Value::null_missing(),
                Value::Text(format!("b{i}")),
            ]);
        }
        let a = Table::from_rows("A", &["k", "p", "q"], rows_a).unwrap();
        let b = Table::from_rows("B", &["k", "p", "q"], rows_b).unwrap();
        let al = Alignment::by_headers(&[&a, &b]);
        let engine = AliteFd { max_tuples: 20 };
        assert!(matches!(
            engine.integrate(&[&a, &b], &al),
            Err(IntegrateError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn single_table_fd_is_subsumption_free_identity() {
        let t = table! { "T"; ["a", "b"]; [1, 2], [1, Value::null_missing()] };
        let al = Alignment::by_headers(&[&t]);
        let out = AliteFd::default().integrate(&[&t], &al).unwrap();
        // (1, ±) is subsumed by (1, 2).
        assert_eq!(out.row_count(), 1);
    }
}
