//! Aligned tuples over the integrated schema, and the core FD relations:
//! consistency, connection, merge and subsumption.
//!
//! Tuples are **dictionary-encoded**: every cell is a `u32` value-id from a
//! [`ValueInterner`] built once by [`outer_union`] at ingest. The FD
//! relations are then pure integer compares — no `Value` is cloned or
//! hashed anywhere in the complementation fixpoint or the subsumption pass.
//! Ids are resolved back to [`dialite_table::Value`]s only at the result
//! boundary ([`crate::IntegratedTable::from_tuples`]), so the crate's public
//! engine APIs stay `Value`-typed.

use std::collections::BTreeSet;

use dialite_align::Alignment;
use dialite_table::{Table, Tid, ValueInterner};

/// A tuple over the integrated schema (one slot per integration ID), with
/// its witness TID set — the `{t1, t7}` provenance of paper Fig. 3.
///
/// `values` holds interned value-ids: `ValueInterner::NULL_PRODUCED` (`⊥`),
/// `ValueInterner::NULL_MISSING` (`±`), or an id ≥
/// `ValueInterner::FIRST_VALUE_ID` for a concrete value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignedTuple {
    /// One interned value-id per integration ID.
    pub values: Vec<u32>,
    /// Source tuples merged into this one (sorted set for determinism).
    pub tids: BTreeSet<Tid>,
}

/// Packed inverted-index key: `(column << 32) | value_id`. One `u64` compare
/// and hash replaces the seed's `(u32, Value)` key that cloned a `Value`
/// (often a heap string) on every probe.
#[inline]
pub(crate) fn slot_key(col: usize, vid: u32) -> u64 {
    ((col as u64) << 32) | u64::from(vid)
}

impl AlignedTuple {
    /// Consistency: agree wherever both are non-null (nulls are wildcards).
    pub fn consistent(&self, other: &AlignedTuple) -> bool {
        self.values
            .iter()
            .zip(&other.values)
            .all(|(&a, &b)| a == b || ValueInterner::is_null_id(a) || ValueInterner::is_null_id(b))
    }

    /// Connection: at least one attribute where both are non-null and equal
    /// (null-rejecting equality, as in the join semantics of §3.2).
    pub fn connected(&self, other: &AlignedTuple) -> bool {
        self.values
            .iter()
            .zip(&other.values)
            .any(|(&a, &b)| a == b && !ValueInterner::is_null_id(a))
    }

    /// Complementable = consistent ∧ connected: the merge condition of
    /// ALITE's complementation step.
    pub fn complementable(&self, other: &AlignedTuple) -> bool {
        self.consistent(other) && self.connected(other)
    }

    /// Merge two (complementable) tuples: non-null values win; a *missing*
    /// null dominates a *produced* null so that the output distinguishes
    /// "source said null" (`±`) from "no source had the attribute" (`⊥`),
    /// as in paper Figs. 2–3. Over value-ids this is a single branch per
    /// slot: the reserved null ids order produced < missing < values, so
    /// the two-null case is `max`.
    pub fn merge(&self, other: &AlignedTuple) -> AlignedTuple {
        debug_assert!(self.consistent(other), "merging inconsistent tuples");
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(&a, &b)| {
                if ValueInterner::is_null_id(a) {
                    a.max(b)
                } else {
                    a
                }
            })
            .collect();
        let tids = self.tids.union(&other.tids).copied().collect();
        AlignedTuple { values, tids }
    }

    /// Subsumption: `self ⊒ other` — self agrees with other on every
    /// attribute where other is non-null (so other adds no information).
    pub fn subsumes(&self, other: &AlignedTuple) -> bool {
        other
            .values
            .iter()
            .zip(&self.values)
            .all(|(&o, &s)| ValueInterner::is_null_id(o) || o == s)
    }

    /// Content key for deduplication: the value-ids with both null kinds
    /// collapsed to one id, because content equality treats any null as
    /// equal to any other null (paper Fig. 8(b)).
    pub fn content_key(&self) -> Vec<u32> {
        self.values
            .iter()
            .map(|&v| {
                if ValueInterner::is_null_id(v) {
                    ValueInterner::NULL_PRODUCED
                } else {
                    v
                }
            })
            .collect()
    }

    /// Number of non-null attributes.
    pub fn non_null_count(&self) -> usize {
        self.values
            .iter()
            .filter(|&&v| !ValueInterner::is_null_id(v))
            .count()
    }

    /// Bitmask of non-null positions (one `u64` word per 64 columns).
    pub fn non_null_mask(&self) -> Vec<u64> {
        let mut mask = vec![0u64; self.values.len().div_ceil(64)];
        for (i, &v) in self.values.iter().enumerate() {
            if !ValueInterner::is_null_id(v) {
                mask[i / 64] |= 1 << (i % 64);
            }
        }
        mask
    }

    /// Resolve the value-ids back to owned [`dialite_table::Value`]s.
    pub fn resolve(&self, interner: &ValueInterner) -> Vec<dialite_table::Value> {
        self.values
            .iter()
            .map(|&v| interner.resolve(v).clone())
            .collect()
    }
}

/// Compute the outer union of an integration set over the aligned schema:
/// every input row becomes an [`AlignedTuple`] with produced nulls in the
/// attributes its table does not have. Returns the integrated column names
/// (integration IDs ordered by first appearance), the tuples, and the
/// [`ValueInterner`] their value-ids refer to. Each distinct cell value is
/// interned exactly once here; the fixpoint never creates new values, so
/// the interner is immutable downstream.
///
/// # Panics
/// If `alignment` does not cover exactly the given tables/columns.
pub fn outer_union(
    tables: &[&Table],
    alignment: &Alignment,
) -> (Vec<String>, Vec<AlignedTuple>, ValueInterner) {
    assert_eq!(
        alignment.assignments().len(),
        tables.len(),
        "alignment covers a different number of tables"
    );
    // Order integration IDs by first appearance (paper figures' order).
    let mut order: Vec<u32> = Vec::with_capacity(alignment.num_ids());
    let mut seen = vec![false; alignment.num_ids()];
    for (t, table) in tables.iter().enumerate() {
        assert_eq!(
            alignment.assignments()[t].len(),
            table.column_count(),
            "alignment covers a different number of columns for table {t}"
        );
        for c in 0..table.column_count() {
            let id = alignment.id_of(t, c);
            if !seen[id as usize] {
                seen[id as usize] = true;
                order.push(id);
            }
        }
    }
    let mut slot_of = vec![usize::MAX; alignment.num_ids()];
    for (slot, &id) in order.iter().enumerate() {
        slot_of[id as usize] = slot;
    }
    let names: Vec<String> = order
        .iter()
        .map(|&id| alignment.name_of(id).to_string())
        .collect();

    let width = order.len();
    let mut interner = ValueInterner::new();
    let mut tuples = Vec::new();
    for (t, table) in tables.iter().enumerate() {
        for (r, row) in table.rows().enumerate() {
            let mut values = vec![ValueInterner::NULL_PRODUCED; width];
            for (c, v) in row.iter().enumerate() {
                let slot = slot_of[alignment.id_of(t, c) as usize];
                values[slot] = interner.intern(v);
            }
            let mut tids = BTreeSet::new();
            tids.insert(Tid::new(t as u32, r as u32));
            tuples.push(AlignedTuple { values, tids });
        }
    }
    (names, tuples, interner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_align::Alignment;
    use dialite_table::{table, NullKind, Value};

    fn tup(values: Vec<u32>) -> AlignedTuple {
        AlignedTuple {
            values,
            tids: BTreeSet::new(),
        }
    }

    /// Intern a row of `Value`s for the id-level tests.
    fn row(interner: &mut ValueInterner, values: &[Value]) -> Vec<u32> {
        values.iter().map(|v| interner.intern(v)).collect()
    }

    #[test]
    fn consistency_treats_nulls_as_wildcards() {
        let mut it = ValueInterner::new();
        let a = tup(row(&mut it, &[Value::Int(1), Value::null_missing()]));
        let b = tup(row(&mut it, &[Value::Int(1), Value::Int(2)]));
        let c = tup(row(&mut it, &[Value::Int(9), Value::Int(2)]));
        assert!(a.consistent(&b));
        assert!(b.consistent(&a));
        assert!(!b.consistent(&c));
    }

    #[test]
    fn consistency_detects_conflicts() {
        let mut it = ValueInterner::new();
        let a = tup(row(&mut it, &[Value::Int(1), Value::null_missing()]));
        let c = tup(row(&mut it, &[Value::Int(9), Value::Int(2)]));
        assert!(!a.consistent(&c));
    }

    #[test]
    fn connection_requires_shared_non_null_equal() {
        let mut it = ValueInterner::new();
        let a = tup(row(&mut it, &[Value::Int(1), Value::null_missing()]));
        let b = tup(row(&mut it, &[Value::Int(1), Value::Int(2)]));
        let c = tup(row(&mut it, &[Value::null_produced(), Value::Int(2)]));
        assert!(a.connected(&b));
        assert!(!a.connected(&c), "nulls never connect");
        let d = tup(row(
            &mut it,
            &[Value::null_missing(), Value::null_missing()],
        ));
        assert!(!d.connected(&d), "all-null tuples connect to nothing");
    }

    #[test]
    fn merge_prefers_values_then_missing_nulls() {
        let mut it = ValueInterner::new();
        let a = AlignedTuple {
            values: row(
                &mut it,
                &[Value::Int(1), Value::null_missing(), Value::null_produced()],
            ),
            tids: [Tid::new(0, 0)].into_iter().collect(),
        };
        let b = AlignedTuple {
            values: row(
                &mut it,
                &[
                    Value::Int(1),
                    Value::null_produced(),
                    Value::null_produced(),
                ],
            ),
            tids: [Tid::new(1, 0)].into_iter().collect(),
        };
        let m = a.merge(&b);
        assert_eq!(it.resolve(m.values[0]), &Value::Int(1));
        assert_eq!(m.values[1], ValueInterner::NULL_MISSING);
        assert_eq!(m.values[2], ValueInterner::NULL_PRODUCED);
        assert_eq!(m.tids.len(), 2);
    }

    #[test]
    fn subsumption_examples_from_fig8() {
        let mut it = ValueInterner::new();
        // f12 = (JnJ, ⊥, USA) subsumes t12-as-aligned = (JnJ, ±, ⊥).
        let f12 = tup(row(
            &mut it,
            &["JnJ".into(), Value::null_produced(), "USA".into()],
        ));
        let t12 = tup(row(
            &mut it,
            &["JnJ".into(), Value::null_missing(), Value::null_produced()],
        ));
        assert!(f12.subsumes(&t12));
        assert!(!t12.subsumes(&f12));
        // Every tuple subsumes itself.
        assert!(f12.subsumes(&f12));
        // f13 (J&J,…) does not subsume f12 (JnJ,…).
        let f13 = tup(row(
            &mut it,
            &["J&J".into(), "FDA".into(), "United States".into()],
        ));
        assert!(!f13.subsumes(&f12));
    }

    #[test]
    fn content_key_collapses_null_kinds() {
        let mut it = ValueInterner::new();
        let a = tup(row(&mut it, &[Value::Int(1), Value::null_missing()]));
        let b = tup(row(&mut it, &[Value::Int(1), Value::null_produced()]));
        assert_ne!(a.values, b.values, "ids keep the null kinds apart");
        assert_eq!(a.content_key(), b.content_key());
    }

    #[test]
    fn masks_and_counts() {
        let mut it = ValueInterner::new();
        let t = tup(row(
            &mut it,
            &[Value::Int(1), Value::null_missing(), Value::Int(3)],
        ));
        assert_eq!(t.non_null_count(), 2);
        assert_eq!(t.non_null_mask(), vec![0b101]);
        let one = it.intern(&Value::Int(1));
        let wide = tup(vec![one; 65]);
        assert_eq!(wide.non_null_mask().len(), 2);
        assert_eq!(wide.non_null_mask()[1], 1);
    }

    #[test]
    fn slot_key_packs_column_and_id() {
        assert_eq!(slot_key(0, 2), 2);
        assert_eq!(slot_key(1, 0), 1 << 32);
        assert_ne!(slot_key(1, 2), slot_key(2, 1));
    }

    #[test]
    fn outer_union_pads_with_produced_nulls_and_orders_by_first_appearance() {
        let t1 = table! { "T1"; ["country", "city"]; ["Germany", "Berlin"] };
        let t3 = table! { "T3"; ["city", "cases"]; ["Berlin", 1_400_000] };
        let al = Alignment::by_headers(&[&t1, &t3]);
        let (names, tuples, interner) = outer_union(&[&t1, &t3], &al);
        assert_eq!(names, vec!["country", "city", "cases"]);
        assert_eq!(tuples.len(), 2);
        // T1 row: cases is produced-null.
        assert_eq!(tuples[0].values[2], ValueInterner::NULL_PRODUCED);
        // T3 row: country is produced-null, city set.
        assert!(ValueInterner::is_null_id(tuples[1].values[0]));
        assert_eq!(
            interner.resolve(tuples[1].values[1]),
            &Value::Text("Berlin".into())
        );
        // "Berlin" appears in both tables but is interned once.
        assert_eq!(tuples[0].values[1], tuples[1].values[1]);
        assert_eq!(tuples[1].tids.iter().next().copied(), Some(Tid::new(1, 0)));
    }

    #[test]
    fn outer_union_preserves_missing_nulls() {
        let t = dialite_table::Table::from_rows("t", &["a"], vec![vec![Value::null_missing()]])
            .unwrap();
        let al = Alignment::by_headers(&[&t]);
        let (_, tuples, interner) = outer_union(&[&t], &al);
        assert_eq!(tuples[0].values[0], ValueInterner::NULL_MISSING);
        assert!(matches!(
            interner.resolve(tuples[0].values[0]),
            Value::Null(NullKind::Missing)
        ));
    }

    #[test]
    #[should_panic(expected = "different number of tables")]
    fn alignment_table_count_mismatch_panics() {
        let t = table! { "t"; ["a"]; [1] };
        let al = Alignment::by_headers(&[&t]);
        let other = table! { "o"; ["a"]; [1] };
        let _ = outer_union(&[&t, &other], &al);
    }
}
