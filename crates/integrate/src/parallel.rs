//! ParaFD-style parallel Full Disjunction (stand-in for Paganelli et al.,
//! Big Data Research 2019 — see DESIGN.md §1).
//!
//! The complementation fixpoint proceeds in rounds. Each round takes the
//! *frontier* (tuples created in the previous round; initially the outer
//! union) and, in parallel over std scoped threads, probes the shared
//! read-only inverted index for complementable partners. Merges are
//! collected per thread, deduplicated serially, appended to the store, and
//! become the next frontier. Subsumption removal reuses ALITE's indexed pass.

use std::collections::{HashMap, HashSet};

use dialite_align::Alignment;
use dialite_table::{Table, ValueInterner};

use crate::engine::{check_alignment, IntegrateError, Integrator};
use crate::naive::{fd_name, insert_tuple};
use crate::result::IntegratedTable;
use crate::subsume::remove_subsumed_indexed;
use crate::tuple::{outer_union, slot_key, AlignedTuple};

/// Round-parallel FD engine.
#[derive(Debug, Clone)]
pub struct ParallelFd {
    /// Worker threads per round (defaults to available parallelism).
    pub threads: usize,
    /// Abort when the working set exceeds this many tuples.
    pub max_tuples: usize,
}

impl Default for ParallelFd {
    fn default() -> Self {
        ParallelFd {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_tuples: 1_000_000,
        }
    }
}

impl Integrator for ParallelFd {
    fn name(&self) -> &str {
        "parallel-fd"
    }

    fn integrate(
        &self,
        tables: &[&Table],
        alignment: &Alignment,
    ) -> Result<IntegratedTable, IntegrateError> {
        check_alignment(tables, alignment)?;
        let (names, base, interner) = outer_union(tables, alignment);
        let threads = self.threads.max(1);

        let mut store: Vec<AlignedTuple> = Vec::with_capacity(base.len());
        let mut by_content: HashMap<Vec<u32>, usize> = HashMap::new();
        for t in base {
            insert_tuple(&mut store, &mut by_content, t);
        }

        let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, t) in store.iter().enumerate() {
            for (c, &v) in t.values.iter().enumerate() {
                if !ValueInterner::is_null_id(v) {
                    index.entry(slot_key(c, v)).or_default().push(i as u32);
                }
            }
        }

        let mut tried: HashSet<(u32, u32)> = HashSet::new();
        let mut frontier: Vec<u32> = (0..store.len() as u32).collect();

        while !frontier.is_empty() {
            // Parallel candidate probing: each worker scans a slice of the
            // frontier against the read-only store/index of this round.
            let store_ref = &store;
            let index_ref = &index;
            let chunk = frontier.len().div_ceil(threads);
            let mut proposals: Vec<(u32, u32)> = std::thread::scope(|s| {
                let mut handles = Vec::new();
                for slice in frontier.chunks(chunk.max(1)) {
                    handles.push(s.spawn(move || {
                        let mut local: Vec<(u32, u32)> = Vec::new();
                        for &i in slice {
                            let t = &store_ref[i as usize];
                            let mut cands: Vec<u32> = Vec::new();
                            for (c, &v) in t.values.iter().enumerate() {
                                if ValueInterner::is_null_id(v) {
                                    continue;
                                }
                                if let Some(post) = index_ref.get(&slot_key(c, v)) {
                                    cands.extend(post.iter().copied());
                                }
                            }
                            cands.sort_unstable();
                            cands.dedup();
                            for j in cands {
                                if j == i {
                                    continue;
                                }
                                if t.consistent(&store_ref[j as usize]) {
                                    local.push((i.min(j), i.max(j)));
                                }
                            }
                        }
                        local
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("worker panicked"))
                    .collect()
            });

            proposals.sort_unstable();
            proposals.dedup();

            // Serial merge application keeps the store/index/dedup simple
            // and deterministic (the probing dominates the cost).
            let round_start = store.len();
            for (i, j) in proposals {
                if !tried.insert((i, j)) {
                    continue;
                }
                let merged = store[i as usize].merge(&store[j as usize]);
                let before = store.len();
                insert_tuple(&mut store, &mut by_content, merged);
                if store.len() > before {
                    let idx = (store.len() - 1) as u32;
                    for (c, &v) in store[idx as usize].values.iter().enumerate() {
                        if !ValueInterner::is_null_id(v) {
                            index.entry(slot_key(c, v)).or_default().push(idx);
                        }
                    }
                }
            }
            if store.len() > self.max_tuples {
                return Err(IntegrateError::BudgetExceeded {
                    engine: self.name().to_string(),
                    limit: self.max_tuples,
                });
            }
            frontier = (round_start as u32..store.len() as u32).collect();
        }

        let tuples = remove_subsumed_indexed(store);
        Ok(IntegratedTable::from_tuples(
            &fd_name(tables),
            &names,
            tuples,
            &interner,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alite::AliteFd;
    use crate::testutil::fig2_tables;
    use dialite_align::Alignment;
    use dialite_table::{table, Value};

    #[test]
    fn matches_alite_on_fig2() {
        let (t1, t2, t3) = fig2_tables();
        let al = Alignment::by_headers(&[&t1, &t2, &t3]);
        let par = ParallelFd::default()
            .integrate(&[&t1, &t2, &t3], &al)
            .unwrap();
        let ser = AliteFd::default().integrate(&[&t1, &t2, &t3], &al).unwrap();
        assert!(par.table().same_content(ser.table()));
        assert_eq!(par.row_count(), 7);
    }

    #[test]
    fn single_thread_configuration_works() {
        let (t1, t2, t3) = fig2_tables();
        let al = Alignment::by_headers(&[&t1, &t2, &t3]);
        let engine = ParallelFd {
            threads: 1,
            ..ParallelFd::default()
        };
        let out = engine.integrate(&[&t1, &t2, &t3], &al).unwrap();
        assert_eq!(out.row_count(), 7);
    }

    #[test]
    fn more_threads_than_tuples_is_fine() {
        let a = table! { "A"; ["x"]; [1] };
        let al = Alignment::by_headers(&[&a]);
        let engine = ParallelFd {
            threads: 64,
            ..ParallelFd::default()
        };
        let out = engine.integrate(&[&a], &al).unwrap();
        assert_eq!(out.row_count(), 1);
    }

    #[test]
    fn budget_guard_trips() {
        let mut rows_a = Vec::new();
        let mut rows_b = Vec::new();
        for i in 0..8 {
            rows_a.push(vec![
                Value::Int(1),
                Value::Text(format!("a{i}")),
                Value::null_missing(),
            ]);
            rows_b.push(vec![
                Value::Int(1),
                Value::null_missing(),
                Value::Text(format!("b{i}")),
            ]);
        }
        let a = Table::from_rows("A", &["k", "p", "q"], rows_a).unwrap();
        let b = Table::from_rows("B", &["k", "p", "q"], rows_b).unwrap();
        let al = Alignment::by_headers(&[&a, &b]);
        let engine = ParallelFd {
            threads: 2,
            max_tuples: 20,
        };
        assert!(matches!(
            engine.integrate(&[&a, &b], &al),
            Err(IntegrateError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn empty_input() {
        let out = ParallelFd::default()
            .integrate(&[], &Alignment::by_headers(&[]))
            .unwrap();
        assert_eq!(out.row_count(), 0);
    }
}
