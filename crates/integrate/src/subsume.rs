//! Subsumption removal: dropping output tuples that add no information.
//!
//! Two variants share semantics and differ in cost, which experiment E6
//! ablates: a quadratic reference scan and ALITE's index-accelerated pass.
//! Both operate on dictionary-encoded tuples: content dedup keys on
//! `Vec<u32>` value-ids and the inverted index on packed `(col, id)` words,
//! so neither pass touches a [`dialite_table::Value`].

use std::collections::HashMap;

use crate::tuple::{slot_key, AlignedTuple};
use dialite_table::ValueInterner;

/// Deduplicate by content, keeping the smallest witness TID set
/// (paper Fig. 8(b): `f12 = {t16}`, not `{t12, t16}`).
pub(crate) fn dedup_content(tuples: Vec<AlignedTuple>) -> Vec<AlignedTuple> {
    let mut by_content: HashMap<Vec<u32>, AlignedTuple> = HashMap::with_capacity(tuples.len());
    for t in tuples {
        use std::collections::hash_map::Entry;
        match by_content.entry(t.content_key()) {
            Entry::Occupied(mut e) => {
                let existing = e.get_mut();
                if (t.tids.len(), &t.tids) < (existing.tids.len(), &existing.tids) {
                    existing.tids = t.tids;
                }
            }
            Entry::Vacant(e) => {
                e.insert(t);
            }
        }
    }
    by_content.into_values().collect()
}

/// Quadratic reference implementation: keep `t` unless some other tuple with
/// different content subsumes it. Input is content-deduplicated first.
pub fn remove_subsumed_naive(tuples: Vec<AlignedTuple>) -> Vec<AlignedTuple> {
    let tuples = dedup_content(tuples);
    let mut keep = Vec::with_capacity(tuples.len());
    'outer: for (i, t) in tuples.iter().enumerate() {
        for (j, other) in tuples.iter().enumerate() {
            if i != j && other.subsumes(t) {
                // Content is deduplicated, so subsumption here is strict
                // unless both subsume each other with equal content — which
                // dedup ruled out.
                continue 'outer;
            }
        }
        keep.push(t.clone());
    }
    keep
}

/// ALITE's accelerated pass: process tuples in decreasing non-null count; a
/// subsumer of `t` must agree with `t` on *every* non-null attribute, so it
/// must appear in the posting list of any one of them — we probe the first.
/// All-null tuples are subsumed by anything non-empty.
pub fn remove_subsumed_indexed(tuples: Vec<AlignedTuple>) -> Vec<AlignedTuple> {
    let mut tuples = dedup_content(tuples);
    tuples.sort_by(|a, b| {
        b.non_null_count()
            .cmp(&a.non_null_count())
            .then_with(|| a.values.cmp(&b.values))
    });
    let mut kept: Vec<AlignedTuple> = Vec::with_capacity(tuples.len());
    let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
    for t in tuples {
        let first_non_null = t
            .values
            .iter()
            .enumerate()
            .find(|(_, &v)| !ValueInterner::is_null_id(v))
            .map(|(c, &v)| slot_key(c, v));
        let subsumed = match first_non_null {
            Some(key) => index
                .get(&key)
                .map(|cands| cands.iter().any(|&k| kept[k].subsumes(&t)))
                .unwrap_or(false),
            // All-null tuple: subsumed by any kept tuple (vacuous agreement).
            None => !kept.is_empty(),
        };
        if subsumed {
            continue;
        }
        let idx = kept.len();
        for (c, &v) in t.values.iter().enumerate() {
            if !ValueInterner::is_null_id(v) {
                index.entry(slot_key(c, v)).or_default().push(idx);
            }
        }
        kept.push(t);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::{Tid, Value};
    use std::collections::BTreeSet;

    /// A tiny fixed dictionary so tests can write ids directly: id 2 ↔ 1,
    /// id 3 ↔ 2, id 4 ↔ 3, id 5 ↔ 9.
    fn interner() -> ValueInterner {
        let mut it = ValueInterner::new();
        for v in [1i64, 2, 3, 9] {
            it.intern(&Value::Int(v));
        }
        it
    }

    fn vid(it: &ValueInterner, v: i64) -> u32 {
        it.get(&Value::Int(v)).expect("in the fixed dictionary")
    }

    fn tup(values: Vec<u32>, tids: &[(u32, u32)]) -> AlignedTuple {
        AlignedTuple {
            values,
            tids: tids.iter().map(|&(t, r)| Tid::new(t, r)).collect(),
        }
    }

    fn contents(mut tuples: Vec<AlignedTuple>) -> Vec<Vec<u32>> {
        tuples.sort_by(|a, b| a.values.cmp(&b.values));
        tuples.into_iter().map(|t| t.values).collect()
    }

    const MISSING: u32 = ValueInterner::NULL_MISSING;
    const PRODUCED: u32 = ValueInterner::NULL_PRODUCED;

    #[test]
    fn dedup_keeps_smallest_witness_set() {
        let it = interner();
        let a = tup(vec![vid(&it, 1)], &[(0, 0), (1, 0)]);
        let b = tup(vec![vid(&it, 1)], &[(2, 0)]);
        let out = dedup_content(vec![a, b]);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].tids,
            [Tid::new(2, 0)].into_iter().collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn dedup_treats_null_kinds_as_equal_content() {
        let it = interner();
        let a = tup(vec![vid(&it, 1), MISSING], &[(0, 0)]);
        let b = tup(vec![vid(&it, 1), PRODUCED], &[(1, 0)]);
        assert_eq!(dedup_content(vec![a, b]).len(), 1);
    }

    #[test]
    fn strictly_subsumed_tuples_are_removed() {
        let it = interner();
        let full = tup(vec![vid(&it, 1), vid(&it, 2)], &[(0, 0), (1, 0)]);
        let part = tup(vec![vid(&it, 1), PRODUCED], &[(0, 0)]);
        let out = remove_subsumed_naive(vec![full.clone(), part.clone()]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values, full.values);
        let out = remove_subsumed_indexed(vec![part, full.clone()]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].values, full.values);
    }

    #[test]
    fn incomparable_tuples_all_kept() {
        let it = interner();
        let a = tup(vec![vid(&it, 1), PRODUCED], &[(0, 0)]);
        let b = tup(vec![PRODUCED, vid(&it, 2)], &[(1, 0)]);
        let c = tup(vec![vid(&it, 9), vid(&it, 2)], &[(2, 0)]);
        let naive = remove_subsumed_naive(vec![a.clone(), b.clone(), c.clone()]);
        // b IS subsumed by c (b non-null only at col1, c agrees there).
        assert_eq!(naive.len(), 2);
        let indexed = remove_subsumed_indexed(vec![a, b, c]);
        assert_eq!(contents(naive), contents(indexed));
    }

    #[test]
    fn all_null_tuple_subsumed_by_anything() {
        let it = interner();
        let empty = tup(vec![MISSING, MISSING], &[(0, 0)]);
        let something = tup(vec![vid(&it, 1), PRODUCED], &[(1, 0)]);
        assert_eq!(
            remove_subsumed_naive(vec![empty.clone(), something.clone()]).len(),
            1
        );
        assert_eq!(
            remove_subsumed_indexed(vec![empty.clone(), something]).len(),
            1
        );
        // …but kept when alone.
        assert_eq!(remove_subsumed_indexed(vec![empty]).len(), 1);
    }

    #[test]
    fn naive_and_indexed_agree_on_chains() {
        let it = interner();
        // a ⊑ b ⊑ c chain plus an incomparable d.
        let a = tup(vec![vid(&it, 1), PRODUCED, PRODUCED], &[(0, 0)]);
        let b = tup(vec![vid(&it, 1), vid(&it, 2), PRODUCED], &[(1, 0)]);
        let c = tup(vec![vid(&it, 1), vid(&it, 2), vid(&it, 3)], &[(2, 0)]);
        let d = tup(vec![vid(&it, 9), PRODUCED, PRODUCED], &[(3, 0)]);
        let input = vec![a, b, c.clone(), d.clone()];
        let naive = remove_subsumed_naive(input.clone());
        let indexed = remove_subsumed_indexed(input);
        assert_eq!(contents(naive.clone()), contents(indexed));
        assert_eq!(naive.len(), 2);
        let cs = contents(naive);
        assert!(cs.contains(&c.values));
        assert!(cs.contains(&d.values));
    }
}
