//! The output of an integration operator: an integrated table plus
//! per-tuple provenance.

use std::collections::BTreeSet;
use std::fmt;

use dialite_table::{Table, Tid, ValueInterner};

use crate::tuple::AlignedTuple;

/// An integrated table: the data (a [`Table`] over the integration IDs) plus
/// the witness TID set of every output tuple, as displayed in the paper's
/// figures (`f1 = {t1, t7}` …).
#[derive(Debug, Clone)]
pub struct IntegratedTable {
    table: Table,
    provenance: Vec<BTreeSet<Tid>>,
}

impl IntegratedTable {
    /// Assemble from the integrated column names and dictionary-encoded
    /// tuples, resolving value-ids back to `Value`s through `interner` (the
    /// one [`crate::outer_union`] built) and sorting rows into canonical
    /// (value) order for deterministic output. This is the boundary where
    /// ids leave the integration core — everything downstream is
    /// `Value`-typed.
    pub fn from_tuples(
        name: &str,
        columns: &[String],
        tuples: Vec<AlignedTuple>,
        interner: &ValueInterner,
    ) -> IntegratedTable {
        let mut rows: Vec<(Vec<dialite_table::Value>, BTreeSet<Tid>)> = tuples
            .into_iter()
            .map(|t| (t.resolve(interner), t.tids))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let mut table = Table::new(name, columns).expect("integration IDs are unique");
        let mut provenance = Vec::with_capacity(rows.len());
        for (values, tids) in rows {
            table
                .push_row(values)
                .expect("aligned tuples have schema arity");
            provenance.push(tids);
        }
        table.infer_types();
        IntegratedTable { table, provenance }
    }

    /// The integrated data table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Consume into the data table (dropping provenance).
    pub fn into_table(self) -> Table {
        self.table
    }

    /// Witness TIDs of output row `i`.
    pub fn provenance(&self, i: usize) -> &BTreeSet<Tid> {
        &self.provenance[i]
    }

    /// All provenance sets, row-aligned with the table.
    pub fn provenances(&self) -> &[BTreeSet<Tid>] {
        &self.provenance
    }

    /// Number of output tuples.
    pub fn row_count(&self) -> usize {
        self.table.row_count()
    }

    /// Render with OID/TID columns in the style of paper Figs. 3 and 8.
    /// `table_names` (optional) maps table indices to display names.
    pub fn display_with_provenance(&self, table_names: Option<&[&str]>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# {} ({} rows)\n",
            self.table.name(),
            self.row_count()
        ));
        for (i, row) in self.table.rows().enumerate() {
            let tids: Vec<String> = self.provenance[i]
                .iter()
                .map(|tid| match table_names {
                    Some(names) => format!("{}[{}]", names[tid.table as usize], tid.row),
                    None => tid.to_string(),
                })
                .collect();
            let values: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&format!(
                "f{} {{{}}} | {}\n",
                i + 1,
                tids.join(", "),
                values.join(" | ")
            ));
        }
        out
    }
}

impl fmt::Display for IntegratedTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::Value;

    fn tuples() -> (Vec<AlignedTuple>, ValueInterner) {
        let mut interner = ValueInterner::new();
        let tuples = vec![
            AlignedTuple {
                values: vec![
                    interner.intern(&Value::Text("b".into())),
                    interner.intern(&Value::Int(2)),
                ],
                tids: [Tid::new(1, 0)].into_iter().collect(),
            },
            AlignedTuple {
                values: vec![
                    interner.intern(&Value::Text("a".into())),
                    interner.intern(&Value::Int(1)),
                ],
                tids: [Tid::new(0, 0), Tid::new(1, 1)].into_iter().collect(),
            },
        ];
        (tuples, interner)
    }

    #[test]
    fn rows_are_sorted_canonically_with_aligned_provenance() {
        let (tuples, interner) = tuples();
        let it = IntegratedTable::from_tuples(
            "r",
            &["x".to_string(), "y".to_string()],
            tuples,
            &interner,
        );
        assert_eq!(it.row_count(), 2);
        assert_eq!(it.table().row(0).unwrap()[0], Value::Text("a".into()));
        assert_eq!(it.provenance(0).len(), 2);
        assert_eq!(it.provenance(1).len(), 1);
    }

    #[test]
    fn display_with_provenance_shows_tids() {
        let (tuples, interner) = tuples();
        let it = IntegratedTable::from_tuples(
            "r",
            &["x".to_string(), "y".to_string()],
            tuples,
            &interner,
        );
        let plain = it.display_with_provenance(None);
        assert!(plain.contains("t0.0"), "{plain}");
        let named = it.display_with_provenance(Some(&["T1", "T2"]));
        assert!(named.contains("T1[0]"), "{named}");
        assert!(named.contains("T2[1]"), "{named}");
    }

    #[test]
    fn empty_result() {
        let it =
            IntegratedTable::from_tuples("r", &["x".to_string()], vec![], &ValueInterner::new());
        assert_eq!(it.row_count(), 0);
        assert!(it.provenances().is_empty());
    }
}
