//! Reference Full Disjunction: quadratic complementation fixpoint plus
//! quadratic subsumption scan. Exponential on adversarial inputs (FD output
//! can be exponential), guarded by a tuple budget. Used as the correctness
//! oracle for the optimized engines.

use std::collections::{HashMap, HashSet};

use dialite_align::Alignment;
use dialite_table::Table;

use crate::engine::{check_alignment, IntegrateError, Integrator};
use crate::result::IntegratedTable;
use crate::subsume::remove_subsumed_naive;
use crate::tuple::{outer_union, AlignedTuple};

/// The reference FD engine. See the module docs.
#[derive(Debug, Clone)]
pub struct NaiveFd {
    /// Abort with [`IntegrateError::BudgetExceeded`] when the working set
    /// exceeds this many tuples.
    pub max_tuples: usize,
}

impl Default for NaiveFd {
    fn default() -> Self {
        NaiveFd {
            max_tuples: 1_000_000,
        }
    }
}

impl Integrator for NaiveFd {
    fn name(&self) -> &str {
        "naive-fd"
    }

    fn integrate(
        &self,
        tables: &[&Table],
        alignment: &Alignment,
    ) -> Result<IntegratedTable, IntegrateError> {
        check_alignment(tables, alignment)?;
        let (names, base, interner) = outer_union(tables, alignment);

        let mut store: Vec<AlignedTuple> = Vec::with_capacity(base.len());
        let mut by_content: HashMap<Vec<u32>, usize> = HashMap::new();
        for t in base {
            insert_tuple(&mut store, &mut by_content, t);
        }

        let mut tried: HashSet<(u32, u32)> = HashSet::new();
        loop {
            let mut new_tuples: Vec<AlignedTuple> = Vec::new();
            let n = store.len();
            for i in 0..n {
                for j in (i + 1)..n {
                    if !tried.insert((i as u32, j as u32)) {
                        continue;
                    }
                    if store[i].complementable(&store[j]) {
                        new_tuples.push(store[i].merge(&store[j]));
                    }
                }
            }
            let before = store.len();
            for t in new_tuples {
                insert_tuple(&mut store, &mut by_content, t);
            }
            if store.len() > self.max_tuples {
                return Err(IntegrateError::BudgetExceeded {
                    engine: self.name().to_string(),
                    limit: self.max_tuples,
                });
            }
            if store.len() == before {
                break;
            }
        }

        let tuples = remove_subsumed_naive(store);
        let name = fd_name(tables);
        Ok(IntegratedTable::from_tuples(
            &name, &names, tuples, &interner,
        ))
    }
}

/// Insert keeping content unique with the smallest witness TID set. Content
/// is keyed on normalized value-ids ([`AlignedTuple::content_key`]), so the
/// two null kinds count as the same content.
pub(crate) fn insert_tuple(
    store: &mut Vec<AlignedTuple>,
    by_content: &mut HashMap<Vec<u32>, usize>,
    t: AlignedTuple,
) {
    use std::collections::hash_map::Entry;
    match by_content.entry(t.content_key()) {
        Entry::Occupied(e) => {
            let existing = &mut store[*e.get()];
            if (t.tids.len(), &t.tids) < (existing.tids.len(), &existing.tids) {
                existing.tids = t.tids;
            }
        }
        Entry::Vacant(e) => {
            e.insert(store.len());
            store.push(t);
        }
    }
}

/// Result-table name in the paper's style: `FD(T1, T2, T3)`.
pub(crate) fn fd_name(tables: &[&Table]) -> String {
    let names: Vec<&str> = tables.iter().map(|t| t.name()).collect();
    format!("FD({})", names.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_align::Alignment;
    use dialite_table::{table, Value};

    #[test]
    fn two_joinable_rows_merge() {
        let a = table! { "A"; ["city", "country"]; ["Berlin", "Germany"] };
        let b = table! { "B"; ["city", "cases"]; ["Berlin", 147] };
        let al = Alignment::by_headers(&[&a, &b]);
        let out = NaiveFd::default().integrate(&[&a, &b], &al).unwrap();
        assert_eq!(out.row_count(), 1);
        let row = out.table().row(0).unwrap();
        assert_eq!(row[0], Value::Text("Berlin".into()));
        assert_eq!(row[1], Value::Text("Germany".into()));
        assert_eq!(row[2], Value::Int(147));
        assert_eq!(out.provenance(0).len(), 2);
    }

    #[test]
    fn disconnected_rows_stay_separate() {
        let a = table! { "A"; ["city"]; ["Berlin"] };
        let b = table! { "B"; ["city"]; ["Boston"] };
        let al = Alignment::by_headers(&[&a, &b]);
        let out = NaiveFd::default().integrate(&[&a, &b], &al).unwrap();
        assert_eq!(out.row_count(), 2);
    }

    #[test]
    fn transitive_merge_through_chain() {
        // a–b share x, b–c share y: the triple merges via the chain.
        let a = table! { "A"; ["x", "y", "z"]; [1, Value::null_missing(), Value::null_missing()] };
        let b = table! { "B"; ["x", "y"]; [1, 2] };
        let c = table! { "C"; ["y", "z"]; [2, 3] };
        let al = Alignment::by_headers(&[&a, &b, &c]);
        let out = NaiveFd::default().integrate(&[&a, &b, &c], &al).unwrap();
        assert_eq!(out.row_count(), 1, "{}", out.table());
        let row = out.table().row(0).unwrap();
        assert_eq!(row, &[Value::Int(1), Value::Int(2), Value::Int(3)]);
        // Minimal witness: A's tuple (1, ±, ±) adds no information beyond
        // merge(B, C), so the reported provenance is {B.0, C.0} alone —
        // the same convention as paper Fig. 8(b)'s f12 = {t16}.
        assert_eq!(out.provenance(0).len(), 2);
    }

    #[test]
    fn budget_guard_trips() {
        // Every row joins with every other through a shared key → lots of
        // merges; a tiny budget must trip, not hang.
        let mut rows_a = Vec::new();
        let mut rows_b = Vec::new();
        for i in 0..8 {
            rows_a.push(vec![
                Value::Int(1),
                Value::Text(format!("a{i}")),
                Value::null_missing(),
            ]);
            rows_b.push(vec![
                Value::Int(1),
                Value::null_missing(),
                Value::Text(format!("b{i}")),
            ]);
        }
        let a = Table::from_rows("A", &["k", "p", "q"], rows_a).unwrap();
        let b = Table::from_rows("B", &["k", "p", "q"], rows_b).unwrap();
        let al = Alignment::by_headers(&[&a, &b]);
        let engine = NaiveFd { max_tuples: 20 };
        let err = engine.integrate(&[&a, &b], &al).unwrap_err();
        assert!(matches!(err, IntegrateError::BudgetExceeded { .. }));
    }

    #[test]
    fn empty_input() {
        let out = NaiveFd::default()
            .integrate(&[], &Alignment::by_headers(&[]))
            .unwrap();
        assert_eq!(out.row_count(), 0);
    }

    #[test]
    fn result_name_follows_paper_convention() {
        let a = table! { "T1"; ["x"]; [1] };
        let b = table! { "T2"; ["x"]; [1] };
        let al = Alignment::by_headers(&[&a, &b]);
        let out = NaiveFd::default().integrate(&[&a, &b], &al).unwrap();
        assert_eq!(out.table().name(), "FD(T1, T2)");
    }
}
