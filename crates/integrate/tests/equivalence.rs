//! Equivalence suite over the dictionary-encoded integration core: on
//! randomly generated datagen lakes, every FD engine must produce the same
//! integrated table (content *and* provenance), and the two subsumption
//! passes must keep exactly the same tuples.
//!
//! This is the guard rail for the interned rework — if value-id semantics
//! ever diverge from `Value` semantics (null wildcards, null-kind merging,
//! content dedup), the engines drift apart here first.

use dialite_align::Alignment;
use dialite_datagen::workloads::FdWorkload;
use dialite_integrate::{
    outer_union, remove_subsumed_indexed, remove_subsumed_naive, AlignedTuple, AliteFd,
    IntegratedTable, Integrator, NaiveFd, ParallelFd,
};
use dialite_table::Table;

/// The workload grid: enough shared keys that complementation chains fire,
/// plus nulls so subsumption has real work to do.
fn workloads() -> Vec<FdWorkload> {
    let mut out = Vec::new();
    for seed in [1u64, 7, 42] {
        out.push(FdWorkload {
            tables: 3,
            rows: 40,
            key_domain: 25,
            null_rate: 0.2,
            seed,
        });
        out.push(FdWorkload {
            tables: 4,
            rows: 60,
            key_domain: 120,
            null_rate: 0.1,
            seed,
        });
    }
    // A dense pathological-ish lake: few keys, many nulls.
    out.push(FdWorkload {
        tables: 3,
        rows: 25,
        key_domain: 6,
        null_rate: 0.35,
        seed: 99,
    });
    out
}

fn integrate(engine: &dyn Integrator, tables: &[Table]) -> IntegratedTable {
    let refs: Vec<&Table> = tables.iter().collect();
    let al = Alignment::by_headers(&refs);
    engine.integrate(&refs, &al).expect("within budget")
}

#[test]
fn all_fd_engines_agree_on_datagen_lakes() {
    for w in workloads() {
        let tables = w.generate();
        let naive = integrate(&NaiveFd::default(), &tables);
        let alite = integrate(&AliteFd::default(), &tables);
        let parallel = integrate(
            &ParallelFd {
                threads: 3,
                ..ParallelFd::default()
            },
            &tables,
        );
        assert!(
            alite.table().same_content(naive.table()),
            "alite != naive on {w:?}"
        );
        assert!(
            parallel.table().same_content(naive.table()),
            "parallel != naive on {w:?}"
        );
        // Canonical row order is shared, so provenance must align 1:1.
        assert_eq!(
            alite.provenances(),
            naive.provenances(),
            "provenance drift (alite vs naive) on {w:?}"
        );
        assert_eq!(
            parallel.provenances(),
            naive.provenances(),
            "provenance drift (parallel vs naive) on {w:?}"
        );
    }
}

/// Normalize a tuple set for comparison: sort by content then witness set.
fn canon(mut tuples: Vec<AlignedTuple>) -> Vec<AlignedTuple> {
    tuples.sort_by(|a, b| a.values.cmp(&b.values).then_with(|| a.tids.cmp(&b.tids)));
    tuples
}

#[test]
fn naive_and_indexed_subsumption_agree_on_datagen_lakes() {
    for w in workloads() {
        let tables = w.generate();
        let refs: Vec<&Table> = tables.iter().collect();
        let al = Alignment::by_headers(&refs);
        // The raw outer union (no complementation) exercises subsumption on
        // realistic padded tuples.
        let (_, tuples, _interner) = outer_union(&refs, &al);
        let naive = canon(remove_subsumed_naive(tuples.clone()));
        let indexed = canon(remove_subsumed_indexed(tuples));
        assert_eq!(naive, indexed, "subsumption passes diverged on {w:?}");
    }
}

#[test]
fn subsumption_passes_agree_after_complementation() {
    // Run the fixpoint via the engines, then re-check the passes agree on
    // the *integrated* tuples too (denser value sharing than the raw
    // union): integrating the FD output again must be a fixpoint for both.
    for w in workloads().into_iter().take(3) {
        let tables = w.generate();
        let fd = integrate(&AliteFd::default(), &tables).into_table();
        let refs = [&fd];
        let al = Alignment::by_headers(&refs);
        let (_, tuples, _interner) = outer_union(&refs, &al);
        let naive = canon(remove_subsumed_naive(tuples.clone()));
        let indexed = canon(remove_subsumed_indexed(tuples));
        assert_eq!(naive, indexed, "post-FD subsumption diverged on {w:?}");
        assert_eq!(
            naive.len(),
            fd.row_count(),
            "FD output must already be subsumption-free on {w:?}"
        );
    }
}
