//! Cross-engine semantic tests: the paper's Fig. 8 contrast between outer
//! join and Full Disjunction, and FD invariants on hand-built cases.

use dialite_align::Alignment;
use dialite_integrate::{AliteFd, Integrator, NaiveFd, OuterJoinIntegrator, ParallelFd};
use dialite_table::{table, Table, Tid, Value};

fn fig7_tables() -> (Table, Table, Table) {
    let t4 = table! {
        "T4"; ["Vaccine", "Approver"];
        ["Pfizer", "FDA"],
        ["JnJ", Value::null_missing()],
    };
    let t5 = table! {
        "T5"; ["Country", "Approver"];
        ["United States", "FDA"],
        ["USA", Value::null_missing()],
    };
    let t6 = table! {
        "T6"; ["Vaccine", "Country"];
        ["J&J", "United States"],
        ["JnJ", "USA"],
    };
    (t4, t5, t6)
}

fn engines() -> Vec<Box<dyn Integrator>> {
    vec![
        Box::new(NaiveFd::default()),
        Box::new(AliteFd::default()),
        Box::new(ParallelFd::default()),
    ]
}

#[test]
fn reproduces_paper_fig8b_fd() {
    let (t4, t5, t6) = fig7_tables();
    let al = Alignment::by_headers(&[&t4, &t5, &t6]);
    let expected = table! {
        "FD(T4, T5, T6)";
        ["Vaccine", "Approver", "Country"];
        ["Pfizer", "FDA", "United States"],
        ["JnJ", Value::null_produced(), "USA"],
        ["J&J", "FDA", "United States"],
    };
    for engine in engines() {
        let out = engine.integrate(&[&t4, &t5, &t6], &al).unwrap();
        assert!(
            out.table().same_content(&expected),
            "{}:\ngot\n{}\nexpected\n{}",
            engine.name(),
            out.table(),
            expected
        );
        assert_eq!(out.row_count(), 3, "paper Fig. 8(b) has f8, f12, f13");
    }
}

#[test]
fn fig8b_f13_derives_jnj_approver_which_outer_join_misses() {
    // The paper's headline contrast: FD produces the tuple connecting the
    // J&J vaccine to its approver (f13 = {t13, t15}); outer join does not.
    let (t4, t5, t6) = fig7_tables();
    let al = Alignment::by_headers(&[&t4, &t5, &t6]);

    let fd = AliteFd::default().integrate(&[&t4, &t5, &t6], &al).unwrap();
    let has_jnj_approver = |t: &Table| {
        t.rows()
            .any(|r| matches!(&r[0], Value::Text(s) if s == "J&J" || s == "JnJ") && !r[1].is_null())
    };
    assert!(
        has_jnj_approver(fd.table()),
        "FD must derive J&J's approver:\n{}",
        fd.table()
    );

    let oj = OuterJoinIntegrator
        .integrate(&[&t4, &t5, &t6], &al)
        .unwrap();
    assert!(
        !has_jnj_approver(oj.table()),
        "outer join must NOT derive J&J's approver:\n{}",
        oj.table()
    );
}

#[test]
fn fig8b_f13_provenance_is_t13_t15() {
    let (t4, t5, t6) = fig7_tables();
    let al = Alignment::by_headers(&[&t4, &t5, &t6]);
    let out = AliteFd::default().integrate(&[&t4, &t5, &t6], &al).unwrap();
    let (i, _) = out
        .table()
        .rows()
        .enumerate()
        .find(|(_, r)| r[0] == Value::Text("J&J".into()))
        .expect("f13 present");
    let tids: Vec<Tid> = out.provenance(i).iter().copied().collect();
    // t13 = T5 row 0 (table index 1), t15 = T6 row 0 (table index 2).
    assert_eq!(tids, vec![Tid::new(1, 0), Tid::new(2, 0)]);
}

#[test]
fn fig8b_f12_keeps_minimal_witness_set() {
    // {t16} and {t12, t16} merge to the same content; the reported witness
    // set is the minimal one {t16}, as printed in the paper.
    let (t4, t5, t6) = fig7_tables();
    let al = Alignment::by_headers(&[&t4, &t5, &t6]);
    let out = AliteFd::default().integrate(&[&t4, &t5, &t6], &al).unwrap();
    let (i, _) = out
        .table()
        .rows()
        .enumerate()
        .find(|(_, r)| r[0] == Value::Text("JnJ".into()))
        .expect("f12 present");
    let tids: Vec<Tid> = out.provenance(i).iter().copied().collect();
    assert_eq!(tids, vec![Tid::new(2, 1)], "witness should be t16 alone");
}

#[test]
fn fd_output_is_subsumption_free() {
    let (t4, t5, t6) = fig7_tables();
    let al = Alignment::by_headers(&[&t4, &t5, &t6]);
    let out = AliteFd::default().integrate(&[&t4, &t5, &t6], &al).unwrap();
    let rows: Vec<&[Value]> = out.table().rows().collect();
    for (i, a) in rows.iter().enumerate() {
        for (j, b) in rows.iter().enumerate() {
            if i == j {
                continue;
            }
            let subsumes = b
                .iter()
                .zip(a.iter())
                .all(|(bv, av)| bv.is_null() || bv == av);
            assert!(!subsumes, "row {j} is subsumed by row {i}");
        }
    }
}

#[test]
fn fd_is_order_invariant() {
    // FD is an associative/commutative semantics — permuting the
    // integration set must not change the result (unlike outer join).
    let (t4, t5, t6) = fig7_tables();
    let orders: Vec<Vec<&Table>> = vec![
        vec![&t4, &t5, &t6],
        vec![&t6, &t5, &t4],
        vec![&t5, &t6, &t4],
    ];
    let mut results: Vec<Table> = Vec::new();
    for tables in &orders {
        let al = Alignment::by_headers(tables);
        let out = AliteFd::default().integrate(tables, &al).unwrap();
        // Normalize column order by name for comparison.
        let mut names: Vec<&str> = out.table().schema().names().collect();
        names.sort_unstable();
        let idx: Vec<usize> = names
            .iter()
            .map(|n| out.table().column_index(n).unwrap())
            .collect();
        results.push(out.table().project(&idx, "norm").unwrap());
    }
    for r in &results[1..] {
        assert!(
            results[0].same_content(r),
            "FD changed under permutation:\n{}\nvs\n{}",
            results[0],
            r
        );
    }
}

#[test]
fn every_input_tuple_is_represented_in_fd() {
    // Soundness of maximality: each input tuple must be subsumed by some
    // output tuple (no fact is lost).
    let (t4, t5, t6) = fig7_tables();
    let tables = [&t4, &t5, &t6];
    let al = Alignment::by_headers(&tables);
    let out = AliteFd::default().integrate(&tables, &al).unwrap();

    // Rebuild each input tuple over the integrated schema by hand.
    let slots: Vec<Vec<usize>> = tables
        .iter()
        .enumerate()
        .map(|(t, table)| {
            (0..table.column_count())
                .map(|c| {
                    let name = al.name_of(al.id_of(t, c));
                    out.table().column_index(name).unwrap()
                })
                .collect()
        })
        .collect();
    for (t, table) in tables.iter().enumerate() {
        for row in table.rows() {
            let found = out.table().rows().any(|orow| {
                row.iter()
                    .enumerate()
                    .all(|(c, v)| v.is_null() || orow[slots[t][c]] == *v)
            });
            assert!(found, "input tuple {row:?} of table {t} lost");
        }
    }
}

#[test]
fn diamond_case_produces_both_maximal_merges() {
    // One hub row joins two incompatible spokes → two maximal tuples, both
    // containing the hub. Classic FD multiplicity.
    let hub = table! { "H"; ["k", "a"]; [1, "hub"] };
    let s1 = table! { "S1"; ["k", "b"]; [1, "left"] };
    let s2 = table! { "S2"; ["k", "b"]; [1, "right"] };
    let al = Alignment::by_headers(&[&hub, &s1, &s2]);
    let out = AliteFd::default()
        .integrate(&[&hub, &s1, &s2], &al)
        .unwrap();
    let expected = table! {
        "x"; ["k", "a", "b"];
        [1, "hub", "left"],
        [1, "hub", "right"],
    };
    assert!(
        out.table().same_content(&expected.renamed("FD(H, S1, S2)")),
        "got:\n{}",
        out.table()
    );
}

#[test]
fn all_engines_agree_on_fig2() {
    let t1 = table! {
        "T1"; ["Country", "City", "Rate"];
        ["Germany", "Berlin", 0.63],
        ["Spain", "Barcelona", 0.82],
    };
    let t3 = table! {
        "T3"; ["City", "Cases"];
        ["Berlin", 1_400_000],
        ["New Delhi", 2_000_000],
    };
    let al = Alignment::by_headers(&[&t1, &t3]);
    let reference = NaiveFd::default().integrate(&[&t1, &t3], &al).unwrap();
    for engine in engines() {
        let out = engine.integrate(&[&t1, &t3], &al).unwrap();
        assert!(
            out.table().same_content(reference.table()),
            "{} disagrees with reference",
            engine.name()
        );
    }
}
