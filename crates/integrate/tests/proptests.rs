//! Property-based tests of the Full Disjunction engines: the optimized
//! engines must agree with the reference on arbitrary small integration
//! sets, and FD invariants must hold.

use dialite_align::Alignment;
use dialite_integrate::{AliteFd, Integrator, NaiveFd, OuterUnionIntegrator, ParallelFd};
use dialite_table::{Table, Value};
use proptest::prelude::*;

/// Small value domain so that joins actually happen.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => (0i64..4).prop_map(Value::Int),
        1 => Just(Value::null_missing()),
    ]
}

/// 2–3 tables over overlapping schemas drawn from a pool of 4 column names.
fn arb_integration_set() -> impl Strategy<Value = Vec<Table>> {
    let col_pool = ["a", "b", "c", "d"];
    prop::collection::vec(
        (
            prop::sample::subsequence(col_pool.to_vec(), 1..=3),
            0usize..4,
        ),
        1..=3,
    )
    .prop_flat_map(move |specs| {
        let strategies: Vec<_> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (cols, rows))| {
                let ncols = cols.len();
                prop::collection::vec(prop::collection::vec(arb_value(), ncols), rows).prop_map(
                    move |data| {
                        Table::from_rows(&format!("T{i}"), &cols, data)
                            .expect("fixed arity by construction")
                    },
                )
            })
            .collect();
        strategies
    })
}

fn fd_of(engine: &dyn Integrator, tables: &[Table]) -> Table {
    let refs: Vec<&Table> = tables.iter().collect();
    let al = Alignment::by_headers(&refs);
    engine
        .integrate(&refs, &al)
        .expect("small inputs fit any budget")
        .into_table()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alite_matches_naive(tables in arb_integration_set()) {
        let fast = fd_of(&AliteFd::default(), &tables);
        let slow = fd_of(&NaiveFd::default(), &tables);
        prop_assert!(fast.same_content(&slow), "alite:\n{fast}\nnaive:\n{slow}");
    }

    #[test]
    fn parallel_matches_naive(tables in arb_integration_set()) {
        let par = fd_of(&ParallelFd { threads: 3, ..ParallelFd::default() }, &tables);
        let slow = fd_of(&NaiveFd::default(), &tables);
        prop_assert!(par.same_content(&slow), "parallel:\n{par}\nnaive:\n{slow}");
    }

    #[test]
    fn fd_output_is_subsumption_free(tables in arb_integration_set()) {
        let fd = fd_of(&AliteFd::default(), &tables);
        let rows: Vec<&[Value]> = fd.rows().collect();
        for (i, a) in rows.iter().enumerate() {
            for (j, b) in rows.iter().enumerate() {
                if i != j {
                    let b_subsumed_by_a = b
                        .iter()
                        .zip(a.iter())
                        .all(|(bv, av)| bv.is_null() || bv == av);
                    prop_assert!(!b_subsumed_by_a, "row {j} subsumed by {i} in\n{fd}");
                }
            }
        }
    }

    #[test]
    fn fd_is_idempotent(tables in arb_integration_set()) {
        // FD(FD(S)) = FD(S): integrating the integrated table again (as a
        // single-table set) changes nothing.
        let fd = fd_of(&AliteFd::default(), &tables);
        let again = fd_of(&AliteFd::default(), std::slice::from_ref(&fd));
        prop_assert!(
            again.same_content(&fd.clone().renamed(again.name())),
            "first:\n{fd}\nagain:\n{again}"
        );
    }

    #[test]
    fn every_input_tuple_subsumed_by_some_output(tables in arb_integration_set()) {
        let refs: Vec<&Table> = tables.iter().collect();
        let al = Alignment::by_headers(&refs);
        let fd = AliteFd::default().integrate(&refs, &al).unwrap();
        // The outer union gives the aligned view of each input tuple.
        let union = OuterUnionIntegrator::default().integrate(&refs, &al).unwrap();
        // Column orders agree (both derive from the same alignment).
        for urow in union.table().rows() {
            let covered = fd.table().rows().any(|frow| {
                urow.iter().zip(frow.iter()).all(|(u, f)| u.is_null() || u == f)
            });
            prop_assert!(covered, "input tuple {urow:?} lost\nfd:\n{}", fd.table());
        }
    }

    #[test]
    fn fd_never_invents_values(tables in arb_integration_set()) {
        use std::collections::HashSet;
        let mut input_values: HashSet<Value> = HashSet::new();
        for t in &tables {
            for row in t.rows() {
                for v in row {
                    if !v.is_null() {
                        input_values.insert(v.clone());
                    }
                }
            }
        }
        let fd = fd_of(&AliteFd::default(), &tables);
        for row in fd.rows() {
            for v in row {
                if !v.is_null() {
                    prop_assert!(input_values.contains(v), "invented value {v:?}");
                }
            }
        }
    }

    #[test]
    fn fd_row_count_at_most_product_bound_for_two_tables(
        tables in arb_integration_set().prop_filter("exactly two", |t| t.len() == 2)
    ) {
        // For two tables, FD ⊆ (outer join results ∪ singletons), so the
        // output cannot exceed |A|·|B| + |A| + |B| tuples.
        let a = tables[0].row_count();
        let b = tables[1].row_count();
        let fd = fd_of(&AliteFd::default(), &tables);
        prop_assert!(fd.row_count() <= a * b + a + b);
    }
}
