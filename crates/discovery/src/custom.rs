//! User-defined discovery — the extension point of paper Fig. 4.
//!
//! "The user basically implements a similarity function between two
//! datasets that is used by DIALITE for table discovery." Here the user
//! supplies any `Fn(&Table, &Table) -> f64`; the engine scans the lake and
//! returns the top-k tables by that function.

use std::sync::Arc;

use dialite_table::{DataLake, Table};

use crate::types::{top_k, Discovered, Discovery, TableQuery};

/// A discovery algorithm defined by a user-provided similarity function.
///
/// ```
/// use dialite_discovery::{Discovery, SimilarityDiscovery, TableQuery};
/// use dialite_table::{table, DataLake};
///
/// // The paper's Fig. 4 example: similarity = size of the inner join on
/// // the first column (here: count of shared values).
/// let lake = DataLake::from_tables([
///     table! { "a"; ["x"]; [1], [2], [3] },
///     table! { "b"; ["x"]; [7], [8] },
/// ]).unwrap();
/// let engine = SimilarityDiscovery::new("inner-join-size", &lake, |q, t| {
///     let qs = q.column_token_set(0);
///     let ts = t.column_token_set(0);
///     qs.intersection(&ts).count() as f64
/// });
/// let hits = engine.discover(&TableQuery::new(table! { "q"; ["x"]; [2], [3] }), 1);
/// assert_eq!(hits[0].table, "a");
/// ```
pub struct SimilarityDiscovery<F> {
    name: String,
    tables: Vec<Arc<Table>>,
    sim: F,
}

impl<F> SimilarityDiscovery<F>
where
    F: Fn(&Table, &Table) -> f64 + Send + Sync,
{
    /// Wrap a similarity function over a lake snapshot.
    pub fn new(name: &str, lake: &DataLake, sim: F) -> SimilarityDiscovery<F> {
        SimilarityDiscovery {
            name: name.to_string(),
            tables: lake.tables().cloned().collect(),
            sim,
        }
    }
}

impl<F> Discovery for SimilarityDiscovery<F>
where
    F: Fn(&Table, &Table) -> f64 + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn discover(&self, query: &TableQuery, k: usize) -> Vec<Discovered> {
        let scored = self
            .tables
            .iter()
            .filter(|t| t.name() != query.table.name())
            .map(|t| Discovered {
                table: t.name().to_string(),
                score: (self.sim)(&query.table, t),
            })
            .filter(|d| d.score > 0.0)
            .collect();
        top_k(scored, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::table;
    use dialite_text::jaccard;

    fn lake() -> DataLake {
        DataLake::from_tables([
            table! { "close"; ["x"]; ["a"], ["b"], ["c"] },
            table! { "far"; ["x"]; ["p"], ["q"] },
            table! { "mid"; ["x"]; ["a"], ["q"] },
        ])
        .unwrap()
    }

    #[test]
    fn ranks_by_user_function() {
        let engine = SimilarityDiscovery::new("jaccard-col0", &lake(), |q, t| {
            jaccard(&q.column_token_set(0), &t.column_token_set(0))
        });
        let q = TableQuery::new(table! { "q"; ["x"]; ["a"], ["b"] });
        let hits = engine.discover(&q, 3);
        assert_eq!(hits[0].table, "close");
        assert_eq!(hits[1].table, "mid");
        assert_eq!(hits.len(), 2, "zero-score tables dropped: {hits:?}");
    }

    #[test]
    fn excludes_query_table_by_name() {
        let engine = SimilarityDiscovery::new("const", &lake(), |_, _| 1.0);
        let q = TableQuery::new(table! { "close"; ["x"]; ["a"] });
        let hits = engine.discover(&q, 10);
        assert!(hits.iter().all(|d| d.table != "close"));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn name_is_user_defined() {
        let engine = SimilarityDiscovery::new("my-algo", &lake(), |_, _| 0.0);
        assert_eq!(engine.name(), "my-algo");
    }
}
