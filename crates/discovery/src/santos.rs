//! SANTOS-style semantic union search.
//!
//! SANTOS scores a candidate table by how well the *semantic graph* of the
//! query — semantic types on columns, binary relationships between the
//! intent column and the other columns — matches the candidate's graph.
//! This implementation follows that construction over the mini KB:
//!
//! 1. **Index.** For every lake table, annotate each column with its top
//!    semantic type (confidence-weighted, alias-resolved, leaf types) and
//!    each ordered column pair with its top relationship. An inverted index
//!    `type → tables` provides candidate retrieval.
//! 2. **Query.** Annotate the query the same way; build its star graph
//!    around the intent column.
//! 3. **Score.** For each candidate: the best-matching candidate column for
//!    the intent (type similarity), plus for every other query column the
//!    best candidate column matching both edge relationship and node type.
//!    Scores are normalized to `[0, 1]`.
//! 4. **Synthesized signal.** Where the KB knows neither domain, direct
//!    value overlap (Jaccard) between the columns substitutes — the
//!    laptop-scale stand-in for SANTOS's data-lake-synthesized KB.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use dialite_kb::{Direction, KnowledgeBase, RelationId, TypeId};
use dialite_table::{DataLake, Table};
use dialite_text::jaccard;

use crate::pool::StringPool;
use crate::shard::ShardScope;
use crate::types::{score_cmp, top_k, Discovered, Discovery, TableQuery};

/// Floor on the retired-token weight before table removal may trigger
/// compaction of the synthesized-signal token pool; keeps tiny lakes from
/// compacting on every remove. Shared with the metadata engine, which runs
/// the same overtake rule over its header-token pool.
pub(crate) const POOL_COMPACT_MIN: usize = 1024;

/// Configuration of the SANTOS-style engine.
#[derive(Debug, Clone)]
pub struct SantosConfig {
    /// Minimum annotation confidence for a type/relationship to be used.
    pub min_confidence: f64,
    /// Weight of relationship-edge agreement relative to node types.
    pub edge_weight: f64,
    /// Weight of the synthesized (value-overlap) signal when KB annotations
    /// are absent on both sides.
    pub synth_weight: f64,
    /// Minimum candidate score to be reported at all; keeps weakly related
    /// tables (one coincidental column) out of the integration set.
    pub min_score: f64,
}

impl Default for SantosConfig {
    fn default() -> Self {
        SantosConfig {
            min_confidence: 0.4,
            edge_weight: 0.5,
            synth_weight: 0.6,
            min_score: 0.2,
        }
    }
}

/// Per-column annotation kept in the index.
#[derive(Debug, Clone, Default)]
struct ColumnSemantics {
    /// `(type, confidence)` above the confidence floor, best first.
    types: Vec<(TypeId, f64)>,
    /// Distinct value tokens (for the synthesized signal).
    tokens: HashSet<String>,
}

/// Per-table annotation kept in the index.
struct TableSemantics {
    name: String,
    columns: Vec<ColumnSemantics>,
    /// `(col_a, col_b) → (relation, direction, confidence)` for the top
    /// relationship of each ordered pair (a < b).
    pairs: HashMap<(usize, usize), (RelationId, Direction, f64)>,
    /// `true` when any column carries no annotation above the confidence
    /// floor. Such a column scores through the synthesized value-overlap
    /// signal against *typed* query columns too, so the capped-retrieval
    /// upper bound must keep the `synth_weight` ceiling open for it.
    has_untyped_column: bool,
    /// The table's distinct value tokens (union over columns) interned in
    /// the engine's shared pool — the keys of its synthesized-signal
    /// posting entries, kept so removal retires exactly those postings.
    /// Empty until the engine indexes the semantics (query-side
    /// annotations never intern).
    token_ids: Vec<u32>,
}

/// What one capped SANTOS query actually did — the observability half of
/// the candidate-cap contract, returned by
/// [`SantosDiscovery::discover_capped`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SantosStats {
    /// Candidate tables surfaced by the type inverted index (or by the
    /// typeless full scan).
    pub candidates_retrieved: usize,
    /// Candidates actually run through the full graph-matching score.
    pub candidates_scored: usize,
    /// Candidates skipped because the k-th best verified score provably
    /// beats their type-overlap upper bound.
    pub bound_pruned: usize,
    /// Retrieval stopped at the candidate cap (results are best-effort).
    pub cap_hit: bool,
    /// The query carried no usable annotations *and* the cap was
    /// unlimited, so retrieval ran the exhaustive typeless full scan
    /// (synthesized signal only) — the oracle path of the typeless leg.
    pub full_scan: bool,
    /// Typeless candidates skipped because the k-th best verified score
    /// provably beats their synthesized-signal (token-overlap) upper
    /// bound. Always 0 on typed queries and on the full-scan oracle path.
    pub typeless_pruned: usize,
}

/// The SANTOS-style discovery engine. Build once per lake, then either
/// query as-is or keep it warm across churn with
/// [`SantosDiscovery::upsert_table`] / [`SantosDiscovery::remove_table`] —
/// table annotations are independent of each other, so incremental
/// maintenance is exactly equivalent to a fresh build.
pub struct SantosDiscovery {
    kb: Arc<KnowledgeBase>,
    config: SantosConfig,
    /// Per-table semantics, keyed by the lake's stable slot index. A
    /// `BTreeMap` keeps full-scan candidate fallback deterministic.
    tables: BTreeMap<u32, TableSemantics>,
    /// Inverted index: type → table slots exhibiting it on some column.
    by_type: HashMap<TypeId, HashSet<u32>>,
    /// Token dictionary of the synthesized-signal postings (same
    /// [`StringPool`] machinery the joinable engine interns through).
    pool: StringPool,
    /// Synthesized-signal inverted index: token id → table slots whose
    /// value domain (union over columns) contains the token. Gives
    /// typeless (KB-poor) queries best-bound-first retrieval where only
    /// the full scan existed before.
    token_postings: HashMap<u32, Vec<u32>>,
    /// Σ distinct tokens over live tables (with multiplicity across
    /// tables).
    live_weight: usize,
    /// Token weight retired since the last pool compaction.
    retired_weight: usize,
}

impl SantosDiscovery {
    /// Annotate and index the whole lake.
    pub fn build(lake: &DataLake, kb: Arc<KnowledgeBase>, config: SantosConfig) -> SantosDiscovery {
        SantosDiscovery::build_scoped(lake, kb, config, ShardScope::all())
    }

    /// Annotate and index one shard's stripe of the lake (the slots
    /// `scope` [`admits`](ShardScope::admits)). Annotations are per-table,
    /// so a scoped build is exactly a full build restricted to the stripe;
    /// [`ShardScope::all`] reproduces [`SantosDiscovery::build`].
    pub fn build_scoped(
        lake: &DataLake,
        kb: Arc<KnowledgeBase>,
        config: SantosConfig,
        scope: ShardScope,
    ) -> SantosDiscovery {
        let mut engine = SantosDiscovery {
            kb,
            config,
            tables: BTreeMap::new(),
            by_type: HashMap::new(),
            pool: StringPool::new(),
            token_postings: HashMap::new(),
            live_weight: 0,
            retired_weight: 0,
        };
        for (slot, table) in lake.entries_routed(scope.shard(), scope.of()) {
            engine.upsert_table(slot, table);
        }
        engine
    }

    /// Annotate (or re-annotate) one table under its lake slot.
    /// `O(that table)`.
    pub fn upsert_table(&mut self, slot: u32, table: &Table) {
        self.remove_table(slot);
        let mut sem = annotate_table(&self.kb, table, &self.config);
        for col in &sem.columns {
            for (t, _) in &col.types {
                self.by_type.entry(*t).or_default().insert(slot);
            }
        }
        let ids: HashSet<u32> = sem
            .columns
            .iter()
            .flat_map(|col| col.tokens.iter())
            .map(|tok| self.pool.intern(tok))
            .collect();
        for &id in &ids {
            self.token_postings.entry(id).or_default().push(slot);
        }
        self.live_weight += ids.len();
        sem.token_ids = ids.into_iter().collect();
        self.tables.insert(slot, sem);
    }

    /// Drop the annotations of the table occupying a lake slot.
    pub fn remove_table(&mut self, slot: u32) {
        let Some(sem) = self.tables.remove(&slot) else {
            return;
        };
        for col in &sem.columns {
            for (t, _) in &col.types {
                if let Some(set) = self.by_type.get_mut(t) {
                    set.remove(&slot);
                    if set.is_empty() {
                        self.by_type.remove(t);
                    }
                }
            }
        }
        for id in &sem.token_ids {
            if let Some(list) = self.token_postings.get_mut(id) {
                if let Some(pos) = list.iter().position(|s| *s == slot) {
                    list.swap_remove(pos);
                }
                if list.is_empty() {
                    self.token_postings.remove(id);
                }
            }
        }
        self.live_weight -= sem.token_ids.len();
        self.retired_weight += sem.token_ids.len();
        self.maybe_compact_pool();
    }

    /// Compact the synthesized-signal token pool once dead weight
    /// overtakes live weight (and the [`POOL_COMPACT_MIN`] floor),
    /// remapping every stored token id — the same overtake rule the
    /// joinable engine uses, so long-churn memory stays bounded.
    fn maybe_compact_pool(&mut self) {
        if self.retired_weight <= self.live_weight.max(POOL_COMPACT_MIN) {
            return;
        }
        let live: HashSet<u32> = self
            .tables
            .values()
            .flat_map(|sem| sem.token_ids.iter().copied())
            .collect();
        let remap = self.pool.compact(&live);
        for sem in self.tables.values_mut() {
            for id in &mut sem.token_ids {
                *id = remap[*id as usize];
            }
        }
        self.token_postings = std::mem::take(&mut self.token_postings)
            .into_iter()
            .map(|(id, list)| (remap[id as usize], list))
            .collect();
        self.retired_weight = 0;
    }

    /// `(distinct interned tokens, total synthesized-signal posting
    /// entries)` — the latter always equals the summed live per-table
    /// token weights.
    pub fn token_posting_stats(&self) -> (usize, usize) {
        (
            self.pool.len(),
            self.token_postings.values().map(Vec::len).sum(),
        )
    }

    /// Number of indexed tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when no table is indexed.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Similarity of two annotated columns: semantic type agreement when
    /// available on both sides, otherwise the synthesized value-overlap
    /// signal.
    fn column_sim(&self, q: &ColumnSemantics, c: &ColumnSemantics) -> f64 {
        if !q.types.is_empty() && !c.types.is_empty() {
            let mut best = 0.0f64;
            for (qt, qconf) in &q.types {
                for (ct, cconf) in &c.types {
                    if qt == ct {
                        best = best.max(qconf.min(*cconf));
                    }
                }
            }
            best
        } else {
            self.config.synth_weight * jaccard(&q.tokens, &c.tokens)
        }
    }
}

/// Specificity-weighted column annotation: each known value votes 1.0 for
/// its *leaf* types and 0.5 for their direct parents. Full ancestor closure
/// would make city and country columns indistinguishable through a shared
/// distant ancestor ("place"), destroying discrimination — SANTOS likewise
/// prefers the most specific annotation.
fn annotate_column_specific(
    kb: &KnowledgeBase,
    tokens: &HashSet<String>,
    min_confidence: f64,
) -> Vec<(TypeId, f64)> {
    if tokens.is_empty() {
        return Vec::new();
    }
    let mut votes: HashMap<TypeId, f64> = HashMap::new();
    for tok in tokens {
        let leafs = kb.leaf_types_of(tok);
        let mut token_votes: HashMap<TypeId, f64> = HashMap::new();
        for t in &leafs {
            token_votes.insert(*t, 1.0);
        }
        for t in &leafs {
            for p in kb.parent_types(*t) {
                token_votes.entry(*p).or_insert(0.5);
            }
        }
        for (t, w) in token_votes {
            *votes.entry(t).or_insert(0.0) += w;
        }
    }
    let total = tokens.len() as f64;
    let mut types: Vec<(TypeId, f64)> = votes
        .into_iter()
        .map(|(t, v)| (t, v / total))
        .filter(|(_, conf)| *conf >= min_confidence)
        .collect();
    // total_cmp: confidences can be NaN on degenerate inputs; sorting must
    // stay panic-free and deterministic.
    types.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    types
}

fn annotate_table(kb: &KnowledgeBase, table: &Table, config: &SantosConfig) -> TableSemantics {
    let ncols = table.column_count();
    let mut columns = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let tokens = table.column_token_set(c);
        let types = annotate_column_specific(kb, &tokens, config.min_confidence);
        columns.push(ColumnSemantics { types, tokens });
    }
    let mut pairs = HashMap::new();
    for a in 0..ncols {
        for b in (a + 1)..ncols {
            let pair_values: Vec<(String, String)> = table
                .rows()
                .filter_map(|row| {
                    let va = row[a].overlap_token()?;
                    let vb = row[b].overlap_token()?;
                    Some((va, vb))
                })
                .collect();
            let ann = kb.annotate_pair(pair_values.iter().map(|(x, y)| (x.as_str(), y.as_str())));
            if let Some(((rel, dir), conf)) = ann.top() {
                if conf >= config.min_confidence {
                    pairs.insert((a, b), (rel, dir, conf));
                }
            }
        }
    }
    let has_untyped_column = columns.iter().any(|c| c.types.is_empty());
    TableSemantics {
        name: table.name().to_string(),
        columns,
        pairs,
        has_untyped_column,
        token_ids: Vec::new(),
    }
}

/// Relationship of the ordered pair `(a, b)` normalized to "a plays subject".
fn pair_rel(sem: &TableSemantics, a: usize, b: usize) -> Option<(RelationId, Direction, f64)> {
    if a < b {
        sem.pairs.get(&(a, b)).copied()
    } else {
        sem.pairs.get(&(b, a)).map(|&(r, d, c)| {
            let flipped = match d {
                Direction::Forward => Direction::Backward,
                Direction::Backward => Direction::Forward,
            };
            (r, flipped, c)
        })
    }
}

impl Discovery for SantosDiscovery {
    fn name(&self) -> &str {
        "santos"
    }

    fn discover(&self, query: &TableQuery, k: usize) -> Vec<Discovered> {
        self.discover_capped(query, k, usize::MAX).0
    }
}

/// The k-th best kept score once at least `k` candidates kept; `None`
/// before that (no pruning is provable yet).
pub(crate) fn kth_best(kept: &[f64], k: usize) -> Option<f64> {
    (kept.len() >= k).then(|| kept[k - 1])
}

/// Insert a score into a descending top-k window (kept sorted, length
/// capped at `k`).
pub(crate) fn push_topk(kept: &mut Vec<f64>, score: f64, k: usize) {
    let pos = kept.partition_point(|s| score_cmp(*s, score) == std::cmp::Ordering::Greater);
    kept.insert(pos, score);
    kept.truncate(k);
}

impl SantosDiscovery {
    /// [`Discovery::discover`] with a **candidate cap**: under any finite
    /// `cap`, type-inverted-index candidates are ranked by a cheap
    /// per-table *type-overlap upper bound* on the full graph-matching
    /// score and scored best-bound-first; retrieval stops once `cap`
    /// candidates are scored, or earlier when the k-th best kept score
    /// provably (strictly) beats every remaining bound. Any finite
    /// `cap >= lake size` therefore equals the exhaustive output exactly —
    /// tables the bound prunes can never enter the top-k, and score ties
    /// are still scored so name tie-breaking is preserved — pinned against
    /// the exhaustive oracle by `tests/santos_cap_recall.rs`.
    ///
    /// `cap == usize::MAX` is the **exhaustive oracle path**: every
    /// retrieved candidate is scored with no ranking or pruning, exactly
    /// the pre-cap engine (and what [`Discovery::discover`] runs) — the
    /// baseline the capped path's equality and recall are measured
    /// against.
    ///
    /// Queries with no usable annotations (typeless, KB-poor) rank
    /// candidates by a synthesized-signal upper bound from the token →
    /// table posting index instead: under any finite `cap` they get the
    /// same best-bound-first shape as typed queries, while
    /// `cap == usize::MAX` keeps the exhaustive full scan as the typeless
    /// oracle path (`full_scan` in the stats).
    pub fn discover_capped(
        &self,
        query: &TableQuery,
        k: usize,
        cap: usize,
    ) -> (Vec<Discovered>, SantosStats) {
        let mut stats = SantosStats::default();
        let q_sem = annotate_table(&self.kb, &query.table, &self.config);
        if q_sem.columns.is_empty() || k == 0 {
            return (Vec::new(), stats);
        }
        let intent = query
            .effective_column()
            .min(q_sem.columns.len().saturating_sub(1));

        let qcols = q_sem.columns.len();
        let any_types = q_sem.columns.iter().any(|c| !c.types.is_empty());
        if !any_types {
            if cap == usize::MAX {
                // Exhaustive typeless full scan — the oracle path the
                // bounded typeless retrieval is measured against.
                stats.full_scan = true;
                stats.candidates_retrieved = self.tables.len();
                let mut scored = Vec::with_capacity(self.tables.len());
                for cand in self.tables.values() {
                    if cand.name == query.table.name() {
                        continue; // the query itself, if it lives in the lake
                    }
                    stats.candidates_scored += 1;
                    let score = self.score_candidate(&q_sem, intent, cand);
                    if score >= self.config.min_score && score > 0.0 {
                        scored.push(Discovered {
                            table: cand.name.clone(),
                            score,
                        });
                    }
                }
                return (top_k(scored, k), stats);
            }
            return self.discover_typeless_capped(query, &q_sem, intent, k, cap, stats);
        }

        if cap == usize::MAX {
            // Exhaustive oracle path: retrieve candidate slots only (no
            // per-candidate bound rows — the trait `discover` path stays
            // allocation-light) and score every one of them, exactly the
            // pre-cap engine. Iteration order is irrelevant to the output
            // (top_k sorts fully).
            let mut candidates: HashSet<u32> = HashSet::new();
            for col in &q_sem.columns {
                for (t, _) in &col.types {
                    if let Some(set) = self.by_type.get(t) {
                        candidates.extend(set.iter().copied());
                    }
                }
            }
            stats.candidates_retrieved = candidates.len();
            let mut scored = Vec::with_capacity(candidates.len());
            for slot in candidates {
                let Some(cand) = self.tables.get(&slot) else {
                    continue;
                };
                if cand.name == query.table.name() {
                    continue; // the query itself, if it lives in the lake
                }
                stats.candidates_scored += 1;
                let score = self.score_candidate(&q_sem, intent, cand);
                if score >= self.config.min_score && score > 0.0 {
                    scored.push(Discovered {
                        table: cand.name.clone(),
                        score,
                    });
                }
            }
            return (top_k(scored, k), stats);
        }

        // Finite cap: retrieval remembers per (query column, candidate)
        // the best confidence of a shared type — the raw material of the
        // bound.
        let mut type_bounds: HashMap<u32, Vec<f64>> = HashMap::new();
        for (j, col) in q_sem.columns.iter().enumerate() {
            for (t, qconf) in &col.types {
                if let Some(set) = self.by_type.get(t) {
                    for &slot in set {
                        let per_col = type_bounds.entry(slot).or_insert_with(|| vec![0.0; qcols]);
                        if *qconf > per_col[j] {
                            per_col[j] = *qconf;
                        }
                    }
                }
            }
        }

        // Upper-bound each candidate's achievable score. Per query column
        // `j` the best candidate-column similarity is at most the best
        // shared-type confidence; the synthesized fallback (≤ synth_weight)
        // stays reachable when the query column is untyped or the
        // candidate has an untyped column. Edge agreement is at most the
        // query's own pair confidence. Mirrors `score_candidate`'s
        // normalization exactly, so `bound >= score` always holds.
        let synth = self.config.synth_weight.max(0.0);
        let edge_w = self.config.edge_weight.max(0.0);
        let node_w = (1.0 - self.config.edge_weight).max(0.0);
        let edge_conf: Vec<f64> = (0..qcols)
            .map(|j| {
                if j == intent {
                    return 0.0;
                }
                pair_rel(&q_sem, intent, j)
                    .map(|(_, _, c)| c)
                    .unwrap_or(0.0)
            })
            .collect();
        let mut ranked: Vec<(u32, f64)> = type_bounds
            .into_iter()
            .filter_map(|(slot, per_col)| {
                let cand = self.tables.get(&slot)?;
                let ub = |j: usize| {
                    if q_sem.columns[j].types.is_empty() || cand.has_untyped_column {
                        per_col[j].max(synth)
                    } else {
                        per_col[j]
                    }
                };
                let bound = if qcols == 1 {
                    ub(intent)
                } else {
                    let rest: f64 = (0..qcols)
                        .filter(|&j| j != intent)
                        .map(|j| node_w * ub(j) + edge_w * edge_conf[j])
                        .sum();
                    (ub(intent) + rest) / qcols as f64
                };
                Some((slot, bound))
            })
            .collect();
        // Best bound first; slot index breaks ties so the scored prefix is
        // deterministic even when the cap cuts inside a tie group.
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        stats.candidates_retrieved = ranked.len();

        let mut scored: Vec<Discovered> = Vec::new();
        let mut kept: Vec<f64> = Vec::new();
        for (pos, &(slot, bound)) in ranked.iter().enumerate() {
            // Optimality bound: strictly `>` so bound ties with the k-th
            // score are still scored and tie-breaks match the uncapped
            // output exactly.
            if let Some(kth) = kth_best(&kept, k) {
                if kth > bound {
                    stats.bound_pruned = ranked.len() - pos;
                    break;
                }
            }
            if stats.candidates_scored >= cap {
                stats.cap_hit = true;
                break;
            }
            let Some(cand) = self.tables.get(&slot) else {
                continue;
            };
            if cand.name == query.table.name() {
                continue; // the query itself, if it lives in the lake
            }
            stats.candidates_scored += 1;
            let score = self.score_candidate(&q_sem, intent, cand);
            if score >= self.config.min_score && score > 0.0 {
                push_topk(&mut kept, score, k);
                scored.push(Discovered {
                    table: cand.name.clone(),
                    score,
                });
            }
        }
        (top_k(scored, k), stats)
    }

    /// Bounded retrieval for typeless queries: candidates are ranked by a
    /// synthesized-signal upper bound computed from the token → table
    /// posting index and scored best-bound-first, stopping at the cap or
    /// when the k-th best kept score provably (strictly) beats every
    /// remaining bound.
    ///
    /// The bound mirrors `score_candidate`'s normalization with each
    /// column similarity replaced by its ceiling: a typeless query column
    /// always scores through `synth_weight * jaccard`, and
    /// `jaccard(Qj, C) <= min(1, |Q ∩ T| / |Qj|)` where `|Q ∩ T|` is the
    /// table-level token overlap the postings count (an empty query
    /// column can reach `jaccard == 1` against an empty candidate column,
    /// so its ceiling stays the full `synth_weight`). Edge agreement is at
    /// most the query's own pair confidence. Candidates the postings never
    /// saw share the zero-overlap bound and are ranked only when that
    /// bound could clear the reporting filter at all — otherwise their
    /// true score fails the same filter. Any finite `cap >= lake size`
    /// therefore equals the full-scan oracle exactly (order and
    /// tie-breaks included), pinned by `tests/cost_oracle.rs`.
    fn discover_typeless_capped(
        &self,
        query: &TableQuery,
        q_sem: &TableSemantics,
        intent: usize,
        k: usize,
        cap: usize,
        mut stats: SantosStats,
    ) -> (Vec<Discovered>, SantosStats) {
        let qcols = q_sem.columns.len();
        let synth = self.config.synth_weight.max(0.0);
        let edge_w = self.config.edge_weight.max(0.0);
        let node_w = (1.0 - self.config.edge_weight).max(0.0);
        let edge_conf: Vec<f64> = (0..qcols)
            .map(|j| {
                if j == intent {
                    return 0.0;
                }
                pair_rel(q_sem, intent, j).map(|(_, _, c)| c).unwrap_or(0.0)
            })
            .collect();

        // Table-level token overlap |Q ∩ T| via the posting index. Query
        // tokens resolve through `get` (never interned: the query is not
        // part of the lake); unknown tokens occur in no table and drop out.
        let q_ids: HashSet<u32> = q_sem
            .columns
            .iter()
            .flat_map(|col| col.tokens.iter())
            .filter_map(|tok| self.pool.get(tok))
            .collect();
        let mut overlap: HashMap<u32, usize> = HashMap::new();
        for id in &q_ids {
            if let Some(list) = self.token_postings.get(id) {
                for &slot in list {
                    *overlap.entry(slot).or_insert(0) += 1;
                }
            }
        }

        let col_bound = |j: usize, ov: usize| -> f64 {
            let qn = q_sem.columns[j].tokens.len();
            if qn == 0 {
                // jaccard(∅, ∅) == 1: an empty candidate column matches an
                // empty query column perfectly, overlap or not.
                synth
            } else {
                synth * (ov as f64 / qn as f64).min(1.0)
            }
        };
        let bound_for = |ov: usize| -> f64 {
            if qcols == 1 {
                col_bound(intent, ov)
            } else {
                let rest: f64 = (0..qcols)
                    .filter(|&j| j != intent)
                    .map(|j| node_w * col_bound(j, ov) + edge_w * edge_conf[j])
                    .sum();
                (col_bound(intent, ov) + rest) / qcols as f64
            }
        };

        let mut ranked: Vec<(u32, f64)> = overlap
            .iter()
            .map(|(&slot, &ov)| (slot, bound_for(ov)))
            .collect();
        // Zero-overlap candidates can still score — through pair-edge
        // agreement, or empty-column jaccard — so they enter the ranking
        // whenever their shared bound could clear the reporting filter
        // (`score >= min_score && score > 0`). Below it, their true score
        // fails the same filter and they are exactly the candidates the
        // full scan would drop too.
        let base_bound = bound_for(0);
        if base_bound > 0.0 && base_bound >= self.config.min_score {
            for &slot in self.tables.keys() {
                if !overlap.contains_key(&slot) {
                    ranked.push((slot, base_bound));
                }
            }
        }
        // Best bound first; slot index breaks ties so the scored prefix is
        // deterministic even when the cap cuts inside a tie group.
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        stats.candidates_retrieved = ranked.len();

        let mut scored: Vec<Discovered> = Vec::new();
        let mut kept: Vec<f64> = Vec::new();
        for (pos, &(slot, bound)) in ranked.iter().enumerate() {
            // Optimality bound: strictly `>` so bound ties with the k-th
            // score are still scored and tie-breaks match the full scan
            // exactly.
            if let Some(kth) = kth_best(&kept, k) {
                if kth > bound {
                    stats.typeless_pruned = ranked.len() - pos;
                    break;
                }
            }
            if stats.candidates_scored >= cap {
                stats.cap_hit = true;
                break;
            }
            let Some(cand) = self.tables.get(&slot) else {
                continue;
            };
            if cand.name == query.table.name() {
                continue; // the query itself, if it lives in the lake
            }
            stats.candidates_scored += 1;
            let score = self.score_candidate(q_sem, intent, cand);
            if score >= self.config.min_score && score > 0.0 {
                push_topk(&mut kept, score, k);
                scored.push(Discovered {
                    table: cand.name.clone(),
                    score,
                });
            }
        }
        (top_k(scored, k), stats)
    }

    fn score_candidate(&self, q: &TableSemantics, intent: usize, cand: &TableSemantics) -> f64 {
        let qcols = q.columns.len();
        if qcols == 0 || cand.columns.is_empty() {
            return 0.0;
        }
        // Choose the candidate column best matching the intent column.
        let (best_intent_col, intent_sim) = cand
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| (i, self.column_sim(&q.columns[intent], c)))
            .max_by(|a, b| score_cmp(a.1, b.1))
            .unwrap();

        if qcols == 1 {
            return intent_sim;
        }

        // For every other query column: best candidate column by node type
        // plus edge agreement with the intent relationship.
        let mut rest = 0.0;
        for (j, qcol) in q.columns.iter().enumerate() {
            if j == intent {
                continue;
            }
            let q_edge = pair_rel(q, intent, j);
            let mut best = 0.0f64;
            for (cj, ccol) in cand.columns.iter().enumerate() {
                if cj == best_intent_col {
                    continue;
                }
                let node = self.column_sim(qcol, ccol);
                let edge = match (q_edge, pair_rel(cand, best_intent_col, cj)) {
                    (Some((qr, qd, qc)), Some((cr, cd, cc))) if qr == cr && qd == cd => qc.min(cc),
                    _ => 0.0,
                };
                let w = self.config.edge_weight;
                best = best.max((1.0 - w) * node + w * edge);
            }
            rest += best;
        }
        // Normalize: intent contributes like one column.
        (intent_sim + rest) / qcols as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_kb::curated::covid_kb;
    use dialite_table::{table, Value};

    /// Lake: a unionable COVID table (cities/countries/rates), a vaccine
    /// table, and numeric noise.
    fn demo_lake() -> DataLake {
        let unionable = table! {
            "covid_na"; ["nation", "town", "pct"];
            ["Canada", "Toronto", 0.83],
            ["Mexico", "Mexico City", Value::null_missing()],
            ["USA", "Boston", 0.62],
        };
        let vaccines = table! {
            "vaccines"; ["shot", "maker_country"];
            ["Pfizer", "United States"],
            ["AstraZeneca", "England"],
        };
        let noise = table! {
            "numbers"; ["a", "b"];
            [1, 2],
            [3, 4],
        };
        DataLake::from_tables([unionable, vaccines, noise]).unwrap()
    }

    fn query() -> TableQuery {
        TableQuery::with_column(
            table! {
                "Q"; ["Country", "City", "Rate"];
                ["Germany", "Berlin", 0.63],
                ["England", "Manchester", 0.78],
                ["Spain", "Barcelona", 0.82],
            },
            1, // City is the intent column, as in the demo scenario
        )
    }

    fn engine() -> SantosDiscovery {
        SantosDiscovery::build(&demo_lake(), Arc::new(covid_kb()), SantosConfig::default())
    }

    #[test]
    fn finds_unionable_table_first() {
        let hits = engine().discover(&query(), 3);
        assert!(!hits.is_empty());
        assert_eq!(
            hits[0].table, "covid_na",
            "the city/country/rate table should win: {hits:?}"
        );
    }

    #[test]
    fn noise_table_scores_lower_or_absent() {
        let hits = engine().discover(&query(), 10);
        let noise = hits.iter().find(|d| d.table == "numbers");
        let union = hits.iter().find(|d| d.table == "covid_na").unwrap();
        if let Some(noise) = noise {
            assert!(noise.score < union.score);
        }
    }

    #[test]
    fn relationship_edges_boost_semantically_coherent_tables() {
        // Candidate A has (city, country) with the located_in edge;
        // candidate B has cities and countries in *unrelated* columns
        // (shuffled rows), so the edge confidence is low.
        let coherent = table! {
            "coherent"; ["c1", "c2"];
            ["Toronto", "Canada"],
            ["Boston", "United States"],
            ["Ottawa", "Canada"],
        };
        let incoherent = table! {
            "incoherent"; ["c1", "c2"];
            ["Toronto", "United States"],
            ["Boston", "India"],
            ["Ottawa", "Mexico"],
        };
        let lake = DataLake::from_tables([coherent, incoherent]).unwrap();
        let engine = SantosDiscovery::build(&lake, Arc::new(covid_kb()), SantosConfig::default());
        let q = TableQuery::with_column(
            table! {
                "Q"; ["City", "Country"];
                ["Berlin", "Germany"],
                ["Barcelona", "Spain"],
            },
            0,
        );
        let hits = engine.discover(&q, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].table, "coherent", "{hits:?}");
        assert!(hits[0].score > hits[1].score, "{hits:?}");
    }

    #[test]
    fn synthesized_signal_works_without_kb_coverage() {
        // Domains unknown to the KB, but overlapping values.
        let a = table! { "parts"; ["part"]; ["bolt-17"], ["nut-4"], ["washer-9"] };
        let b = table! { "other"; ["x"]; ["gear-1"], ["gear-2"] };
        let lake = DataLake::from_tables([a, b]).unwrap();
        let engine = SantosDiscovery::build(&lake, Arc::new(covid_kb()), SantosConfig::default());
        let q = TableQuery::new(table! { "Q"; ["p"]; ["bolt-17"], ["nut-4"] });
        let hits = engine.discover(&q, 2);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].table, "parts");
    }

    #[test]
    fn query_table_itself_is_excluded() {
        let mut lake = demo_lake();
        lake.add(query().table.as_ref().clone().renamed("Q"))
            .unwrap();
        let engine = SantosDiscovery::build(&lake, Arc::new(covid_kb()), SantosConfig::default());
        let hits = engine.discover(&query(), 10);
        assert!(hits.iter().all(|d| d.table != "Q"));
    }

    #[test]
    fn k_limits_results() {
        let hits = engine().discover(&query(), 1);
        assert!(hits.len() <= 1);
    }

    #[test]
    fn incremental_maintenance_matches_fresh_build() {
        // Apply churn incrementally and rebuild from scratch; annotations
        // are per-table, so the two must agree exactly (keys + scores).
        let mut lake = demo_lake();
        let kb = Arc::new(covid_kb());
        let mut engine = SantosDiscovery::build(&lake, kb.clone(), SantosConfig::default());

        let newcomer = table! {
            "covid_eu"; ["country", "city", "rate"];
            ["Germany", "Berlin", 0.63],
            ["Spain", "Barcelona", 0.82],
        };
        let slot = lake.add_table(newcomer.clone()).unwrap();
        engine.upsert_table(slot, &newcomer);
        let (gone, _) = lake.remove_table("vaccines").unwrap();
        engine.remove_table(gone);
        let replacement = table! {
            "numbers"; ["a", "b"];
            [9, 9],
        };
        let slot = lake.replace_table(replacement.clone());
        engine.upsert_table(slot, &replacement);

        let fresh = SantosDiscovery::build(&lake, kb, SantosConfig::default());
        assert_eq!(engine.len(), fresh.len());
        assert_eq!(
            engine.discover(&query(), 10),
            fresh.discover(&query(), 10),
            "incremental index must answer exactly like a rebuild"
        );
        assert!(engine
            .discover(&query(), 10)
            .iter()
            .any(|d| d.table == "covid_eu"));
    }

    #[test]
    fn finite_cap_covering_the_lake_equals_exhaustive() {
        // The bound-soundness smoke test: a finite cap larger than the
        // lake engages the ranked/pruned path, and its output must equal
        // the exhaustive oracle exactly (order and tie-breaks included).
        let engine = engine();
        for k in [1, 2, 10] {
            let (exhaustive, ex_stats) = engine.discover_capped(&query(), k, usize::MAX);
            let (capped, stats) = engine.discover_capped(&query(), k, 1000);
            assert_eq!(capped, exhaustive, "k={k}");
            assert!(!stats.cap_hit);
            assert!(!stats.full_scan);
            assert_eq!(stats.candidates_retrieved, ex_stats.candidates_retrieved);
            assert!(stats.candidates_scored <= ex_stats.candidates_scored);
        }
    }

    #[test]
    fn cap_limits_scored_candidates_and_reports_it() {
        let engine = engine();
        let (hits, stats) = engine.discover_capped(&query(), 5, 1);
        assert!(stats.candidates_scored <= 1, "{stats:?}");
        assert!(
            stats.cap_hit || stats.candidates_retrieved <= 1,
            "{stats:?}"
        );
        // Whatever survived is still genuinely scored (no invented hits).
        let (exhaustive, _) = engine.discover_capped(&query(), 5, usize::MAX);
        for hit in &hits {
            assert!(
                exhaustive.contains(hit),
                "capped hit {hit:?} not in exhaustive output {exhaustive:?}"
            );
        }
    }

    /// A KB-free lake: `n` part-list tables sharing a fraction of the
    /// query's tokens, plus disjoint noise tables.
    fn typeless_lake(n: usize) -> DataLake {
        let mut tables = Vec::new();
        for i in 0..n {
            // Table i shares tokens p0..p{i} with the query (more overlap
            // for higher i), plus private filler.
            let mut rows: Vec<Vec<Value>> = (0..=i)
                .map(|j| vec![Value::Text(format!("p{j}"))])
                .collect();
            rows.push(vec![Value::Text(format!("filler{i}"))]);
            tables.push(
                dialite_table::Table::from_rows(&format!("parts{i}"), &["part"], rows).unwrap(),
            );
        }
        for i in 0..n {
            let rows: Vec<Vec<Value>> = (0..3)
                .map(|j| vec![Value::Text(format!("noise{i}_{j}"))])
                .collect();
            tables
                .push(dialite_table::Table::from_rows(&format!("noise{i}"), &["x"], rows).unwrap());
        }
        DataLake::from_tables(tables).unwrap()
    }

    fn typeless_query(tokens: usize) -> TableQuery {
        let rows: Vec<Vec<Value>> = (0..tokens)
            .map(|j| vec![Value::Text(format!("p{j}"))])
            .collect();
        TableQuery::new(dialite_table::Table::from_rows("Q", &["p"], rows).unwrap())
    }

    #[test]
    fn typeless_covering_cap_equals_the_full_scan_oracle() {
        // Any finite cap covering the lake must reproduce the exhaustive
        // full scan byte-for-byte — the typeless leg's equality contract.
        let lake = typeless_lake(6);
        let engine = SantosDiscovery::build(&lake, Arc::new(covid_kb()), SantosConfig::default());
        let q = typeless_query(4);
        for k in [1, 2, 5, usize::MAX] {
            let (oracle, ostats) = engine.discover_capped(&q, k, usize::MAX);
            assert!(ostats.full_scan, "{ostats:?}");
            let (capped, stats) = engine.discover_capped(&q, k, 1000);
            assert!(!stats.full_scan, "finite cap takes the bounded path");
            assert!(!stats.cap_hit);
            assert_eq!(capped, oracle, "k={k}");
        }
    }

    #[test]
    fn typeless_bound_prunes_zero_overlap_noise() {
        // With k=1 and a perfect-overlap candidate available, the bound
        // should prune the noise tables (their token-overlap ceiling can't
        // beat a verified full match).
        let lake = typeless_lake(6);
        let engine = SantosDiscovery::build(&lake, Arc::new(covid_kb()), SantosConfig::default());
        let q = typeless_query(4);
        let (hits, stats) = engine.discover_capped(&q, 1, 1000);
        assert!(!hits.is_empty());
        assert!(
            stats.typeless_pruned > 0,
            "disjoint noise must be pruned, not scored: {stats:?}"
        );
        let (oracle, _) = engine.discover_capped(&q, 1, usize::MAX);
        assert_eq!(hits, oracle);
    }

    #[test]
    fn typeless_cap_is_honored_and_results_stay_sound() {
        let lake = typeless_lake(6);
        let engine = SantosDiscovery::build(&lake, Arc::new(covid_kb()), SantosConfig::default());
        let q = typeless_query(4);
        let (hits, stats) = engine.discover_capped(&q, 5, 1);
        assert!(stats.candidates_scored <= 1, "{stats:?}");
        assert!(!stats.full_scan);
        let (oracle, _) = engine.discover_capped(&q, 5, usize::MAX);
        for hit in &hits {
            assert!(
                oracle.contains(hit),
                "capped hit {hit:?} not in oracle {oracle:?}"
            );
        }
    }

    #[test]
    fn token_postings_track_churn_and_compaction_preserves_answers() {
        let mut lake = typeless_lake(3);
        let kb = Arc::new(covid_kb());
        let mut engine = SantosDiscovery::build(&lake, kb.clone(), SantosConfig::default());
        let (_, entries) = engine.token_posting_stats();
        let live: usize = 3 + (1 + 2 + 3) + 3 * 3; // fillers + shared + noise
        assert_eq!(entries, live);

        // Churn a large table in and out; postings must retire with it and
        // the pool must eventually compact (overtake rule), without
        // changing any answer.
        let big_rows: Vec<Vec<Value>> = (0..5000)
            .map(|i| vec![Value::Text(format!("dead{i}"))])
            .collect();
        let big = dialite_table::Table::from_rows("big", &["part"], big_rows).unwrap();
        let slot = lake.add_table(big.clone()).unwrap();
        engine.upsert_table(slot, &big);
        lake.remove_table("big").unwrap();
        engine.remove_table(slot);

        let (pool_len, entries) = engine.token_posting_stats();
        assert_eq!(entries, live, "retired postings must be gone");
        assert!(
            pool_len < 5000,
            "5000 dead vs {live} live tokens must have compacted the pool"
        );
        let q = typeless_query(3);
        let fresh = SantosDiscovery::build(&lake, kb, SantosConfig::default());
        assert_eq!(
            engine.discover_capped(&q, 5, 100),
            fresh.discover_capped(&q, 5, 100),
            "post-compaction bounded retrieval must answer like a rebuild"
        );
    }

    #[test]
    fn empty_lake_is_fine() {
        let engine = SantosDiscovery::build(
            &DataLake::new(),
            Arc::new(covid_kb()),
            SantosConfig::default(),
        );
        assert!(engine.is_empty());
        assert!(engine.discover(&query(), 5).is_empty());
    }
}
