//! SANTOS-style semantic union search.
//!
//! SANTOS scores a candidate table by how well the *semantic graph* of the
//! query — semantic types on columns, binary relationships between the
//! intent column and the other columns — matches the candidate's graph.
//! This implementation follows that construction over the mini KB:
//!
//! 1. **Index.** For every lake table, annotate each column with its top
//!    semantic type (confidence-weighted, alias-resolved, leaf types) and
//!    each ordered column pair with its top relationship. An inverted index
//!    `type → tables` provides candidate retrieval.
//! 2. **Query.** Annotate the query the same way; build its star graph
//!    around the intent column.
//! 3. **Score.** For each candidate: the best-matching candidate column for
//!    the intent (type similarity), plus for every other query column the
//!    best candidate column matching both edge relationship and node type.
//!    Scores are normalized to `[0, 1]`.
//! 4. **Synthesized signal.** Where the KB knows neither domain, direct
//!    value overlap (Jaccard) between the columns substitutes — the
//!    laptop-scale stand-in for SANTOS's data-lake-synthesized KB.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use dialite_kb::{Direction, KnowledgeBase, RelationId, TypeId};
use dialite_table::{DataLake, Table};
use dialite_text::jaccard;

use crate::types::{score_cmp, top_k, Discovered, Discovery, TableQuery};

/// Configuration of the SANTOS-style engine.
#[derive(Debug, Clone)]
pub struct SantosConfig {
    /// Minimum annotation confidence for a type/relationship to be used.
    pub min_confidence: f64,
    /// Weight of relationship-edge agreement relative to node types.
    pub edge_weight: f64,
    /// Weight of the synthesized (value-overlap) signal when KB annotations
    /// are absent on both sides.
    pub synth_weight: f64,
    /// Minimum candidate score to be reported at all; keeps weakly related
    /// tables (one coincidental column) out of the integration set.
    pub min_score: f64,
}

impl Default for SantosConfig {
    fn default() -> Self {
        SantosConfig {
            min_confidence: 0.4,
            edge_weight: 0.5,
            synth_weight: 0.6,
            min_score: 0.2,
        }
    }
}

/// Per-column annotation kept in the index.
#[derive(Debug, Clone, Default)]
struct ColumnSemantics {
    /// `(type, confidence)` above the confidence floor, best first.
    types: Vec<(TypeId, f64)>,
    /// Distinct value tokens (for the synthesized signal).
    tokens: HashSet<String>,
}

/// Per-table annotation kept in the index.
struct TableSemantics {
    name: String,
    columns: Vec<ColumnSemantics>,
    /// `(col_a, col_b) → (relation, direction, confidence)` for the top
    /// relationship of each ordered pair (a < b).
    pairs: HashMap<(usize, usize), (RelationId, Direction, f64)>,
}

/// The SANTOS-style discovery engine. Build once per lake, then either
/// query as-is or keep it warm across churn with
/// [`SantosDiscovery::upsert_table`] / [`SantosDiscovery::remove_table`] —
/// table annotations are independent of each other, so incremental
/// maintenance is exactly equivalent to a fresh build.
pub struct SantosDiscovery {
    kb: Arc<KnowledgeBase>,
    config: SantosConfig,
    /// Per-table semantics, keyed by the lake's stable slot index. A
    /// `BTreeMap` keeps full-scan candidate fallback deterministic.
    tables: BTreeMap<u32, TableSemantics>,
    /// Inverted index: type → table slots exhibiting it on some column.
    by_type: HashMap<TypeId, HashSet<u32>>,
}

impl SantosDiscovery {
    /// Annotate and index the whole lake.
    pub fn build(lake: &DataLake, kb: Arc<KnowledgeBase>, config: SantosConfig) -> SantosDiscovery {
        let mut engine = SantosDiscovery {
            kb,
            config,
            tables: BTreeMap::new(),
            by_type: HashMap::new(),
        };
        for (slot, table) in lake.entries() {
            engine.upsert_table(slot, table);
        }
        engine
    }

    /// Annotate (or re-annotate) one table under its lake slot.
    /// `O(that table)`.
    pub fn upsert_table(&mut self, slot: u32, table: &Table) {
        self.remove_table(slot);
        let sem = annotate_table(&self.kb, table, &self.config);
        for col in &sem.columns {
            for (t, _) in &col.types {
                self.by_type.entry(*t).or_default().insert(slot);
            }
        }
        self.tables.insert(slot, sem);
    }

    /// Drop the annotations of the table occupying a lake slot.
    pub fn remove_table(&mut self, slot: u32) {
        let Some(sem) = self.tables.remove(&slot) else {
            return;
        };
        for col in &sem.columns {
            for (t, _) in &col.types {
                if let Some(set) = self.by_type.get_mut(t) {
                    set.remove(&slot);
                    if set.is_empty() {
                        self.by_type.remove(t);
                    }
                }
            }
        }
    }

    /// Number of indexed tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when no table is indexed.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Similarity of two annotated columns: semantic type agreement when
    /// available on both sides, otherwise the synthesized value-overlap
    /// signal.
    fn column_sim(&self, q: &ColumnSemantics, c: &ColumnSemantics) -> f64 {
        if !q.types.is_empty() && !c.types.is_empty() {
            let mut best = 0.0f64;
            for (qt, qconf) in &q.types {
                for (ct, cconf) in &c.types {
                    if qt == ct {
                        best = best.max(qconf.min(*cconf));
                    }
                }
            }
            best
        } else {
            self.config.synth_weight * jaccard(&q.tokens, &c.tokens)
        }
    }
}

/// Specificity-weighted column annotation: each known value votes 1.0 for
/// its *leaf* types and 0.5 for their direct parents. Full ancestor closure
/// would make city and country columns indistinguishable through a shared
/// distant ancestor ("place"), destroying discrimination — SANTOS likewise
/// prefers the most specific annotation.
fn annotate_column_specific(
    kb: &KnowledgeBase,
    tokens: &HashSet<String>,
    min_confidence: f64,
) -> Vec<(TypeId, f64)> {
    if tokens.is_empty() {
        return Vec::new();
    }
    let mut votes: HashMap<TypeId, f64> = HashMap::new();
    for tok in tokens {
        let leafs = kb.leaf_types_of(tok);
        let mut token_votes: HashMap<TypeId, f64> = HashMap::new();
        for t in &leafs {
            token_votes.insert(*t, 1.0);
        }
        for t in &leafs {
            for p in kb.parent_types(*t) {
                token_votes.entry(*p).or_insert(0.5);
            }
        }
        for (t, w) in token_votes {
            *votes.entry(t).or_insert(0.0) += w;
        }
    }
    let total = tokens.len() as f64;
    let mut types: Vec<(TypeId, f64)> = votes
        .into_iter()
        .map(|(t, v)| (t, v / total))
        .filter(|(_, conf)| *conf >= min_confidence)
        .collect();
    // total_cmp: confidences can be NaN on degenerate inputs; sorting must
    // stay panic-free and deterministic.
    types.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    types
}

fn annotate_table(kb: &KnowledgeBase, table: &Table, config: &SantosConfig) -> TableSemantics {
    let ncols = table.column_count();
    let mut columns = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let tokens = table.column_token_set(c);
        let types = annotate_column_specific(kb, &tokens, config.min_confidence);
        columns.push(ColumnSemantics { types, tokens });
    }
    let mut pairs = HashMap::new();
    for a in 0..ncols {
        for b in (a + 1)..ncols {
            let pair_values: Vec<(String, String)> = table
                .rows()
                .filter_map(|row| {
                    let va = row[a].overlap_token()?;
                    let vb = row[b].overlap_token()?;
                    Some((va, vb))
                })
                .collect();
            let ann = kb.annotate_pair(pair_values.iter().map(|(x, y)| (x.as_str(), y.as_str())));
            if let Some(((rel, dir), conf)) = ann.top() {
                if conf >= config.min_confidence {
                    pairs.insert((a, b), (rel, dir, conf));
                }
            }
        }
    }
    TableSemantics {
        name: table.name().to_string(),
        columns,
        pairs,
    }
}

/// Relationship of the ordered pair `(a, b)` normalized to "a plays subject".
fn pair_rel(sem: &TableSemantics, a: usize, b: usize) -> Option<(RelationId, Direction, f64)> {
    if a < b {
        sem.pairs.get(&(a, b)).copied()
    } else {
        sem.pairs.get(&(b, a)).map(|&(r, d, c)| {
            let flipped = match d {
                Direction::Forward => Direction::Backward,
                Direction::Backward => Direction::Forward,
            };
            (r, flipped, c)
        })
    }
}

impl Discovery for SantosDiscovery {
    fn name(&self) -> &str {
        "santos"
    }

    fn discover(&self, query: &TableQuery, k: usize) -> Vec<Discovered> {
        let q_sem = annotate_table(&self.kb, &query.table, &self.config);
        let intent = query
            .effective_column()
            .min(q_sem.columns.len().saturating_sub(1));
        if q_sem.columns.is_empty() {
            return Vec::new();
        }

        // Candidate retrieval: tables sharing any annotated type with the
        // query; when the query has no annotations at all, scan the lake
        // (synthesized signal only).
        let mut candidates: HashSet<u32> = HashSet::new();
        let mut any_types = false;
        for col in &q_sem.columns {
            for (t, _) in &col.types {
                any_types = true;
                if let Some(set) = self.by_type.get(t) {
                    candidates.extend(set.iter().copied());
                }
            }
        }
        if !any_types {
            candidates.extend(self.tables.keys().copied());
        }

        let mut scored = Vec::with_capacity(candidates.len());
        for idx in candidates {
            let Some(cand) = self.tables.get(&idx) else {
                continue;
            };
            if cand.name == query.table.name() {
                continue; // the query itself, if it lives in the lake
            }
            let score = self.score_candidate(&q_sem, intent, cand);
            if score >= self.config.min_score && score > 0.0 {
                scored.push(Discovered {
                    table: cand.name.clone(),
                    score,
                });
            }
        }
        top_k(scored, k)
    }
}

impl SantosDiscovery {
    fn score_candidate(&self, q: &TableSemantics, intent: usize, cand: &TableSemantics) -> f64 {
        let qcols = q.columns.len();
        if qcols == 0 || cand.columns.is_empty() {
            return 0.0;
        }
        // Choose the candidate column best matching the intent column.
        let (best_intent_col, intent_sim) = cand
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| (i, self.column_sim(&q.columns[intent], c)))
            .max_by(|a, b| score_cmp(a.1, b.1))
            .unwrap();

        if qcols == 1 {
            return intent_sim;
        }

        // For every other query column: best candidate column by node type
        // plus edge agreement with the intent relationship.
        let mut rest = 0.0;
        for (j, qcol) in q.columns.iter().enumerate() {
            if j == intent {
                continue;
            }
            let q_edge = pair_rel(q, intent, j);
            let mut best = 0.0f64;
            for (cj, ccol) in cand.columns.iter().enumerate() {
                if cj == best_intent_col {
                    continue;
                }
                let node = self.column_sim(qcol, ccol);
                let edge = match (q_edge, pair_rel(cand, best_intent_col, cj)) {
                    (Some((qr, qd, qc)), Some((cr, cd, cc))) if qr == cr && qd == cd => qc.min(cc),
                    _ => 0.0,
                };
                let w = self.config.edge_weight;
                best = best.max((1.0 - w) * node + w * edge);
            }
            rest += best;
        }
        // Normalize: intent contributes like one column.
        (intent_sim + rest) / qcols as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_kb::curated::covid_kb;
    use dialite_table::{table, Value};

    /// Lake: a unionable COVID table (cities/countries/rates), a vaccine
    /// table, and numeric noise.
    fn demo_lake() -> DataLake {
        let unionable = table! {
            "covid_na"; ["nation", "town", "pct"];
            ["Canada", "Toronto", 0.83],
            ["Mexico", "Mexico City", Value::null_missing()],
            ["USA", "Boston", 0.62],
        };
        let vaccines = table! {
            "vaccines"; ["shot", "maker_country"];
            ["Pfizer", "United States"],
            ["AstraZeneca", "England"],
        };
        let noise = table! {
            "numbers"; ["a", "b"];
            [1, 2],
            [3, 4],
        };
        DataLake::from_tables([unionable, vaccines, noise]).unwrap()
    }

    fn query() -> TableQuery {
        TableQuery::with_column(
            table! {
                "Q"; ["Country", "City", "Rate"];
                ["Germany", "Berlin", 0.63],
                ["England", "Manchester", 0.78],
                ["Spain", "Barcelona", 0.82],
            },
            1, // City is the intent column, as in the demo scenario
        )
    }

    fn engine() -> SantosDiscovery {
        SantosDiscovery::build(&demo_lake(), Arc::new(covid_kb()), SantosConfig::default())
    }

    #[test]
    fn finds_unionable_table_first() {
        let hits = engine().discover(&query(), 3);
        assert!(!hits.is_empty());
        assert_eq!(
            hits[0].table, "covid_na",
            "the city/country/rate table should win: {hits:?}"
        );
    }

    #[test]
    fn noise_table_scores_lower_or_absent() {
        let hits = engine().discover(&query(), 10);
        let noise = hits.iter().find(|d| d.table == "numbers");
        let union = hits.iter().find(|d| d.table == "covid_na").unwrap();
        if let Some(noise) = noise {
            assert!(noise.score < union.score);
        }
    }

    #[test]
    fn relationship_edges_boost_semantically_coherent_tables() {
        // Candidate A has (city, country) with the located_in edge;
        // candidate B has cities and countries in *unrelated* columns
        // (shuffled rows), so the edge confidence is low.
        let coherent = table! {
            "coherent"; ["c1", "c2"];
            ["Toronto", "Canada"],
            ["Boston", "United States"],
            ["Ottawa", "Canada"],
        };
        let incoherent = table! {
            "incoherent"; ["c1", "c2"];
            ["Toronto", "United States"],
            ["Boston", "India"],
            ["Ottawa", "Mexico"],
        };
        let lake = DataLake::from_tables([coherent, incoherent]).unwrap();
        let engine = SantosDiscovery::build(&lake, Arc::new(covid_kb()), SantosConfig::default());
        let q = TableQuery::with_column(
            table! {
                "Q"; ["City", "Country"];
                ["Berlin", "Germany"],
                ["Barcelona", "Spain"],
            },
            0,
        );
        let hits = engine.discover(&q, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].table, "coherent", "{hits:?}");
        assert!(hits[0].score > hits[1].score, "{hits:?}");
    }

    #[test]
    fn synthesized_signal_works_without_kb_coverage() {
        // Domains unknown to the KB, but overlapping values.
        let a = table! { "parts"; ["part"]; ["bolt-17"], ["nut-4"], ["washer-9"] };
        let b = table! { "other"; ["x"]; ["gear-1"], ["gear-2"] };
        let lake = DataLake::from_tables([a, b]).unwrap();
        let engine = SantosDiscovery::build(&lake, Arc::new(covid_kb()), SantosConfig::default());
        let q = TableQuery::new(table! { "Q"; ["p"]; ["bolt-17"], ["nut-4"] });
        let hits = engine.discover(&q, 2);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].table, "parts");
    }

    #[test]
    fn query_table_itself_is_excluded() {
        let mut lake = demo_lake();
        lake.add(query().table.as_ref().clone().renamed("Q"))
            .unwrap();
        let engine = SantosDiscovery::build(&lake, Arc::new(covid_kb()), SantosConfig::default());
        let hits = engine.discover(&query(), 10);
        assert!(hits.iter().all(|d| d.table != "Q"));
    }

    #[test]
    fn k_limits_results() {
        let hits = engine().discover(&query(), 1);
        assert!(hits.len() <= 1);
    }

    #[test]
    fn incremental_maintenance_matches_fresh_build() {
        // Apply churn incrementally and rebuild from scratch; annotations
        // are per-table, so the two must agree exactly (keys + scores).
        let mut lake = demo_lake();
        let kb = Arc::new(covid_kb());
        let mut engine = SantosDiscovery::build(&lake, kb.clone(), SantosConfig::default());

        let newcomer = table! {
            "covid_eu"; ["country", "city", "rate"];
            ["Germany", "Berlin", 0.63],
            ["Spain", "Barcelona", 0.82],
        };
        let slot = lake.add_table(newcomer.clone()).unwrap();
        engine.upsert_table(slot, &newcomer);
        let (gone, _) = lake.remove_table("vaccines").unwrap();
        engine.remove_table(gone);
        let replacement = table! {
            "numbers"; ["a", "b"];
            [9, 9],
        };
        let slot = lake.replace_table(replacement.clone());
        engine.upsert_table(slot, &replacement);

        let fresh = SantosDiscovery::build(&lake, kb, SantosConfig::default());
        assert_eq!(engine.len(), fresh.len());
        assert_eq!(
            engine.discover(&query(), 10),
            fresh.discover(&query(), 10),
            "incremental index must answer exactly like a rebuild"
        );
        assert!(engine
            .discover(&query(), 10)
            .iter()
            .any(|d| d.table == "covid_eu"));
    }

    #[test]
    fn empty_lake_is_fine() {
        let engine = SantosDiscovery::build(
            &DataLake::new(),
            Arc::new(covid_kb()),
            SantosConfig::default(),
        );
        assert!(engine.is_empty());
        assert!(engine.discover(&query(), 5).is_empty());
    }
}
