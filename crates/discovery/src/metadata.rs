//! Metadata-aware discovery: match tables on their column **headers**.
//!
//! Real open-data corpora carry most of their reusable signal in the
//! *annotations* — column names, labels, schema fragments shared across
//! topically related datasets (cf. TableNet) — and a header probe is often
//! the only query a user can pose before any data is downloaded. This
//! engine answers exactly that query mode:
//!
//! 1. **Index.** For every lake table, tokenize each column header with
//!    [`dialite_text::word_tokens`] and intern the tokens in a shared
//!    [`StringPool`]. An inverted index `header token → tables` provides
//!    candidate retrieval; the same retire/compact machinery as the SANTOS
//!    leg's synthesized-signal postings keeps long-churn memory bounded.
//! 2. **Query.** Tokenize the query table's headers the same way (query
//!    tokens resolve through the pool, never intern — the query is not
//!    part of the lake).
//! 3. **Score.** Mean over query columns of the best header-token Jaccard
//!    against any candidate column, normalized to `[0, 1]`. Every query
//!    column counts the same: a header probe carries no intent column, so
//!    the score is deliberately symmetric across columns.
//!
//! Retrieval follows the same **candidate-cap contract** as the SANTOS
//! leg: under any finite cap, candidates are ranked by a sound upper bound
//! and scored best-bound-first; `cap == usize::MAX` is the exhaustive
//! full-header-scan oracle path the bounded path is pinned against
//! (`tests/metadata_oracle.rs`).

use std::collections::{BTreeMap, HashMap, HashSet};

use dialite_table::{DataLake, Table};
use dialite_text::{jaccard, word_tokens};

use crate::pool::StringPool;
use crate::santos::{kth_best, push_topk, POOL_COMPACT_MIN};
use crate::shard::ShardScope;
use crate::types::{top_k, Discovered, Discovery, TableQuery};

/// Configuration of the metadata (header-match) engine.
#[derive(Debug, Clone)]
pub struct MetadataConfig {
    /// Minimum candidate score to be reported at all; keeps tables that
    /// share only one boilerplate header token (`id`, `name`, …) out of
    /// the integration set.
    pub min_score: f64,
}

impl Default for MetadataConfig {
    fn default() -> Self {
        MetadataConfig { min_score: 0.2 }
    }
}

/// What one capped metadata query actually did — the observability half of
/// the candidate-cap contract, returned by
/// [`MetadataDiscovery::discover_capped`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetadataStats {
    /// Candidate tables surfaced by the header-token inverted index (or by
    /// the full header scan).
    pub candidates_retrieved: usize,
    /// Candidates actually run through the full header-similarity score.
    pub candidates_scored: usize,
    /// Candidates skipped because the k-th best verified score provably
    /// beats their header-overlap upper bound.
    pub bound_pruned: usize,
    /// Retrieval stopped at the candidate cap (results are best-effort).
    pub cap_hit: bool,
    /// The cap was unlimited, so retrieval ran the exhaustive full header
    /// scan — the oracle path of this leg.
    pub full_scan: bool,
}

/// Per-table header metadata kept in the index.
struct TableMeta {
    name: String,
    /// Per-column header token sets (the unit the score compares).
    columns: Vec<HashSet<String>>,
    /// The table's distinct header tokens interned in the engine's shared
    /// pool — the keys of its posting entries, kept so removal retires
    /// exactly those postings.
    header_ids: Vec<u32>,
}

/// The metadata-aware discovery engine. Build once per lake, then either
/// query as-is or keep it warm across churn with
/// [`MetadataDiscovery::upsert_table`] /
/// [`MetadataDiscovery::remove_table`] — header metadata is independent
/// per table, so incremental maintenance is exactly equivalent to a fresh
/// build.
pub struct MetadataDiscovery {
    config: MetadataConfig,
    /// Per-table metadata, keyed by the lake's stable slot index. A
    /// `BTreeMap` keeps the full-scan oracle deterministic.
    tables: BTreeMap<u32, TableMeta>,
    /// Header-token dictionary (same [`StringPool`] machinery the other
    /// legs intern through).
    pool: StringPool,
    /// Inverted index: header token id → table slots whose headers contain
    /// the token.
    header_postings: HashMap<u32, Vec<u32>>,
    /// Σ distinct header tokens over live tables (with multiplicity across
    /// tables).
    live_weight: usize,
    /// Header-token weight retired since the last pool compaction.
    retired_weight: usize,
}

impl MetadataDiscovery {
    /// Index the headers of the whole lake.
    pub fn build(lake: &DataLake, config: MetadataConfig) -> MetadataDiscovery {
        MetadataDiscovery::build_scoped(lake, config, ShardScope::all())
    }

    /// Index one shard's stripe of the lake (the slots `scope`
    /// [`admits`](ShardScope::admits)). Header metadata is per-table, so a
    /// scoped build is exactly a full build restricted to the stripe;
    /// [`ShardScope::all`] reproduces [`MetadataDiscovery::build`].
    pub fn build_scoped(
        lake: &DataLake,
        config: MetadataConfig,
        scope: ShardScope,
    ) -> MetadataDiscovery {
        let mut engine = MetadataDiscovery {
            config,
            tables: BTreeMap::new(),
            pool: StringPool::new(),
            header_postings: HashMap::new(),
            live_weight: 0,
            retired_weight: 0,
        };
        for (slot, table) in lake.entries_routed(scope.shard(), scope.of()) {
            engine.upsert_table(slot, table);
        }
        engine
    }

    /// Index (or re-index) one table's headers under its lake slot.
    /// `O(that table's schema)` — row data is never touched.
    pub fn upsert_table(&mut self, slot: u32, table: &Table) {
        self.remove_table(slot);
        let columns: Vec<HashSet<String>> = table
            .schema()
            .columns()
            .iter()
            .map(|col| word_tokens(&col.name).into_iter().collect())
            .collect();
        let ids: HashSet<u32> = columns
            .iter()
            .flat_map(|col| col.iter())
            .map(|tok| self.pool.intern(tok))
            .collect();
        for &id in &ids {
            self.header_postings.entry(id).or_default().push(slot);
        }
        self.live_weight += ids.len();
        self.tables.insert(
            slot,
            TableMeta {
                name: table.name().to_string(),
                columns,
                header_ids: ids.into_iter().collect(),
            },
        );
    }

    /// Drop the header metadata of the table occupying a lake slot.
    pub fn remove_table(&mut self, slot: u32) {
        let Some(meta) = self.tables.remove(&slot) else {
            return;
        };
        for id in &meta.header_ids {
            if let Some(list) = self.header_postings.get_mut(id) {
                if let Some(pos) = list.iter().position(|s| *s == slot) {
                    list.swap_remove(pos);
                }
                if list.is_empty() {
                    self.header_postings.remove(id);
                }
            }
        }
        self.live_weight -= meta.header_ids.len();
        self.retired_weight += meta.header_ids.len();
        self.maybe_compact_pool();
    }

    /// Compact the header-token pool once dead weight overtakes live
    /// weight (and the [`POOL_COMPACT_MIN`] floor), remapping every stored
    /// token id — the same overtake rule the other legs use, so long-churn
    /// memory stays bounded.
    fn maybe_compact_pool(&mut self) {
        if self.retired_weight <= self.live_weight.max(POOL_COMPACT_MIN) {
            return;
        }
        let live: HashSet<u32> = self
            .tables
            .values()
            .flat_map(|meta| meta.header_ids.iter().copied())
            .collect();
        let remap = self.pool.compact(&live);
        for meta in self.tables.values_mut() {
            for id in &mut meta.header_ids {
                *id = remap[*id as usize];
            }
        }
        self.header_postings = std::mem::take(&mut self.header_postings)
            .into_iter()
            .map(|(id, list)| (remap[id as usize], list))
            .collect();
        self.retired_weight = 0;
    }

    /// `(distinct interned header tokens, total posting entries)` — the
    /// latter always equals the summed live per-table header weights.
    pub fn header_posting_stats(&self) -> (usize, usize) {
        (
            self.pool.len(),
            self.header_postings.values().map(Vec::len).sum(),
        )
    }

    /// Number of indexed tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when no table is indexed.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Header similarity: mean over query columns of the best Jaccard
    /// against any candidate column's header tokens.
    fn score_candidate(&self, q_cols: &[HashSet<String>], cand: &TableMeta) -> f64 {
        if q_cols.is_empty() || cand.columns.is_empty() {
            return 0.0;
        }
        let total: f64 = q_cols
            .iter()
            .map(|qc| {
                cand.columns
                    .iter()
                    .map(|cc| jaccard(qc, cc))
                    .fold(0.0, f64::max)
            })
            .sum();
        total / q_cols.len() as f64
    }

    /// [`Discovery::discover`] with a **candidate cap**: under any finite
    /// `cap`, candidates are ranked by a cheap per-table *header-overlap
    /// upper bound* on the full score and scored best-bound-first;
    /// retrieval stops once `cap` candidates are scored, or earlier when
    /// the k-th best kept score provably (strictly) beats every remaining
    /// bound. Any finite `cap >= lake size` therefore equals the
    /// exhaustive output exactly — tables the bound prunes can never enter
    /// the top-k, and score ties are still scored so name tie-breaking is
    /// preserved.
    ///
    /// `cap == usize::MAX` is the **exhaustive oracle path**: every
    /// indexed table is scored in slot order with no ranking or pruning
    /// (`full_scan` in the stats) — the baseline the capped path's
    /// equality and recall are measured against, pinned by
    /// `tests/metadata_oracle.rs`.
    ///
    /// The bound is sound because per query column `j`,
    /// `jaccard(Qj, Cc) <= min(1, |Q ∩ T| / |Qj|)` where `|Q ∩ T|` is the
    /// *table-level* header-token overlap the postings count
    /// (`Qj ∩ Cc ⊆ Q ∩ T` and `|Qj ∪ Cc| >= |Qj|`); an empty query column
    /// can reach `jaccard == 1` against an empty candidate header, so its
    /// ceiling stays `1.0`. Candidates the postings never saw share the
    /// zero-overlap bound and are ranked only when that bound could clear
    /// the reporting filter at all — otherwise their true score fails the
    /// same filter and they are exactly the tables the full scan would
    /// drop too.
    pub fn discover_capped(
        &self,
        query: &TableQuery,
        k: usize,
        cap: usize,
    ) -> (Vec<Discovered>, MetadataStats) {
        let mut stats = MetadataStats::default();
        let q_cols: Vec<HashSet<String>> = query
            .table
            .schema()
            .columns()
            .iter()
            .map(|col| word_tokens(&col.name).into_iter().collect())
            .collect();
        if q_cols.is_empty() || k == 0 {
            return (Vec::new(), stats);
        }

        if cap == usize::MAX {
            // Exhaustive full header scan — the oracle path the bounded
            // retrieval is measured against.
            stats.full_scan = true;
            stats.candidates_retrieved = self.tables.len();
            let mut scored = Vec::with_capacity(self.tables.len());
            for cand in self.tables.values() {
                if cand.name == query.table.name() {
                    continue; // the query itself, if it lives in the lake
                }
                stats.candidates_scored += 1;
                let score = self.score_candidate(&q_cols, cand);
                if score >= self.config.min_score && score > 0.0 {
                    scored.push(Discovered {
                        table: cand.name.clone(),
                        score,
                    });
                }
            }
            return (top_k(scored, k), stats);
        }

        // Table-level header overlap |Q ∩ T| via the posting index. Query
        // tokens resolve through `get` (never interned: the query is not
        // part of the lake); unknown tokens occur in no table and drop out.
        let q_ids: HashSet<u32> = q_cols
            .iter()
            .flat_map(|col| col.iter())
            .filter_map(|tok| self.pool.get(tok))
            .collect();
        let mut overlap: HashMap<u32, usize> = HashMap::new();
        for id in &q_ids {
            if let Some(list) = self.header_postings.get(id) {
                for &slot in list {
                    *overlap.entry(slot).or_insert(0) += 1;
                }
            }
        }

        let col_bound = |j: usize, ov: usize| -> f64 {
            let qn = q_cols[j].len();
            if qn == 0 {
                // jaccard(∅, ∅) == 1: an empty candidate header matches an
                // empty query header perfectly, overlap or not.
                1.0
            } else {
                (ov as f64 / qn as f64).min(1.0)
            }
        };
        let bound_for = |ov: usize| -> f64 {
            let total: f64 = (0..q_cols.len()).map(|j| col_bound(j, ov)).sum();
            total / q_cols.len() as f64
        };

        let mut ranked: Vec<(u32, f64)> = overlap
            .iter()
            .map(|(&slot, &ov)| (slot, bound_for(ov)))
            .collect();
        // Zero-overlap candidates can still score — through empty-column
        // jaccard — so they enter the ranking whenever their shared bound
        // could clear the reporting filter (`score >= min_score &&
        // score > 0`).
        let base_bound = bound_for(0);
        if base_bound > 0.0 && base_bound >= self.config.min_score {
            for &slot in self.tables.keys() {
                if !overlap.contains_key(&slot) {
                    ranked.push((slot, base_bound));
                }
            }
        }
        // Best bound first; slot index breaks ties so the scored prefix is
        // deterministic even when the cap cuts inside a tie group.
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        stats.candidates_retrieved = ranked.len();

        let mut scored: Vec<Discovered> = Vec::new();
        let mut kept: Vec<f64> = Vec::new();
        for (pos, &(slot, bound)) in ranked.iter().enumerate() {
            // Optimality bound: strictly `>` so bound ties with the k-th
            // score are still scored and tie-breaks match the full scan
            // exactly.
            if let Some(kth) = kth_best(&kept, k) {
                if kth > bound {
                    stats.bound_pruned = ranked.len() - pos;
                    break;
                }
            }
            if stats.candidates_scored >= cap {
                stats.cap_hit = true;
                break;
            }
            let Some(cand) = self.tables.get(&slot) else {
                continue;
            };
            if cand.name == query.table.name() {
                continue; // the query itself, if it lives in the lake
            }
            stats.candidates_scored += 1;
            let score = self.score_candidate(&q_cols, cand);
            if score >= self.config.min_score && score > 0.0 {
                push_topk(&mut kept, score, k);
                scored.push(Discovered {
                    table: cand.name.clone(),
                    score,
                });
            }
        }
        (top_k(scored, k), stats)
    }
}

impl Discovery for MetadataDiscovery {
    fn name(&self) -> &str {
        "metadata"
    }

    fn discover(&self, query: &TableQuery, k: usize) -> Vec<Discovered> {
        self.discover_capped(query, k, usize::MAX).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::{table, Value};

    fn demo_lake() -> DataLake {
        let covid = table! {
            "covid_na"; ["country name", "city", "vaccination rate"];
            ["Canada", "Toronto", 0.83],
            ["USA", "Boston", 0.62],
        };
        let weather = table! {
            "weather"; ["city", "temperature", "humidity"];
            ["Toronto", 21, 60],
            ["Boston", 24, 55],
        };
        let noise = table! {
            "numbers"; ["a", "b"];
            [1, 2],
            [3, 4],
        };
        DataLake::from_tables([covid, weather, noise]).unwrap()
    }

    fn query() -> TableQuery {
        TableQuery::new(table! {
            "Q"; ["country name", "vaccination rate"];
            ["Germany", 0.63],
        })
    }

    fn engine() -> MetadataDiscovery {
        MetadataDiscovery::build(&demo_lake(), MetadataConfig::default())
    }

    #[test]
    fn headers_drive_the_match_regardless_of_values() {
        // The query shares no *values* with the lake at all — only
        // headers. The header-compatible table must win.
        let hits = engine().discover(&query(), 3);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].table, "covid_na", "{hits:?}");
        assert!(hits.iter().all(|d| d.table != "numbers"));
    }

    #[test]
    fn finite_cap_covering_the_lake_equals_exhaustive() {
        let engine = engine();
        for k in [1, 2, 10, usize::MAX] {
            let (oracle, ostats) = engine.discover_capped(&query(), k, usize::MAX);
            assert!(ostats.full_scan);
            let (capped, stats) = engine.discover_capped(&query(), k, 1000);
            assert!(!stats.full_scan, "finite cap takes the bounded path");
            assert!(!stats.cap_hit);
            assert_eq!(capped, oracle, "k={k}");
        }
    }

    #[test]
    fn cap_is_honored_and_results_stay_sound() {
        let engine = engine();
        let (hits, stats) = engine.discover_capped(&query(), 5, 1);
        assert!(stats.candidates_scored <= 1, "{stats:?}");
        let (oracle, _) = engine.discover_capped(&query(), 5, usize::MAX);
        for hit in &hits {
            assert!(
                oracle.contains(hit),
                "capped hit {hit:?} not in oracle {oracle:?}"
            );
        }
    }

    #[test]
    fn bound_prunes_weakly_overlapping_headers() {
        // Many tables share only the boilerplate token `name` with the
        // query; with a perfect verified match at k=1 their overlap
        // ceiling (0.5) can't win, so they must be pruned, not scored.
        let mut tables = vec![table! {
            "match"; ["country name", "vaccination rate"];
            ["X", 1.0],
        }];
        for i in 0..20 {
            tables.push(
                Table::from_rows(
                    &format!("noise{i}"),
                    &[&format!("name zzz{i}"), &format!("yyy{i}")],
                    vec![vec![Value::Int(1), Value::Int(2)]],
                )
                .unwrap(),
            );
        }
        let lake = DataLake::from_tables(tables).unwrap();
        let engine = MetadataDiscovery::build(&lake, MetadataConfig::default());
        let (hits, stats) = engine.discover_capped(&query(), 1, 1000);
        assert_eq!(hits[0].table, "match");
        assert!(stats.bound_pruned > 0, "{stats:?}");
        let (oracle, _) = engine.discover_capped(&query(), 1, usize::MAX);
        assert_eq!(hits, oracle);
    }

    #[test]
    fn incremental_maintenance_matches_fresh_build_through_compaction() {
        let mut lake = demo_lake();
        let mut engine = MetadataDiscovery::build(&lake, MetadataConfig::default());

        // Churn a wide table in and out; postings must retire with it and
        // the pool must eventually compact (overtake rule), without
        // changing any answer.
        let headers: Vec<String> = (0..3000).map(|i| format!("dead{i}")).collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let row: Vec<Value> = (0..3000).map(Value::Int).collect();
        let big = Table::from_rows("big", &header_refs, vec![row]).unwrap();
        let slot = lake.add_table(big.clone()).unwrap();
        engine.upsert_table(slot, &big);
        lake.remove_table("big").unwrap();
        engine.remove_table(slot);

        let newcomer = table! {
            "covid_eu"; ["country name", "vaccination rate"];
            ["Germany", 0.63],
        };
        let slot = lake.add_table(newcomer.clone()).unwrap();
        engine.upsert_table(slot, &newcomer);

        let fresh = MetadataDiscovery::build(&lake, MetadataConfig::default());
        assert_eq!(engine.len(), fresh.len());
        let (pool_len, entries) = engine.header_posting_stats();
        let (_, fresh_entries) = fresh.header_posting_stats();
        assert_eq!(entries, fresh_entries, "retired postings must be gone");
        assert!(pool_len < 3000, "the pool must have compacted");
        assert_eq!(
            engine.discover_capped(&query(), 10, 100),
            fresh.discover_capped(&query(), 10, 100),
            "post-compaction bounded retrieval must answer like a rebuild"
        );
        assert_eq!(
            engine.discover(&query(), 10),
            fresh.discover(&query(), 10),
            "incremental index must answer exactly like a rebuild"
        );
    }

    #[test]
    fn query_table_itself_is_excluded() {
        let mut lake = demo_lake();
        lake.add(query().table.as_ref().clone().renamed("Q"))
            .unwrap();
        let engine = MetadataDiscovery::build(&lake, MetadataConfig::default());
        let hits = engine.discover(&query(), 10);
        assert!(hits.iter().all(|d| d.table != "Q"));
    }

    #[test]
    fn empty_lake_is_fine() {
        let engine = MetadataDiscovery::build(&DataLake::new(), MetadataConfig::default());
        assert!(engine.is_empty());
        assert!(engine.discover(&query(), 5).is_empty());
    }
}
