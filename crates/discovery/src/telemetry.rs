//! Rolling discovery telemetry — the observability half of the budgeted
//! pipeline.
//!
//! `TopKPlanner` returns per-query [`TopKStats`](crate::TopKStats) and the
//! capped SANTOS engine returns per-query [`SantosStats`](crate::SantosStats),
//! but one query's numbers are weather, not climate: production tuning
//! needs the *rates* — how often the signature cache hits, how many
//! partitions the planner proves irrelevant, how often a budget cap (not
//! the optimality bound) ends a search. [`DiscoveryTelemetry`] is that
//! aggregate: counter blocks per engine leg plus coarse per-engine latency
//! histograms, owned by `LakeIndex` (every budgeted query folds its stats
//! in) and surfaced through `Pipeline::telemetry()`.
//!
//! Telemetry is *mergeable* and *resettable*: shards serving the same lake
//! can [`DiscoveryTelemetry::merge`] their windows into a fleet view, and a
//! scrape-and-reset loop gets non-overlapping windows from
//! [`DiscoveryTelemetry::reset`]. Counter blocks are plain `PartialEq`
//! data, so tests can pin them in lockstep against independently
//! accumulated [`TopKStats`](crate::TopKStats).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::metadata::MetadataStats;
use crate::santos::SantosStats;
use crate::topk::TopKStats;

/// Upper bounds (exclusive, in microseconds) of the latency buckets; the
/// last bucket is unbounded. Decade-spaced: interactive discovery spans
/// ~10µs (cached exact-path hits) to ~100ms (probe-all over a cold lake).
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 6] = [10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// A fixed-bucket latency histogram (decade buckets over microseconds)
/// plus exact totals, so both tail shape and mean survive aggregation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Sample counts per bucket: `buckets[i]` counts samples below
    /// [`LATENCY_BUCKET_BOUNDS_US`]`[i]` (and at or above the previous
    /// bound); the final slot counts everything slower.
    pub buckets: [u64; LATENCY_BUCKET_BOUNDS_US.len() + 1],
    /// Total recorded samples.
    pub samples: u64,
    /// Sum of all recorded latencies, in microseconds.
    pub total_micros: u64,
}

impl LatencyHistogram {
    /// Fold one measured latency in.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let slot = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us < bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_US.len());
        self.buckets[slot] += 1;
        self.samples += 1;
        self.total_micros = self.total_micros.saturating_add(us);
    }

    /// Mean latency in microseconds (0 with no samples).
    pub fn mean_micros(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_micros as f64 / self.samples as f64
        }
    }

    /// Add another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets) {
            *mine += theirs;
        }
        self.samples += other.samples;
        self.total_micros = self.total_micros.saturating_add(other.total_micros);
    }

    /// The `q`-quantile of the recorded samples in microseconds
    /// (`q` in `[0, 1]`), linearly interpolated *within* the decade bucket
    /// holding the quantile rank. `None` when no samples were recorded or
    /// `q` is out of range — never `0` or `NaN`, so an empty window cannot
    /// masquerade as a fast one.
    ///
    /// The bucket holding the rank is exact; the position inside it is
    /// interpolated, so the absolute error is bounded by one bucket width.
    /// The final unbounded bucket reports its lower bound (a conservative
    /// under-estimate for extreme tails).
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.samples == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // 1-based rank of the sample the quantile lands on (nearest-rank).
        let rank = ((q * self.samples as f64).ceil() as u64).clamp(1, self.samples);
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if seen + count >= rank {
                let lo = if i == 0 {
                    0
                } else {
                    LATENCY_BUCKET_BOUNDS_US[i - 1]
                };
                return Some(match LATENCY_BUCKET_BOUNDS_US.get(i) {
                    Some(&hi) => {
                        // Midpoint-rank interpolation: treat the rank-th
                        // sample as sitting at the middle of its 1/count
                        // slice so exports stay strictly inside the
                        // half-open bucket `[lo, hi)`.
                        let frac = ((rank - seen) as f64 - 0.5) / count as f64;
                        lo as f64 + (hi - lo) as f64 * frac
                    }
                    None => lo as f64,
                });
            }
            seen += count;
        }
        None
    }

    /// The standard serving-tail snapshot: p50/p90/p99/p999 (see
    /// [`LatencyHistogram::percentile`]) plus mean and sample count. The
    /// histogram itself is the merge-compatible form — shard snapshots
    /// [`merge`](LatencyHistogram::merge) first, *then* export percentiles
    /// (percentiles of merged windows are not sums of per-window
    /// percentiles).
    ///
    /// An empty window exports `None` in every percentile field (the
    /// [`LatencyHistogram::percentile`] contract) — never `0` or `NaN` —
    /// so a shard that served nothing cannot masquerade as a fast one:
    ///
    /// ```
    /// use dialite_discovery::LatencyHistogram;
    ///
    /// let p = LatencyHistogram::default().percentiles();
    /// assert_eq!(p.samples, 0);
    /// assert_eq!(p.p50_us, None);
    /// assert_eq!(p.p999_us, None);
    /// assert_eq!(p.mean_us, 0.0);
    /// ```
    pub fn percentiles(&self) -> LatencyPercentiles {
        LatencyPercentiles {
            samples: self.samples,
            mean_us: self.mean_micros(),
            p50_us: self.percentile(0.50),
            p90_us: self.percentile(0.90),
            p99_us: self.percentile(0.99),
            p999_us: self.percentile(0.999),
        }
    }

    /// One-line bucket rendering, e.g. `<10us:3 <100us:12 ... >=1s:0`.
    pub fn render(&self) -> String {
        let mut parts = Vec::with_capacity(self.buckets.len());
        let label = |us: u64| -> String {
            if us >= 1_000_000 {
                format!("{}s", us / 1_000_000)
            } else if us >= 1_000 {
                format!("{}ms", us / 1_000)
            } else {
                format!("{us}us")
            }
        };
        for (i, count) in self.buckets.iter().enumerate() {
            match LATENCY_BUCKET_BOUNDS_US.get(i) {
                Some(&bound) => parts.push(format!("<{}:{count}", label(bound))),
                None => parts.push(format!(
                    ">={}:{count}",
                    label(*LATENCY_BUCKET_BOUNDS_US.last().expect("non-empty"))
                )),
            }
        }
        parts.join(" ")
    }
}

/// Exported tail-latency summary of one [`LatencyHistogram`] window —
/// what a serving dashboard or `BENCH_serving.json` row holds. All
/// percentile fields are `None` on an empty window (never `0` / `NaN`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyPercentiles {
    /// Samples the window holds.
    pub samples: u64,
    /// Mean latency in microseconds (0 with no samples).
    pub mean_us: f64,
    /// Median, microseconds.
    pub p50_us: Option<f64>,
    /// 90th percentile, microseconds.
    pub p90_us: Option<f64>,
    /// 99th percentile, microseconds.
    pub p99_us: Option<f64>,
    /// 99.9th percentile, microseconds.
    pub p999_us: Option<f64>,
}

impl LatencyPercentiles {
    /// Compact one-line rendering, e.g.
    /// `p50 0.9ms p90 1.2ms p99 4.1ms p999 9.8ms (mean 1.1ms, n=1280)`;
    /// `-` stands for an empty window's `None`.
    pub fn render(&self) -> String {
        let fmt = |p: Option<f64>| -> String {
            match p {
                Some(us) if us >= 1_000.0 => format!("{:.1}ms", us / 1_000.0),
                Some(us) => format!("{us:.0}us"),
                None => "-".to_string(),
            }
        };
        format!(
            "p50 {} p90 {} p99 {} p999 {} (mean {}, n={})",
            fmt(self.p50_us),
            fmt(self.p90_us),
            fmt(self.p99_us),
            fmt(self.p999_us),
            fmt(if self.samples == 0 {
                None
            } else {
                Some(self.mean_us)
            }),
            self.samples,
        )
    }

    /// One JSON object, e.g.
    /// `{"samples":128,"mean_us":412.5,"p50_us":390.1,...}`. Empty-window
    /// `None` percentiles export as JSON `null`, preserving the
    /// [`LatencyHistogram::percentile`] contract across serialization.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"samples\":{},\"mean_us\":{:.1},\"p50_us\":{},\"p90_us\":{},\
             \"p99_us\":{},\"p999_us\":{}}}",
            self.samples,
            self.mean_us,
            json_opt_us(self.p50_us),
            json_opt_us(self.p90_us),
            json_opt_us(self.p99_us),
            json_opt_us(self.p999_us),
        )
    }
}

/// `Option<f64>` microseconds as a JSON fragment: `null` for `None`.
fn json_opt_us(v: Option<f64>) -> String {
    match v {
        Some(us) => format!("{us:.1}"),
        None => "null".to_string(),
    }
}

/// Number of independent telemetry shards. A small power of two comfortably
/// above the concurrent-client counts the serving bench drives (32), so
/// threads rarely contend on the same shard lock.
pub(crate) const TELEMETRY_SHARDS: usize = 16;

/// The shard a thread's telemetry lands in: assigned once per thread from a
/// process-wide counter, so each of the first [`TELEMETRY_SHARDS`] threads
/// gets a private shard and later threads wrap around.
pub(crate) fn telemetry_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % TELEMETRY_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// Sharded [`DiscoveryTelemetry`] accumulator — the hot-path fix for the
/// single telemetry `Mutex` every budgeted query used to serialize on.
/// Each thread records into its own shard (a handful of counter adds under
/// an uncontended lock); [`ShardedTelemetry::snapshot`] merges the shards
/// into one window on demand. Counter sums and histogram merges are
/// order-independent, so a snapshot equals the single-`Mutex` window
/// exactly — pinned by the concurrent lockstep test in
/// `tests/incremental_oracle.rs` and the thread-churn merge property in
/// `tests/shard_oracle.rs`.
#[derive(Debug, Default)]
pub struct ShardedTelemetry {
    shards: [Mutex<DiscoveryTelemetry>; TELEMETRY_SHARDS],
}

impl ShardedTelemetry {
    fn shard(&self) -> &Mutex<DiscoveryTelemetry> {
        &self.shards[telemetry_shard()]
    }

    /// Fold one planned joinable query into the calling thread's shard.
    pub fn record_topk(&self, stats: &TopKStats, latency: Duration) {
        self.shard()
            .lock()
            .expect("telemetry shard")
            .record_topk(stats, latency);
    }

    /// Fold one capped SANTOS query into the calling thread's shard.
    pub fn record_santos(&self, stats: &SantosStats, latency: Duration) {
        self.shard()
            .lock()
            .expect("telemetry shard")
            .record_santos(stats, latency);
    }

    /// Fold one capped metadata query into the calling thread's shard.
    pub fn record_metadata(&self, stats: &MetadataStats, latency: Duration) {
        self.shard()
            .lock()
            .expect("telemetry shard")
            .record_metadata(stats, latency);
    }

    /// Merge every shard into one window. Counter sums and histogram
    /// merges are order-independent, so the snapshot equals a
    /// single-threaded fold of the same recordings in any order.
    pub fn snapshot(&self) -> DiscoveryTelemetry {
        let mut out = DiscoveryTelemetry::default();
        for shard in &self.shards {
            out.merge(&shard.lock().expect("telemetry shard"));
        }
        out
    }

    /// Zero every shard.
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.lock().expect("telemetry shard").reset();
        }
    }

    /// Replace the whole window (used when a rebuild carries telemetry
    /// across): everything lands in shard 0; snapshots are merge-order
    /// independent, so placement does not matter.
    pub(crate) fn restore(&mut self, window: DiscoveryTelemetry) {
        for shard in &mut self.shards {
            shard.get_mut().expect("telemetry shard").reset();
        }
        *self.shards[0].get_mut().expect("telemetry shard") = window;
    }
}

/// Aggregated counters of the planned joinable leg — the rolling sum of
/// every [`TopKStats`](crate::TopKStats) folded in. Plain data with
/// `PartialEq`, so lockstep tests can compare against an independently
/// accumulated sum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopKCounters {
    /// Planned queries recorded.
    pub queries: u64,
    /// Queries whose column signature came from the LRU cache.
    pub cache_hits: u64,
    /// Queries that hashed a fresh signature (sketch path, cache miss).
    pub cache_misses: u64,
    /// Queries answered exactly by the posting merge (no sketch work).
    pub exact_path: u64,
    /// LSH partitions actually probed, summed.
    pub partitions_probed: u64,
    /// LSH partitions proven irrelevant (threshold/optimality/budget),
    /// summed.
    pub partitions_pruned: u64,
    /// Candidate domains whose containment was computed exactly (sketch
    /// path verification or exact-path posting merge), summed.
    pub candidates_verified: u64,
    /// Queries ended by the provable optimality bound.
    pub terminated_early: u64,
    /// Queries cut short by a budget cap (best-effort results).
    pub budget_exhausted: u64,
    /// Posting entries the exact path's cost model never scanned
    /// (threshold bound or postings budget), summed.
    pub postings_skipped: u64,
}

impl TopKCounters {
    /// Fold one query's stats in.
    pub fn record(&mut self, stats: &TopKStats) {
        self.queries += 1;
        if stats.cache_hit {
            self.cache_hits += 1;
        } else if !stats.exact_path {
            self.cache_misses += 1;
        }
        if stats.exact_path {
            self.exact_path += 1;
        }
        self.partitions_probed += stats.partitions_probed as u64;
        self.partitions_pruned += stats.partitions_pruned as u64;
        self.candidates_verified += stats.candidates_verified as u64;
        if stats.terminated_early {
            self.terminated_early += 1;
        }
        if stats.budget_exhausted {
            self.budget_exhausted += 1;
        }
        self.postings_skipped += stats.postings_skipped as u64;
    }

    /// Add another window's counters into this one.
    pub fn merge(&mut self, other: &TopKCounters) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.exact_path += other.exact_path;
        self.partitions_probed += other.partitions_probed;
        self.partitions_pruned += other.partitions_pruned;
        self.candidates_verified += other.candidates_verified;
        self.terminated_early += other.terminated_early;
        self.budget_exhausted += other.budget_exhausted;
        self.postings_skipped += other.postings_skipped;
    }

    /// Signature-cache hit rate over sketch-path queries (0 when none ran).
    pub fn cache_hit_rate(&self) -> f64 {
        let sketch = self.cache_hits + self.cache_misses;
        if sketch == 0 {
            0.0
        } else {
            self.cache_hits as f64 / sketch as f64
        }
    }

    /// Fraction of queries a budget cap cut short (0 when none ran).
    pub fn budget_exhaustion_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.budget_exhausted as f64 / self.queries as f64
        }
    }
}

/// Aggregated counters of the capped SANTOS leg — the rolling sum of every
/// [`SantosStats`](crate::SantosStats) folded in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SantosCounters {
    /// Capped-retrieval queries recorded.
    pub queries: u64,
    /// Candidate tables surfaced by the type inverted index (or the full
    /// scan), summed.
    pub candidates_retrieved: u64,
    /// Candidates actually scored, summed.
    pub candidates_scored: u64,
    /// Candidates skipped because the k-th score provably beat their
    /// type-overlap upper bound, summed.
    pub bound_pruned: u64,
    /// Queries whose retrieval stopped at the candidate cap.
    pub cap_hits: u64,
    /// Queries that ran the exhaustive typeless full scan (the typeless
    /// oracle path, taken only at an unlimited cap).
    pub full_scans: u64,
    /// Typeless candidates skipped because the k-th score provably beat
    /// their synthesized-signal upper bound, summed.
    pub typeless_pruned: u64,
}

impl SantosCounters {
    /// Fold one query's stats in.
    pub fn record(&mut self, stats: &SantosStats) {
        self.queries += 1;
        self.candidates_retrieved += stats.candidates_retrieved as u64;
        self.candidates_scored += stats.candidates_scored as u64;
        self.bound_pruned += stats.bound_pruned as u64;
        if stats.cap_hit {
            self.cap_hits += 1;
        }
        if stats.full_scan {
            self.full_scans += 1;
        }
        self.typeless_pruned += stats.typeless_pruned as u64;
    }

    /// Add another window's counters into this one.
    pub fn merge(&mut self, other: &SantosCounters) {
        self.queries += other.queries;
        self.candidates_retrieved += other.candidates_retrieved;
        self.candidates_scored += other.candidates_scored;
        self.bound_pruned += other.bound_pruned;
        self.cap_hits += other.cap_hits;
        self.full_scans += other.full_scans;
        self.typeless_pruned += other.typeless_pruned;
    }
}

/// Aggregated counters of the capped metadata (header-match) leg — the
/// rolling sum of every [`MetadataStats`](crate::MetadataStats) folded in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetadataCounters {
    /// Capped-retrieval queries recorded.
    pub queries: u64,
    /// Candidate tables surfaced by the header-token inverted index (or
    /// the full header scan), summed.
    pub candidates_retrieved: u64,
    /// Candidates actually scored, summed.
    pub candidates_scored: u64,
    /// Candidates skipped because the k-th score provably beat their
    /// header-overlap upper bound, summed.
    pub bound_pruned: u64,
    /// Queries whose retrieval stopped at the candidate cap.
    pub cap_hits: u64,
    /// Queries that ran the exhaustive full header scan (the oracle path,
    /// taken only at an unlimited cap).
    pub full_scans: u64,
}

impl MetadataCounters {
    /// Fold one query's stats in.
    pub fn record(&mut self, stats: &MetadataStats) {
        self.queries += 1;
        self.candidates_retrieved += stats.candidates_retrieved as u64;
        self.candidates_scored += stats.candidates_scored as u64;
        self.bound_pruned += stats.bound_pruned as u64;
        if stats.cap_hit {
            self.cap_hits += 1;
        }
        if stats.full_scan {
            self.full_scans += 1;
        }
    }

    /// Add another window's counters into this one.
    pub fn merge(&mut self, other: &MetadataCounters) {
        self.queries += other.queries;
        self.candidates_retrieved += other.candidates_retrieved;
        self.candidates_scored += other.candidates_scored;
        self.bound_pruned += other.bound_pruned;
        self.cap_hits += other.cap_hits;
        self.full_scans += other.full_scans;
    }
}

/// The rolling aggregate of what the budgeted discovery stage actually did:
/// per-leg counters plus per-engine latency histograms. `LakeIndex` owns
/// one and folds every budgeted query in; `Pipeline::telemetry()` hands out
/// snapshots.
///
/// ```
/// use std::time::Duration;
/// use dialite_discovery::{DiscoveryTelemetry, TopKStats};
///
/// let mut window_a = DiscoveryTelemetry::default();
/// window_a.record_topk(
///     &TopKStats { cache_hit: true, partitions_probed: 2, ..TopKStats::default() },
///     Duration::from_micros(120),
/// );
/// let mut window_b = DiscoveryTelemetry::default();
/// window_b.record_topk(&TopKStats::default(), Duration::from_micros(80));
///
/// // Windows merge into a fleet view; reset opens a fresh window.
/// window_a.merge(&window_b);
/// assert_eq!(window_a.topk.queries, 2);
/// assert_eq!(window_a.topk.partitions_probed, 2);
/// window_a.reset();
/// assert_eq!(window_a.topk.queries, 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiscoveryTelemetry {
    /// Planned joinable-leg counters.
    pub topk: TopKCounters,
    /// Capped SANTOS-leg counters.
    pub santos: SantosCounters,
    /// Capped metadata-leg counters (all zero unless the optional
    /// metadata leg is enabled).
    pub metadata: MetadataCounters,
    /// Joinable-leg query latency.
    pub joinable_latency: LatencyHistogram,
    /// SANTOS-leg query latency.
    pub santos_latency: LatencyHistogram,
    /// Metadata-leg query latency.
    pub metadata_latency: LatencyHistogram,
}

impl DiscoveryTelemetry {
    /// Fold one planned joinable query in.
    pub fn record_topk(&mut self, stats: &TopKStats, latency: Duration) {
        self.topk.record(stats);
        self.joinable_latency.record(latency);
    }

    /// Fold one capped SANTOS query in.
    pub fn record_santos(&mut self, stats: &SantosStats, latency: Duration) {
        self.santos.record(stats);
        self.santos_latency.record(latency);
    }

    /// Fold one capped metadata query in.
    pub fn record_metadata(&mut self, stats: &MetadataStats, latency: Duration) {
        self.metadata.record(stats);
        self.metadata_latency.record(latency);
    }

    /// Add another telemetry window into this one (counters sum, latency
    /// histograms concatenate). Merging is commutative up to counter
    /// arithmetic, so shard order does not matter.
    pub fn merge(&mut self, other: &DiscoveryTelemetry) {
        self.topk.merge(&other.topk);
        self.santos.merge(&other.santos);
        self.metadata.merge(&other.metadata);
        self.joinable_latency.merge(&other.joinable_latency);
        self.santos_latency.merge(&other.santos_latency);
        self.metadata_latency.merge(&other.metadata_latency);
    }

    /// Zero every counter and histogram — the start of a fresh window.
    pub fn reset(&mut self) {
        *self = DiscoveryTelemetry::default();
    }

    /// A compact human-readable report, the form the CLI and
    /// `exp_pipeline` print.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "joinable: {} queries ({} exact-path), cache hit rate {:.2}, \
             partitions {} probed / {} pruned, {} verified, \
             {} postings-skipped, {} early-terminated, \
             budget exhaustion rate {:.2}\n",
            self.topk.queries,
            self.topk.exact_path,
            self.topk.cache_hit_rate(),
            self.topk.partitions_probed,
            self.topk.partitions_pruned,
            self.topk.candidates_verified,
            self.topk.postings_skipped,
            self.topk.terminated_early,
            self.topk.budget_exhaustion_rate(),
        ));
        out.push_str(&format!(
            "  latency: {} (mean {:.0}us)\n",
            self.joinable_latency.render(),
            self.joinable_latency.mean_micros(),
        ));
        out.push_str(&format!(
            "santos: {} queries ({} full-scan), candidates {} retrieved / \
             {} scored / {} bound-pruned / {} typeless-pruned, {} cap-hits\n",
            self.santos.queries,
            self.santos.full_scans,
            self.santos.candidates_retrieved,
            self.santos.candidates_scored,
            self.santos.bound_pruned,
            self.santos.typeless_pruned,
            self.santos.cap_hits,
        ));
        out.push_str(&format!(
            "  latency: {} (mean {:.0}us)",
            self.santos_latency.render(),
            self.santos_latency.mean_micros(),
        ));
        if self.metadata.queries > 0 {
            out.push_str(&format!(
                "\nmetadata: {} queries ({} full-scan), candidates {} retrieved / \
                 {} scored / {} bound-pruned, {} cap-hits\n",
                self.metadata.queries,
                self.metadata.full_scans,
                self.metadata.candidates_retrieved,
                self.metadata.candidates_scored,
                self.metadata.bound_pruned,
                self.metadata.cap_hits,
            ));
            out.push_str(&format!(
                "  latency: {} (mean {:.0}us)",
                self.metadata_latency.render(),
                self.metadata_latency.mean_micros(),
            ));
        }
        out
    }

    /// The whole window as one JSON object — counters per leg plus each
    /// leg's latency percentiles ([`LatencyPercentiles::to_json`]). This is
    /// the machine-readable sibling of [`DiscoveryTelemetry::summary`],
    /// what `Pipeline::telemetry_json()` and the `dialite telemetry`
    /// subcommand emit. Merge shard windows first, then export: JSON rows
    /// are a terminal form, not mergeable.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"topk\":{{\"queries\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"exact_path\":{},\"partitions_probed\":{},\"partitions_pruned\":{},\
             \"candidates_verified\":{},\"terminated_early\":{},\
             \"budget_exhausted\":{},\"postings_skipped\":{}}},\
             \"santos\":{{\"queries\":{},\"candidates_retrieved\":{},\
             \"candidates_scored\":{},\"bound_pruned\":{},\"cap_hits\":{},\
             \"full_scans\":{},\"typeless_pruned\":{}}},\
             \"metadata\":{{\"queries\":{},\"candidates_retrieved\":{},\
             \"candidates_scored\":{},\"bound_pruned\":{},\"cap_hits\":{},\
             \"full_scans\":{}}},\
             \"joinable_latency\":{},\"santos_latency\":{},\
             \"metadata_latency\":{}}}",
            self.topk.queries,
            self.topk.cache_hits,
            self.topk.cache_misses,
            self.topk.exact_path,
            self.topk.partitions_probed,
            self.topk.partitions_pruned,
            self.topk.candidates_verified,
            self.topk.terminated_early,
            self.topk.budget_exhausted,
            self.topk.postings_skipped,
            self.santos.queries,
            self.santos.candidates_retrieved,
            self.santos.candidates_scored,
            self.santos.bound_pruned,
            self.santos.cap_hits,
            self.santos.full_scans,
            self.santos.typeless_pruned,
            self.metadata.queries,
            self.metadata.candidates_retrieved,
            self.metadata.candidates_scored,
            self.metadata.bound_pruned,
            self.metadata.cap_hits,
            self.metadata.full_scans,
            self.joinable_latency.percentiles().to_json(),
            self.santos_latency.percentiles().to_json(),
            self.metadata_latency.percentiles().to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topk_stats(probed: usize, verified: usize) -> TopKStats {
        TopKStats {
            cache_hit: false,
            exact_path: false,
            partitions_probed: probed,
            partitions_pruned: 1,
            candidates_verified: verified,
            terminated_early: probed > 1,
            budget_exhausted: false,
            postings_skipped: probed * 2,
        }
    }

    #[test]
    fn histogram_buckets_by_decade_and_tracks_mean() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_micros(3)); // <10us
        h.record(Duration::from_micros(50)); // <100us
        h.record(Duration::from_micros(999)); // <1ms
        h.record(Duration::from_millis(5)); // <10ms
        h.record(Duration::from_secs(2)); // >=1s
        assert_eq!(h.buckets, [1, 1, 1, 1, 0, 0, 1]);
        assert_eq!(h.samples, 5);
        let mean = h.mean_micros();
        assert!((mean - (3 + 50 + 999 + 5_000 + 2_000_000) as f64 / 5.0).abs() < 1e-9);
        assert!(h.render().contains("<10us:1"));
        assert!(h.render().contains(">=1s:1"));
    }

    #[test]
    fn record_classifies_cache_and_exact_paths() {
        let mut t = DiscoveryTelemetry::default();
        t.record_topk(
            &TopKStats {
                cache_hit: true,
                ..TopKStats::default()
            },
            Duration::from_micros(1),
        );
        t.record_topk(&TopKStats::default(), Duration::from_micros(1));
        t.record_topk(
            &TopKStats {
                exact_path: true,
                ..TopKStats::default()
            },
            Duration::from_micros(1),
        );
        assert_eq!(t.topk.queries, 3);
        assert_eq!(t.topk.cache_hits, 1);
        assert_eq!(t.topk.cache_misses, 1);
        assert_eq!(t.topk.exact_path, 1);
        // Exact-path queries do no sketch work, so they stay out of the
        // cache hit rate denominator.
        assert!((t.topk.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = DiscoveryTelemetry::default();
        a.record_topk(&topk_stats(3, 7), Duration::from_micros(30));
        a.record_santos(
            &SantosStats {
                candidates_retrieved: 10,
                candidates_scored: 4,
                bound_pruned: 6,
                cap_hit: true,
                full_scan: false,
                typeless_pruned: 2,
            },
            Duration::from_micros(500),
        );
        let mut b = DiscoveryTelemetry::default();
        b.record_topk(&topk_stats(1, 2), Duration::from_micros(70));

        let mut merged_ab = a.clone();
        merged_ab.merge(&b);
        let mut merged_ba = b.clone();
        merged_ba.merge(&a);
        assert_eq!(merged_ab, merged_ba, "merge must be commutative");

        assert_eq!(merged_ab.topk.queries, 2);
        assert_eq!(merged_ab.topk.partitions_probed, 4);
        assert_eq!(merged_ab.topk.candidates_verified, 9);
        assert_eq!(merged_ab.topk.terminated_early, 1);
        assert_eq!(merged_ab.topk.postings_skipped, 8);
        assert_eq!(merged_ab.santos.candidates_retrieved, 10);
        assert_eq!(merged_ab.santos.cap_hits, 1);
        assert_eq!(merged_ab.santos.typeless_pruned, 2);
        assert_eq!(merged_ab.joinable_latency.samples, 2);
        assert_eq!(merged_ab.joinable_latency.total_micros, 100);
    }

    #[test]
    fn reset_opens_a_fresh_window() {
        let mut t = DiscoveryTelemetry::default();
        t.record_topk(&topk_stats(2, 5), Duration::from_micros(10));
        t.record_santos(&SantosStats::default(), Duration::from_micros(10));
        assert_ne!(t, DiscoveryTelemetry::default());
        t.reset();
        assert_eq!(t, DiscoveryTelemetry::default());
    }

    #[test]
    fn rates_are_zero_on_empty_windows_not_nan() {
        let t = DiscoveryTelemetry::default();
        assert_eq!(t.topk.cache_hit_rate(), 0.0);
        assert_eq!(t.topk.budget_exhaustion_rate(), 0.0);
        assert_eq!(t.joinable_latency.mean_micros(), 0.0);
        assert!(!t.summary().is_empty());
    }

    /// The decade bucket that holds a sample — the resolution bound the
    /// percentile tests assert within.
    fn bucket_bounds(us: u64) -> (f64, f64) {
        let slot = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us < b)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_US.len());
        let lo = if slot == 0 {
            0.0
        } else {
            LATENCY_BUCKET_BOUNDS_US[slot - 1] as f64
        };
        let hi = LATENCY_BUCKET_BOUNDS_US
            .get(slot)
            .map(|&b| b as f64)
            .unwrap_or(f64::INFINITY);
        (lo, hi)
    }

    #[test]
    fn percentiles_of_known_samples_land_in_the_right_bucket() {
        // 1000 samples: 500 at ~50us, 400 at ~500us, 90 at ~5ms, 9 at
        // ~50ms, 1 at ~500ms → true p50=50us, p90=500us, p99=5ms,
        // p999=50ms. Each export must land within the decade bucket of the
        // true value (one-bucket error bound).
        let mut h = LatencyHistogram::default();
        let spec: &[(u64, usize)] = &[
            (50, 500),
            (500, 400),
            (5_000, 90),
            (50_000, 9),
            (500_000, 1),
        ];
        for &(us, n) in spec {
            for _ in 0..n {
                h.record(Duration::from_micros(us));
            }
        }
        assert_eq!(h.samples, 1000);
        for (q, true_us) in [(0.50, 50u64), (0.90, 500), (0.99, 5_000), (0.999, 50_000)] {
            let got = h.percentile(q).unwrap();
            let (lo, hi) = bucket_bounds(true_us);
            assert!(
                got >= lo && got < hi,
                "p{q}: got {got}us, want within [{lo}, {hi}) around {true_us}us"
            );
        }
        // The snapshot form agrees with the direct calls.
        let p = h.percentiles();
        assert_eq!(p.p50_us, h.percentile(0.50));
        assert_eq!(p.p999_us, h.percentile(0.999));
        assert_eq!(p.samples, 1000);
        assert!(p.render().contains("n=1000"));
    }

    #[test]
    fn percentile_interpolates_within_a_bucket() {
        // All 10 samples in the [100us, 1ms) bucket: ranks interpolate
        // linearly across the bucket, so p50 sits mid-bucket, well below
        // p99 — the export is not just the bucket edge.
        let mut h = LatencyHistogram::default();
        for _ in 0..10 {
            h.record(Duration::from_micros(300));
        }
        let p50 = h.percentile(0.50).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(
            (100.0..1_000.0).contains(&p50) && (100.0..1_000.0).contains(&p99),
            "both within the bucket: p50={p50} p99={p99}"
        );
        assert!(p50 < p99, "ranks must order within the bucket");
    }

    #[test]
    fn percentile_merge_of_shards_equals_concatenated_samples() {
        // Split one sample stream across 3 "shard" histograms; merging the
        // shard snapshots must reproduce the concatenated histogram (and
        // therefore identical percentile exports).
        let samples: Vec<u64> = (0..300).map(|i| (i * 37) % 20_000 + 3).collect();
        let mut whole = LatencyHistogram::default();
        let mut shards = vec![LatencyHistogram::default(); 3];
        for (i, &us) in samples.iter().enumerate() {
            whole.record(Duration::from_micros(us));
            shards[i % 3].record(Duration::from_micros(us));
        }
        let mut merged = LatencyHistogram::default();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged, whole, "merge must equal the concatenated stream");
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(merged.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn empty_histogram_exports_none_not_zero_or_nan() {
        let h = LatencyHistogram::default();
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.percentile(q), None, "q={q}");
        }
        let p = h.percentiles();
        assert_eq!(p.p50_us, None);
        assert_eq!(p.p999_us, None);
        assert_eq!(p.samples, 0);
        assert!(p.render().contains('-'), "{}", p.render());
        // Out-of-range quantiles are None even on non-empty windows.
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_micros(5));
        assert_eq!(h.percentile(-0.1), None);
        assert_eq!(h.percentile(1.5), None);
        assert!(h.percentile(1.0).is_some());
    }

    #[test]
    fn unbounded_tail_bucket_reports_its_lower_bound() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_secs(30));
        assert_eq!(h.percentile(0.5), Some(1_000_000.0));
    }

    #[test]
    fn sharded_snapshot_equals_serial_window() {
        let sharded = ShardedTelemetry::default();
        let mut serial = DiscoveryTelemetry::default();
        for i in 0..20 {
            let stats = topk_stats(i % 3, i % 5);
            sharded.record_topk(&stats, Duration::from_micros(i as u64));
            serial.record_topk(&stats, Duration::from_micros(i as u64));
        }
        sharded.record_santos(&SantosStats::default(), Duration::from_micros(7));
        serial.record_santos(&SantosStats::default(), Duration::from_micros(7));
        assert_eq!(sharded.snapshot(), serial);
        sharded.reset();
        assert_eq!(sharded.snapshot(), DiscoveryTelemetry::default());
    }

    #[test]
    fn metadata_leg_records_merges_and_exports() {
        let mut a = DiscoveryTelemetry::default();
        a.record_metadata(
            &MetadataStats {
                candidates_retrieved: 12,
                candidates_scored: 5,
                bound_pruned: 7,
                cap_hit: true,
                full_scan: false,
            },
            Duration::from_micros(40),
        );
        let mut b = DiscoveryTelemetry::default();
        b.record_metadata(&MetadataStats::default(), Duration::from_micros(60));
        a.merge(&b);
        assert_eq!(a.metadata.queries, 2);
        assert_eq!(a.metadata.candidates_retrieved, 12);
        assert_eq!(a.metadata.bound_pruned, 7);
        assert_eq!(a.metadata.cap_hits, 1);
        assert_eq!(a.metadata_latency.samples, 2);
        assert_eq!(a.metadata_latency.total_micros, 100);
        assert!(a.summary().contains("metadata: 2 queries"));
        let json = a.to_json();
        assert!(
            json.contains("\"metadata\":{\"queries\":2"),
            "missing metadata block:\n{json}"
        );
        assert!(
            json.contains("\"metadata_latency\":{\"samples\":2"),
            "missing metadata latency:\n{json}"
        );
        // The sharded accumulator routes the metadata leg too.
        let sharded = ShardedTelemetry::default();
        sharded.record_metadata(&MetadataStats::default(), Duration::from_micros(9));
        assert_eq!(sharded.snapshot().metadata.queries, 1);
    }

    #[test]
    fn json_export_carries_counters_and_null_percentiles() {
        let mut t = DiscoveryTelemetry::default();
        t.record_topk(&topk_stats(3, 7), Duration::from_micros(250));
        let json = t.to_json();
        for needle in [
            "\"topk\":{\"queries\":1",
            "\"partitions_probed\":3",
            "\"candidates_verified\":7",
            "\"santos\":{\"queries\":0",
            "\"joinable_latency\":{\"samples\":1",
            // The santos leg saw nothing: its percentiles must be JSON
            // null, not 0 (the empty-window contract survives export).
            "\"santos_latency\":{\"samples\":0,\"mean_us\":0.0,\"p50_us\":null",
        ] {
            assert!(json.contains(needle), "missing {needle}:\n{json}");
        }
        // Valid-JSON smoke: balanced braces, no trailing commas.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(!json.contains(",}"), "{json}");
    }

    #[test]
    fn summary_mentions_the_headline_fields() {
        let mut t = DiscoveryTelemetry::default();
        t.record_topk(&topk_stats(2, 5), Duration::from_micros(10));
        let s = t.summary();
        for needle in ["cache hit rate", "pruned", "budget exhaustion", "santos"] {
            assert!(s.contains(needle), "summary missing {needle}:\n{s}");
        }
    }
}
