//! # dialite-discovery
//!
//! The **Discover** stage of DIALITE (paper §2.1): given a query table `Q`
//! and a data lake `D`, find tables that are *unionable*, *joinable* or
//! simply similar to `Q`, returning an integration set for ALITE.
//!
//! Five search engines implement the common [`Discovery`] trait:
//!
//! * [`SantosDiscovery`] — semantic **union** search in the style of SANTOS
//!   (Khatiwada et al., SIGMOD 2023): columns are annotated with semantic
//!   types from a knowledge base and column *pairs* with relationships; a
//!   query's semantic graph (a star around the intent column) is matched
//!   against indexed tables. When KB coverage is thin, a synthesized signal
//!   (direct domain overlap mined from the lake itself) fills in — the
//!   reproduction's laptop-scale stand-in for SANTOS's synthesized KB
//!   (DESIGN.md §1).
//! * [`LshEnsembleDiscovery`] — **joinable** search over MinHash sketches
//!   using the LSH Ensemble containment index (Zhu et al., VLDB 2016), with
//!   exact containment verification of candidates.
//! * [`ExactOverlapDiscovery`] — exact top-k overlap search over an inverted
//!   token index (JOSIE-shaped, without the cost-based posting-list
//!   scheduling that internet-scale lakes need — documented simplification).
//! * [`MetadataDiscovery`] — **metadata-aware** search over column headers
//!   (cf. TableNet): header tokens are interned in a shared [`StringPool`]
//!   behind an inverted header-token index, answering "find tables
//!   annotated like this" probes with the same best-bound-first capped
//!   retrieval contract as the SANTOS leg. Off by default; enabled through
//!   [`LakeIndexConfig::metadata`].
//! * [`SimilarityDiscovery`] — the user-defined extension point of paper
//!   Fig. 4: any `Fn(&Table, &Table) -> f64` becomes a discovery algorithm.
//!
//! Results from several engines are merged with [`union_integration_set`],
//! mirroring the demo's "persist the set of tables found by all techniques
//! to form an integration set".
//!
//! For *mutable* lakes, [`LakeIndex`] wraps the SANTOS-style and LSH
//! Ensemble engines behind one churn-safe maintenance point: it follows
//! the lake changelog (`DataLake::events_since`) and applies each
//! add/replace/remove with `O(changed tables)` work instead of rebuilding,
//! staying exactly equivalent to a fresh build (see
//! `tests/incremental_oracle.rs`).
//!
//! The discovery hot path is served by [`TopKPlanner`], the budgeted top-k
//! query engine over the LSH index: cached query-column signatures, a
//! best-bound-first partition schedule with provable early termination,
//! and a JOSIE-style cost-bounded posting search (`cost`) that answers
//! small-to-mid queries exactly — cheapest posting lists first, stopping
//! when the residual lists provably cannot lift any unseen candidate past
//! the k-th verified score, under the [`QueryBudget`] `postings` cap.
//! [`LakeIndex::discover_top_k`] exposes it, and with an unlimited
//! [`QueryBudget`] it returns exactly the probe-all results.
//!
//! The whole discovery *stage* is budgeted through [`DiscoveryBudget`]:
//! [`LakeIndex::discover_all_budgeted`] routes the joinable leg through
//! the planner and the SANTOS leg through its capped, bound-ranked
//! candidate retrieval ([`SantosDiscovery::discover_capped`]), and every
//! budgeted query folds its stats into the index's rolling
//! [`DiscoveryTelemetry`] (cache hit rate, partitions pruned,
//! verifications, budget-exhaustion rate, per-engine latency buckets).
//!
//! At lake scale the index itself shards: [`ShardedLakeIndex`] stripes
//! the slot space across N scoped [`LakeIndex`] shards (routing in
//! [`ShardRouter`]), fans queries out on scoped threads with per-shard
//! [`QueryBudget::split`] budget slices, re-ranks per-shard top-k with
//! [`top_k_discovered`] and merges per-shard telemetry with
//! [`DiscoveryTelemetry::merge`] — `shards == 1` stays byte-for-byte the
//! single index (see `tests/shard_oracle.rs`).

#![deny(missing_docs)]

mod cost;
mod custom;
mod index;
mod lshe;
mod metadata;
mod overlap;
mod pool;
mod santos;
mod serving;
mod shard;
mod telemetry;
mod topk;
mod types;

pub use custom::SimilarityDiscovery;
pub use index::{LakeIndex, LakeIndexConfig};
pub use lshe::{LshEnsembleConfig, LshEnsembleDiscovery};
pub use metadata::{MetadataConfig, MetadataDiscovery, MetadataStats};
pub use overlap::ExactOverlapDiscovery;
pub use pool::{StringPool, POOL_ID_DROPPED};
pub use santos::{SantosConfig, SantosDiscovery, SantosStats};
pub use serving::{
    DiscoveryService, ServingConfig, ServingError, ServingResponse, ServingTelemetry,
};
pub use shard::{ShardRouter, ShardScope, ShardedLakeIndex};
pub use telemetry::{
    DiscoveryTelemetry, LatencyHistogram, LatencyPercentiles, MetadataCounters, SantosCounters,
    ShardedTelemetry, TopKCounters, LATENCY_BUCKET_BOUNDS_US,
};
pub use topk::{DiscoveryBudget, QueryBudget, TopKPlanner, TopKStats, DEFAULT_SIGNATURE_CACHE};
pub use types::{
    merge_best_scores, top_k_discovered, union_integration_set, Discovered, Discovery, TableQuery,
};
