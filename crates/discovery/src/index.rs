//! `LakeIndex`: churn-safe discovery over a mutable [`DataLake`].
//!
//! Discovery engines are expensive to build (annotate every table, hash
//! every column domain) but open-data lakes churn: tables are added,
//! corrected and withdrawn while query traffic keeps flowing. A
//! [`LakeIndex`] wraps the SANTOS-style and LSH Ensemble engines behind
//! one maintenance point: [`LakeIndex::sync`] reads the lake changelog
//! ([`DataLake::events_since`]) and applies each delta with
//! `O(changed tables)` work — interning new tokens into the existing
//! `StringPool`, retiring dead `(table_slot, col)` domain keys, staging
//! ensemble inserts — falling back to a full rebuild only when the index
//! is further behind than the bounded changelog reaches (or when handed an
//! older lineage of the lake).
//!
//! Consistency contract, pinned by `tests/incremental_oracle.rs`: after
//! `sync`, discovery output is equivalent to a fresh build over the lake's
//! current state — exactly equal for the SANTOS engine and for the LSH
//! engine's exact-verification semantics; the sketch candidate path
//! additionally guarantees that domains staged since the last partition
//! rebalance are exact-scanned, so fresh churn is never a false negative.

use std::sync::Arc;
use std::time::Instant;

use dialite_kb::KnowledgeBase;
use dialite_minhash::SketchSnapshot;
use dialite_table::{DataLake, LakeEvent};

use crate::lshe::{LshEnsembleConfig, LshEnsembleDiscovery};
use crate::metadata::{MetadataConfig, MetadataDiscovery};
use crate::santos::{SantosConfig, SantosDiscovery};
use crate::shard::ShardScope;
use crate::telemetry::{DiscoveryTelemetry, ShardedTelemetry};
use crate::topk::{DiscoveryBudget, QueryBudget, TopKPlanner, TopKStats};
use crate::types::{top_k, Discovered, Discovery, TableQuery};

/// Configuration of the wrapped engines.
#[derive(Debug, Clone, Default)]
pub struct LakeIndexConfig {
    /// SANTOS-style semantic union search.
    pub santos: SantosConfig,
    /// LSH Ensemble joinable search.
    pub lshe: LshEnsembleConfig,
    /// Optional metadata (header-match) leg. `None` (the default) leaves
    /// the index exactly two-legged — existing engine-order contracts are
    /// untouched; `Some` appends a third `"metadata"` leg maintained
    /// through the same sync/churn machinery.
    pub metadata: Option<MetadataConfig>,
}

/// The maintained discovery index over a mutable lake. Build once, then
/// [`sync`](LakeIndex::sync) after lake mutations; queries run against the
/// engines as of the last sync.
///
/// ```
/// use std::sync::Arc;
/// use dialite_discovery::{Discovery, LakeIndex, LakeIndexConfig, TableQuery};
/// use dialite_kb::curated::covid_kb;
/// use dialite_table::fixtures;
///
/// let mut lake = fixtures::covid_lake();
/// let mut index = LakeIndex::build(&lake, Arc::new(covid_kb()), LakeIndexConfig::default());
///
/// // The lake churns; one sync applies just the delta.
/// lake.remove("animals").unwrap();
/// index.sync(&lake);
/// assert!(index.is_current(&lake));
///
/// let query = TableQuery::with_column(fixtures::fig2_query(), 1); // City
/// let hits = index.discover(&query, 5);
/// assert!(hits.iter().any(|d| d.table == "T3"));
/// ```
pub struct LakeIndex {
    kb: Arc<KnowledgeBase>,
    config: LakeIndexConfig,
    santos: SantosDiscovery,
    lshe: LshEnsembleDiscovery,
    /// The optional metadata (header-match) leg, present only when the
    /// config enables it.
    metadata: Option<MetadataDiscovery>,
    /// Budget-aware top-k planning over the LSH engine; holds the query
    /// signature cache, which stays warm across syncs and even rebuilds
    /// (cache entries are content-addressed, not version-addressed).
    planner: TopKPlanner,
    /// Rolling aggregate of what budgeted queries actually did. Sharded:
    /// queries run under `&self` from many serving threads at once, and a
    /// single `Mutex` here was the one point every concurrent query
    /// serialized on — each thread now records into its own shard and
    /// [`LakeIndex::telemetry`] merges on demand.
    telemetry: ShardedTelemetry,
    /// The slot stripe this index owns (all slots for a standalone index;
    /// one stripe when the index is a shard of a
    /// [`ShardedLakeIndex`](crate::ShardedLakeIndex)). Both the build and
    /// every changelog replay are filtered through it.
    scope: ShardScope,
    /// Lake version the engines reflect.
    synced: u64,
}

impl LakeIndex {
    /// Build both engines over the lake's current state.
    pub fn build(lake: &DataLake, kb: Arc<KnowledgeBase>, config: LakeIndexConfig) -> LakeIndex {
        LakeIndex::build_scoped(lake, kb, config, ShardScope::all())
    }

    /// Build both engines over one shard's stripe of the lake. The index
    /// behaves exactly like [`LakeIndex::build`] over a lake containing
    /// only the admitted slots: [`sync`](LakeIndex::sync) replays the
    /// changelog filtered to the stripe (and a forced rebuild re-applies
    /// the same scope), so the incremental contract carries over per
    /// shard. [`ShardScope::all`] reproduces the unscoped build.
    pub fn build_scoped(
        lake: &DataLake,
        kb: Arc<KnowledgeBase>,
        config: LakeIndexConfig,
        scope: ShardScope,
    ) -> LakeIndex {
        LakeIndex {
            santos: SantosDiscovery::build_scoped(lake, kb.clone(), config.santos.clone(), scope),
            lshe: LshEnsembleDiscovery::build_scoped(lake, config.lshe.clone(), scope),
            metadata: config
                .metadata
                .clone()
                .map(|mc| MetadataDiscovery::build_scoped(lake, mc, scope)),
            planner: TopKPlanner::new(),
            telemetry: ShardedTelemetry::default(),
            kb,
            config,
            scope,
            synced: lake.version(),
        }
    }

    /// Like [`LakeIndex::build_scoped`], but warm-start the LSH engine
    /// from persisted MinHash sketches (see
    /// [`LshEnsembleDiscovery::build_scoped_warm`]). The SANTOS engine and
    /// the exact verification structures are always rebuilt from the lake;
    /// only the MinHash pass is skipped where the snapshot covers it.
    pub fn build_scoped_warm(
        lake: &DataLake,
        kb: Arc<KnowledgeBase>,
        config: LakeIndexConfig,
        scope: ShardScope,
        sketches: &SketchSnapshot,
    ) -> LakeIndex {
        LakeIndex {
            santos: SantosDiscovery::build_scoped(lake, kb.clone(), config.santos.clone(), scope),
            lshe: LshEnsembleDiscovery::build_scoped_warm(
                lake,
                config.lshe.clone(),
                scope,
                sketches,
            ),
            metadata: config
                .metadata
                .clone()
                .map(|mc| MetadataDiscovery::build_scoped(lake, mc, scope)),
            planner: TopKPlanner::new(),
            telemetry: ShardedTelemetry::default(),
            kb,
            config,
            scope,
            synced: lake.version(),
        }
    }

    /// Export the LSH engine's domain sketches for durable snapshotting.
    pub fn export_sketches(&self) -> SketchSnapshot {
        self.lshe.export_sketches()
    }

    /// MinHash signatures this index's hash family has computed so far —
    /// the work a warm start keeps proportional to the replayed tail.
    pub fn sketch_work(&self) -> u64 {
        self.lshe.sketch_work()
    }

    /// The slot stripe this index covers ([`ShardScope::all`] unless it
    /// was built as a shard via [`LakeIndex::build_scoped`]).
    pub fn scope(&self) -> ShardScope {
        self.scope
    }

    /// The lake version this index reflects.
    pub fn version(&self) -> u64 {
        self.synced
    }

    /// The knowledge base the SANTOS engine annotates with — what a
    /// verifier needs to rebuild an equivalent index from scratch.
    pub fn kb(&self) -> Arc<KnowledgeBase> {
        Arc::clone(&self.kb)
    }

    /// The configuration both engines were built with.
    pub fn config(&self) -> &LakeIndexConfig {
        &self.config
    }

    /// `true` when the index reflects the lake's current version.
    pub fn is_current(&self, lake: &DataLake) -> bool {
        self.synced == lake.version()
    }

    /// Catch up with the lake. Applies the changelog delta-by-delta when
    /// possible (`O(changed tables)`); rebuilds from scratch when the lake
    /// cannot serve the delta — the index trails the bounded changelog, or
    /// the lake is a *different lineage* (a clone that forked before or
    /// after the index's sync point; `events_since` detects both because
    /// version stamps are globally unique to the history that minted them).
    pub fn sync(&mut self, lake: &DataLake) {
        if self.is_current(lake) {
            return;
        }
        let Some(events) = lake.events_since(self.synced) else {
            // Full rebuild — but carry the planner across (its cached
            // signatures are keyed on content + hash-family identity, so
            // they stay valid for the rebuilt engine — same config) and
            // the telemetry window (a rebuild is maintenance, not a
            // reason to lose the observation history).
            let planner = std::mem::take(&mut self.planner);
            let telemetry = self.telemetry.snapshot();
            *self = LakeIndex::build_scoped(lake, self.kb.clone(), self.config.clone(), self.scope);
            self.planner = planner;
            self.telemetry.restore(telemetry);
            return;
        };
        for (_, event) in events {
            let slot = event.slot();
            // Slots outside this index's stripe belong to other shards;
            // their events are not ours to apply.
            if !self.scope.admits(slot) {
                continue;
            }
            match (event, lake.table_at(slot)) {
                // The slot's *current* content is what matters: later
                // events for the same slot re-apply it idempotently.
                (LakeEvent::Added(_) | LakeEvent::Replaced(_), Some(table)) => {
                    self.santos.upsert_table(slot, table);
                    self.lshe.upsert_table(slot, table);
                    if let Some(metadata) = &mut self.metadata {
                        metadata.upsert_table(slot, table);
                    }
                }
                _ => {
                    self.santos.remove_table(slot);
                    self.lshe.remove_table(slot);
                    if let Some(metadata) = &mut self.metadata {
                        metadata.remove_table(slot);
                    }
                }
            }
        }
        self.synced = lake.version();
    }

    /// Per-engine discovery results, in the pipeline's engine order —
    /// the same shape `Pipeline` reports for independently built engines.
    ///
    /// This is the legacy **probe-all** stage: no planner, no caps, no
    /// telemetry. It survives as the equivalence oracle the budgeted path
    /// is pinned against (`crates/core/tests/pipeline_oracle.rs`);
    /// production callers go through
    /// [`LakeIndex::discover_all_budgeted`].
    pub fn discover_all(&self, query: &TableQuery, k: usize) -> Vec<(String, Vec<Discovered>)> {
        let mut legs = vec![
            (
                self.santos.name().to_string(),
                self.santos.discover(query, k),
            ),
            (self.lshe.name().to_string(), self.lshe.discover(query, k)),
        ];
        if let Some(metadata) = &self.metadata {
            legs.push((metadata.name().to_string(), metadata.discover(query, k)));
        }
        legs
    }

    /// The budgeted discovery stage: the SANTOS leg under the budget's
    /// candidate cap, the joinable leg through the [`TopKPlanner`] under
    /// the budget's [`QueryBudget`], and — when enabled — the metadata
    /// leg under its own candidate cap. Same per-engine shape and order as
    /// [`LakeIndex::discover_all`], and byte-identical output to it under
    /// [`DiscoveryBudget::unlimited`]. Every call folds its per-query
    /// stats and latency into the index's [`DiscoveryTelemetry`].
    pub fn discover_all_budgeted(
        &self,
        query: &TableQuery,
        k: usize,
        budget: &DiscoveryBudget,
    ) -> Vec<(String, Vec<Discovered>)> {
        let santos_t0 = Instant::now();
        let (santos_hits, santos_stats) =
            self.santos
                .discover_capped(query, k, budget.santos_candidates);
        let santos_elapsed = santos_t0.elapsed();
        let join_t0 = Instant::now();
        let (join_hits, join_stats) =
            self.planner
                .discover_top_k_with_stats(&self.lshe, query, k, &budget.joinable);
        let join_elapsed = join_t0.elapsed();
        self.telemetry.record_santos(&santos_stats, santos_elapsed);
        self.telemetry.record_topk(&join_stats, join_elapsed);
        let mut legs = vec![
            (self.santos.name().to_string(), santos_hits),
            (self.lshe.name().to_string(), join_hits),
        ];
        if let Some(metadata) = &self.metadata {
            let meta_t0 = Instant::now();
            let (meta_hits, meta_stats) =
                metadata.discover_capped(query, k, budget.metadata_candidates);
            self.telemetry
                .record_metadata(&meta_stats, meta_t0.elapsed());
            legs.push((metadata.name().to_string(), meta_hits));
        }
        legs
    }

    /// A snapshot of the rolling [`DiscoveryTelemetry`] this index has
    /// accumulated across budgeted queries (it survives syncs and even
    /// full rebuilds). Pair with [`LakeIndex::reset_telemetry`] for
    /// non-overlapping scrape windows.
    pub fn telemetry(&self) -> DiscoveryTelemetry {
        self.telemetry.snapshot()
    }

    /// Zero the rolling telemetry window.
    pub fn reset_telemetry(&self) {
        self.telemetry.reset();
    }

    /// Budgeted top-k joinable search over the LSH engine, planned by the
    /// index's [`TopKPlanner`]: cached query signatures, best-bound-first
    /// partition probing with early termination, posting-list
    /// verification. With an unlimited budget the results equal the
    /// probe-all `lshe().discover(query, k)` exactly.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use dialite_discovery::{LakeIndex, LakeIndexConfig, QueryBudget, TableQuery};
    /// use dialite_kb::curated::covid_kb;
    /// use dialite_table::fixtures;
    ///
    /// let lake = fixtures::covid_lake();
    /// let index = LakeIndex::build(&lake, Arc::new(covid_kb()), LakeIndexConfig::default());
    /// let query = TableQuery::with_column(fixtures::fig2_query(), 1); // City
    /// let hits = index.discover_top_k(&query, 3, &QueryBudget::unlimited());
    /// assert_eq!(hits[0].table, "T3"); // joins on City at containment 2/3
    /// ```
    pub fn discover_top_k(
        &self,
        query: &TableQuery,
        k: usize,
        budget: &QueryBudget,
    ) -> Vec<Discovered> {
        self.discover_top_k_with_stats(query, k, budget).0
    }

    /// [`LakeIndex::discover_top_k`] plus the per-query [`TopKStats`].
    /// Like every budgeted entry point, the stats (and the measured
    /// latency) are also folded into the index's rolling telemetry.
    pub fn discover_top_k_with_stats(
        &self,
        query: &TableQuery,
        k: usize,
        budget: &QueryBudget,
    ) -> (Vec<Discovered>, TopKStats) {
        let t0 = Instant::now();
        let (hits, stats) = self
            .planner
            .discover_top_k_with_stats(&self.lshe, query, k, budget);
        self.telemetry.record_topk(&stats, t0.elapsed());
        (hits, stats)
    }

    /// The planner (and its signature cache) behind
    /// [`LakeIndex::discover_top_k`].
    pub fn planner(&self) -> &TopKPlanner {
        &self.planner
    }

    /// The wrapped SANTOS-style engine.
    pub fn santos(&self) -> &SantosDiscovery {
        &self.santos
    }

    /// The wrapped LSH Ensemble engine.
    pub fn lshe(&self) -> &LshEnsembleDiscovery {
        &self.lshe
    }

    /// The optional metadata (header-match) engine, `Some` only when
    /// [`LakeIndexConfig::metadata`] enabled it.
    pub fn metadata(&self) -> Option<&MetadataDiscovery> {
        self.metadata.as_ref()
    }
}

impl Discovery for LakeIndex {
    fn name(&self) -> &str {
        "lake-index"
    }

    /// Union of both engines' results; a table found by both keeps its
    /// best score (NaN-safe: a degenerate score propagates rather than
    /// being replaced by an invented one).
    fn discover(&self, query: &TableQuery, k: usize) -> Vec<Discovered> {
        let mut best: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
        for (_, hits) in self.discover_all(query, k) {
            crate::types::merge_best_scores(&mut best, hits);
        }
        top_k(
            best.into_iter()
                .map(|(table, score)| Discovered { table, score })
                .collect(),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_kb::curated::covid_kb;
    use dialite_table::table;

    fn demo_lake() -> DataLake {
        DataLake::from_tables([
            table! {
                "cases_by_city"; ["city", "rate"];
                ["berlin", 1], ["barcelona", 2], ["boston", 3], ["madrid", 4],
            },
            table! {
                "noise"; ["animal"];
                ["cat"], ["dog"],
            },
        ])
        .unwrap()
    }

    fn query() -> TableQuery {
        TableQuery::with_column(
            table! {
                "Q"; ["City"];
                ["berlin"], ["barcelona"], ["boston"], ["madrid"],
            },
            0,
        )
    }

    fn build(lake: &DataLake) -> LakeIndex {
        LakeIndex::build(lake, Arc::new(covid_kb()), LakeIndexConfig::default())
    }

    #[test]
    fn build_reports_both_engines() {
        let lake = demo_lake();
        let index = build(&lake);
        assert!(index.is_current(&lake));
        let all = index.discover_all(&query(), 5);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "santos");
        assert_eq!(all[1].0, "lsh-ensemble");
        assert!(all[1].1.iter().any(|d| d.table == "cases_by_city"));
    }

    #[test]
    fn metadata_leg_is_config_gated_and_syncs_with_churn() {
        let mut lake = demo_lake();
        let config = LakeIndexConfig {
            metadata: Some(MetadataConfig::default()),
            ..LakeIndexConfig::default()
        };
        let mut index = LakeIndex::build(&lake, Arc::new(covid_kb()), config.clone());
        let q = TableQuery::new(table! { "HQ"; ["city", "rate"]; ["x", 1] });
        let all = index.discover_all(&q, 5);
        assert_eq!(all.len(), 3, "metadata appends a third leg");
        assert_eq!(all[2].0, "metadata");
        assert!(all[2].1.iter().any(|d| d.table == "cases_by_city"));

        // Churn flows through sync into the metadata leg too.
        lake.add(table! { "city_pop"; ["city", "rate"]; ["lima", 9] })
            .unwrap();
        lake.remove("cases_by_city").unwrap();
        index.sync(&lake);
        let budgeted = index.discover_all_budgeted(&q, 5, &DiscoveryBudget::unlimited());
        assert_eq!(budgeted[2].0, "metadata");
        assert!(budgeted[2].1.iter().any(|d| d.table == "city_pop"));
        assert!(budgeted[2].1.iter().all(|d| d.table != "cases_by_city"));
        assert_eq!(index.telemetry().metadata.queries, 1);
        assert_eq!(index.telemetry().metadata.full_scans, 1);

        // A diverged lineage forces a rebuild; the metadata leg must
        // survive it (the config carries across).
        let fresh = LakeIndex::build(&lake, Arc::new(covid_kb()), config);
        assert_eq!(
            fresh.discover_all(&q, 5),
            index.discover_all(&q, 5),
            "synced metadata leg must answer like a rebuild"
        );
        assert!(index.metadata().is_some());
    }

    #[test]
    fn sync_is_a_noop_when_current() {
        let lake = demo_lake();
        let mut index = build(&lake);
        let v = index.version();
        index.sync(&lake);
        assert_eq!(index.version(), v);
    }

    #[test]
    fn sync_applies_adds_removes_and_replaces() {
        let mut lake = demo_lake();
        let mut index = build(&lake);

        lake.add(table! {
            "more_cities"; ["place"];
            ["berlin"], ["barcelona"], ["boston"], ["madrid"], ["mumbai"],
        })
        .unwrap();
        lake.remove("cases_by_city").unwrap();
        lake.upsert(table! { "noise"; ["animal"]; ["emu"] });
        index.sync(&lake);
        assert!(index.is_current(&lake));

        let hits = index.discover(&query(), 5);
        assert!(hits.iter().any(|d| d.table == "more_cities"), "{hits:?}");
        assert!(
            hits.iter().all(|d| d.table != "cases_by_city"),
            "removed table must vanish: {hits:?}"
        );
        assert_eq!(index.santos().len(), lake.len());
    }

    #[test]
    fn sync_with_a_diverged_newer_clone_rebuilds_not_ghosts() {
        // Regression: fork the lake, advance the original, build the index
        // on the original, then diverge the clone past the index's sync
        // stamp. The clone's changelog does not contain the sync stamp, so
        // sync must rebuild — not splice the clone's tail events onto the
        // original's state and leave ghost tables behind.
        let a = demo_lake();
        let mut b = a.clone();
        let mut a = a;
        a.add(table! {
            "ghost_cities"; ["place"];
            ["berlin"], ["barcelona"], ["boston"], ["madrid"],
        })
        .unwrap();
        let mut index = build(&a);
        // Diverge b so its version overtakes the index's sync point.
        b.remove("noise").unwrap();
        b.add(table! { "b_only"; ["x"]; [1] }).unwrap();
        assert!(b.version() > index.version());

        index.sync(&b);
        assert!(index.is_current(&b));
        assert_eq!(index.santos().len(), b.len());
        let hits = index.discover(&query(), 10);
        assert!(
            hits.iter().all(|d| d.table != "ghost_cities"),
            "table from the other lineage must not survive sync: {hits:?}"
        );
    }

    #[test]
    fn sync_with_an_older_lineage_rebuilds() {
        let mut lake = demo_lake();
        let pre_churn = lake.clone();
        lake.add(table! { "extra"; ["x"]; [1] }).unwrap();
        let mut index = build(&lake);
        // Handing the index the pre-churn clone must roll it back.
        index.sync(&pre_churn);
        assert!(index.is_current(&pre_churn));
        assert_eq!(index.santos().len(), pre_churn.len());
    }

    #[test]
    fn union_keeps_best_score_per_table() {
        let lake = demo_lake();
        let index = build(&lake);
        let hits = index.discover(&query(), 5);
        let mut seen = std::collections::HashSet::new();
        for d in &hits {
            assert!(seen.insert(d.table.clone()), "duplicate {d:?}");
        }
    }
}
