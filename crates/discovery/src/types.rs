//! The discovery trait and result types.

use std::collections::HashSet;
use std::sync::Arc;

use dialite_table::Table;

/// A discovery query: the query table plus an optional *intent / query
/// column* (paper §3.1: "a user selects City as an intent column and query
/// column"). Engines that need a column (joinable search) fall back to the
/// first column when none is given.
#[derive(Debug, Clone)]
pub struct TableQuery {
    /// The query table `Q`.
    pub table: Arc<Table>,
    /// Index of the intent/query column, if the user marked one.
    pub column: Option<usize>,
}

impl TableQuery {
    /// Query over a whole table (no marked column).
    pub fn new(table: Table) -> TableQuery {
        TableQuery {
            table: Arc::new(table),
            column: None,
        }
    }

    /// Query with a marked intent/query column.
    pub fn with_column(table: Table, column: usize) -> TableQuery {
        assert!(
            column < table.column_count(),
            "query column {column} out of range"
        );
        TableQuery {
            table: Arc::new(table),
            column: Some(column),
        }
    }

    /// The effective query column (marked, or 0).
    pub fn effective_column(&self) -> usize {
        self.column.unwrap_or(0)
    }
}

/// One discovered table with its relevance score (engine-specific scale,
/// always "higher is better"; results come sorted descending).
#[derive(Debug, Clone, PartialEq)]
pub struct Discovered {
    /// Name of the table in the lake.
    pub table: String,
    /// Relevance score.
    pub score: f64,
}

/// A table-discovery algorithm over a fixed, pre-indexed data lake.
pub trait Discovery: Send + Sync {
    /// Short identifier used in reports (e.g. `"santos"`).
    fn name(&self) -> &str;

    /// The top-`k` most relevant lake tables for the query, sorted by
    /// descending score. May return fewer than `k`.
    fn discover(&self, query: &TableQuery, k: usize) -> Vec<Discovered>;
}

/// Total order for relevance scores: higher is better, and a NaN score
/// (e.g. from a `0.0 / 0.0` weight upstream) ranks *below every real
/// score* — it must never panic a discovery run (the old
/// `partial_cmp().unwrap()` did) nor silently outrank genuine results
/// (raw `total_cmp` would put `+NaN` first).
pub(crate) fn score_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    let key = |s: f64| if s.is_nan() { f64::NEG_INFINITY } else { s };
    key(a).total_cmp(&key(b))
}

/// Sort candidates by descending score (NaN last; ties broken by name for
/// determinism) and truncate to `k`. Shared by all engines.
pub(crate) fn top_k(mut candidates: Vec<Discovered>, k: usize) -> Vec<Discovered> {
    candidates.sort_by(|a, b| score_cmp(b.score, a.score).then_with(|| a.table.cmp(&b.table)));
    candidates.truncate(k);
    candidates
}

/// Sort discovered candidates by descending score (NaN-safe, ties broken
/// by table name for determinism) and truncate to `k` — the shared
/// ranking every engine applies before returning. Public so downstream
/// layers merging several engines' results rank identically.
pub fn top_k_discovered(candidates: Vec<Discovered>, k: usize) -> Vec<Discovered> {
    top_k(candidates, k)
}

/// Fold discovery hits into a per-table best-score map without inventing
/// scores: a table's first hit stores its score verbatim (NaN included,
/// so degenerate engine output propagates instead of being replaced by a
/// fabricated `-inf`), and a later hit displaces it only when genuinely
/// better under the same NaN-last total order [`top_k_discovered`] ranks
/// with. Shared by every layer that unions several engines' results.
pub fn merge_best_scores(
    best: &mut std::collections::HashMap<String, f64>,
    hits: impl IntoIterator<Item = Discovered>,
) {
    use std::collections::hash_map::Entry;
    for d in hits {
        match best.entry(d.table) {
            Entry::Vacant(v) => {
                v.insert(d.score);
            }
            Entry::Occupied(mut o) => {
                if score_cmp(d.score, *o.get()) == std::cmp::Ordering::Greater {
                    o.insert(d.score);
                }
            }
        }
    }
}

/// Union the results of several discovery runs into one integration set
/// (table names, deduplicated, in first-seen score order) — the demo
/// persists "the set of tables found by all techniques".
pub fn union_integration_set(results: &[Vec<Discovered>]) -> Vec<String> {
    let mut seen: HashSet<&str> = HashSet::new();
    let mut out: Vec<String> = Vec::new();
    for run in results {
        for d in run {
            if seen.insert(d.table.as_str()) {
                out.push(d.table.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::table;

    #[test]
    fn top_k_sorts_and_truncates_deterministically() {
        let c = vec![
            Discovered {
                table: "b".into(),
                score: 0.5,
            },
            Discovered {
                table: "a".into(),
                score: 0.5,
            },
            Discovered {
                table: "c".into(),
                score: 0.9,
            },
        ];
        let out = top_k(c, 2);
        assert_eq!(out[0].table, "c");
        assert_eq!(out[1].table, "a", "ties break by name");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn top_k_with_nan_scores_does_not_panic_and_is_deterministic() {
        // Regression: a NaN score (0.0/0.0 weight upstream) used to panic
        // engines that sorted with partial_cmp().unwrap(); score_cmp makes
        // the sort well-defined, repeatable, and NaN-last.
        let mk = || {
            vec![
                Discovered {
                    table: "nan".into(),
                    score: f64::NAN,
                },
                Discovered {
                    table: "best".into(),
                    score: 0.9,
                },
                Discovered {
                    table: "neg-nan".into(),
                    score: -f64::NAN,
                },
                Discovered {
                    table: "low".into(),
                    score: 0.1,
                },
            ]
        };
        let out = top_k(mk(), 10);
        assert_eq!(out.len(), 4);
        let order: Vec<&str> = out.iter().map(|d| d.table.as_str()).collect();
        // NaNs of either sign rank below every real score (tied among
        // themselves, broken by name) — a degenerate candidate must never
        // evict a genuine result from the top slots.
        assert_eq!(order, vec!["best", "low", "nan", "neg-nan"]);
        assert_eq!(
            top_k(mk(), 1)[0].table,
            "best",
            "k=1 must keep the real match, not a NaN"
        );
        let rerun = top_k(mk(), 10);
        let again: Vec<&str> = rerun.iter().map(|d| d.table.as_str()).collect();
        assert_eq!(order, again);
    }

    #[test]
    fn merge_best_scores_propagates_nan_and_prefers_real_scores() {
        let hit = |s: f64| {
            vec![Discovered {
                table: "t".into(),
                score: s,
            }]
        };
        let mut best = std::collections::HashMap::new();
        merge_best_scores(&mut best, hit(f64::NAN));
        assert!(best["t"].is_nan(), "NaN must propagate, not become -inf");
        merge_best_scores(&mut best, hit(0.2));
        assert_eq!(best["t"], 0.2, "a real score beats NaN");
        merge_best_scores(&mut best, hit(f64::NAN));
        assert_eq!(best["t"], 0.2, "NaN must not displace a real score");
        merge_best_scores(&mut best, hit(0.9));
        assert_eq!(best["t"], 0.9, "higher real score wins");
        merge_best_scores(&mut best, hit(0.5));
        assert_eq!(best["t"], 0.9, "lower real score loses");
    }

    #[test]
    fn union_preserves_first_seen_order() {
        let r1 = vec![
            Discovered {
                table: "x".into(),
                score: 1.0,
            },
            Discovered {
                table: "y".into(),
                score: 0.5,
            },
        ];
        let r2 = vec![
            Discovered {
                table: "y".into(),
                score: 0.9,
            },
            Discovered {
                table: "z".into(),
                score: 0.8,
            },
        ];
        assert_eq!(union_integration_set(&[r1, r2]), vec!["x", "y", "z"]);
    }

    #[test]
    fn effective_column_defaults_to_zero() {
        let q = TableQuery::new(table! { "q"; ["a", "b"]; [1, 2] });
        assert_eq!(q.effective_column(), 0);
        let q = TableQuery::with_column(table! { "q"; ["a", "b"]; [1, 2] }, 1);
        assert_eq!(q.effective_column(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn query_column_out_of_range_panics() {
        let _ = TableQuery::with_column(table! { "q"; ["a"]; [1] }, 5);
    }

    mod budget_split {
        //! Edge cases of [`QueryBudget::split`] / [`DiscoveryBudget::split`]
        //! — the budget-slicing contract every sharded fan-out relies on:
        //! `split(1)` is the identity, unlimited (`usize::MAX`) caps stay
        //! unlimited through any split (the `postings` knob included), no
        //! finite cap is ever rounded down to starvation, and the fleet's
        //! total budget (`per_shard × shards`) always covers the original.

        use crate::topk::{DiscoveryBudget, QueryBudget};
        use proptest::prelude::*;

        /// Finite caps plus the two interesting extremes.
        fn cap() -> impl Strategy<Value = usize> {
            prop_oneof![
                Just(0usize),
                Just(usize::MAX),
                1usize..10_000,
                Just(usize::MAX - 1),
            ]
        }

        fn query_budget() -> impl Strategy<Value = QueryBudget> {
            (cap(), cap(), cap()).prop_map(|(p, v, postings)| QueryBudget {
                max_partitions: p,
                max_verifications: v,
                postings,
            })
        }

        fn check_cap(orig: usize, shard: usize, shards: usize) {
            if orig == usize::MAX {
                assert_eq!(shard, usize::MAX, "unlimited must survive split");
            } else {
                assert_eq!(shard, orig.div_ceil(shards.max(1)));
                // Round-up: the fleet never gets less than the original
                // budget in total, and a nonzero cap never starves a shard.
                assert!(shard.checked_mul(shards.max(1)).is_none_or(|t| t >= orig));
                assert!(orig == 0 || shard >= 1);
            }
        }

        proptest! {
            #[test]
            fn query_split_is_sound_for_any_shard_count(
                budget in query_budget(),
                shards in 0usize..64,
            ) {
                let per_shard = budget.split(shards);
                check_cap(budget.max_partitions, per_shard.max_partitions, shards);
                check_cap(budget.max_verifications, per_shard.max_verifications, shards);
                check_cap(budget.postings, per_shard.postings, shards);
            }

            /// `split(1)` (and the degenerate `split(0)`) must be the exact
            /// identity — the `shards == 1` byte-for-byte oracle depends on
            /// the budget reaching the lone shard untouched.
            #[test]
            fn split_one_is_the_identity(
                budget in query_budget(),
                cap in cap(),
                meta_cap in cap(),
            ) {
                prop_assert_eq!(budget.split(1), budget);
                prop_assert_eq!(budget.split(0), budget);
                let stage = DiscoveryBudget::default()
                    .with_joinable(budget)
                    .with_santos_candidates(cap)
                    .with_metadata_candidates(meta_cap);
                prop_assert_eq!(stage.split(1), stage);
            }

            /// A split count larger than any finite cap degrades to
            /// one-unit shard slices, never to zero-starved shards.
            /// (Caps stay small here so `max cap + extra` shards cannot
            /// overflow; `usize::MAX - 1` belongs to the soundness test.)
            #[test]
            fn oversplit_leaves_every_finite_cap_at_least_one(
                budget in (
                    prop_oneof![Just(0usize), Just(usize::MAX), 1usize..10_000],
                    prop_oneof![Just(0usize), Just(usize::MAX), 1usize..10_000],
                    prop_oneof![Just(0usize), Just(usize::MAX), 1usize..10_000],
                )
                    .prop_map(|(p, v, postings)| QueryBudget {
                        max_partitions: p,
                        max_verifications: v,
                        postings,
                    }),
                extra in 1usize..1_000,
            ) {
                let finite: Vec<usize> = [
                    budget.max_partitions,
                    budget.max_verifications,
                    budget.postings,
                ]
                .into_iter()
                .filter(|&c| c != usize::MAX && c > 0)
                .collect();
                let shards = finite.iter().max().copied().unwrap_or(1) + extra;
                let per_shard = budget.split(shards);
                for (orig, shard) in [
                    (budget.max_partitions, per_shard.max_partitions),
                    (budget.max_verifications, per_shard.max_verifications),
                    (budget.postings, per_shard.postings),
                ] {
                    match orig {
                        usize::MAX => prop_assert_eq!(shard, usize::MAX),
                        0 => prop_assert_eq!(shard, 0, "zero budget stays zero"),
                        _ => prop_assert_eq!(shard, 1, "oversplit floors at 1"),
                    }
                }
            }

            /// The stage budget splits every leg with the same rule, and
            /// `unlimited()` is a fixed point of any split.
            #[test]
            fn stage_split_covers_every_leg(
                joinable in query_budget(),
                santos in cap(),
                metadata in cap(),
                shards in 1usize..64,
            ) {
                let stage = DiscoveryBudget::unlimited()
                    .with_joinable(joinable)
                    .with_santos_candidates(santos)
                    .with_metadata_candidates(metadata);
                let per_shard = stage.split(shards);
                prop_assert_eq!(per_shard.joinable, joinable.split(shards));
                check_cap(santos, per_shard.santos_candidates, shards);
                check_cap(metadata, per_shard.metadata_candidates, shards);
                prop_assert_eq!(
                    DiscoveryBudget::unlimited().split(shards),
                    DiscoveryBudget::unlimited()
                );
            }
        }
    }
}
