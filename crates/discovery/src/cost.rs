//! JOSIE-style cost-based scheduling of the exact posting-list path.
//!
//! The pre-cost exact path ([`LshEnsembleDiscovery::exact_best_per_table`])
//! merges **every** posting list of the query's tokens, so its cost is the
//! summed length of all those lists — on skewed lakes a handful of hub
//! tokens (present in almost every table) dominate that sum even though
//! they contribute almost nothing to the top-k. [`exact_search`] turns the
//! merge into a planned search over the same postings:
//!
//! 1. **Cheapest-list-first merge.** Posting lists are processed in
//!    ascending length order (ties broken by token id, so the schedule is
//!    deterministic). After `i` of `L` lists, a domain the merge has not
//!    seen can overlap the query in at most the `L - i` remaining lists —
//!    one token each — so its containment is at most `(L - i) / |Q|`. The
//!    merge stops as soon as that residual bound falls below the engine
//!    threshold: every domain that can still qualify has already surfaced,
//!    and the longest (most expensive, least informative) lists are never
//!    scanned at all.
//! 2. **Best-bound-first verification.** Candidates the truncated merge
//!    did see carry only partial overlaps, so each is finished by exact
//!    verification against its stored token-id set, in descending order of
//!    its upper bound `min(partial + L - i, |domain|) / |Q|` — capped by
//!    the domain's own size, so a small domain that provably cannot reach
//!    the threshold is dropped without verification at all. Verification
//!    stops when the k-th best verified table score strictly beats the
//!    best remaining bound — strictly, so score ties are still verified
//!    and name tie-breaking matches the exhaustive merge byte-for-byte.
//! 3. **Postings budget.** [`QueryBudget::postings`](crate::QueryBudget)
//!    caps the posting entries the merge may scan. A budget stop skips the
//!    unscanned lists and reports `budget_exhausted`; whatever was seen is
//!    still verified exactly, so budgeted output is a sound subset of the
//!    exhaustive answer at identical scores.
//!
//! With an unlimited budget the output equals the full posting merge
//! exactly (same tables, scores and tie-breaks after top-k truncation) —
//! pinned against [`LshEnsembleDiscovery::exact_best_per_table`] by
//! `tests/cost_oracle.rs`. That equality is what lets the exact path scale
//! past `exact_fallback_below`: raising the fallback makes mid-size
//! queries exact (perfect recall) at a fraction of the naive merge cost,
//! replacing the sketch where the cost model wins.

use std::collections::HashMap;

use crate::lshe::{DomainKey, LshEnsembleDiscovery};

/// What one cost-bounded exact search actually did — folded into
/// [`TopKStats`](crate::TopKStats) by the planner's exact path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ExactSearchStats {
    /// Domains whose containment was resolved exactly — by a complete
    /// merge, or by per-candidate verification after a truncated one.
    pub(crate) verified: usize,
    /// Posting entries never scanned: the summed length of the lists the
    /// threshold bound or the postings budget proved unnecessary.
    pub(crate) postings_skipped: usize,
    /// The postings budget cut the merge short (results are a sound
    /// subset of the exhaustive answer).
    pub(crate) budget_exhausted: bool,
}

/// The k-th best verified table score, once at least `k` tables scored.
/// Shared by the partition planner and the cost-bounded exact search —
/// both prune on "the k-th verified score strictly beats the bound".
pub(crate) fn kth_best(best: &HashMap<&str, f64>, k: usize) -> Option<f64> {
    if best.len() < k {
        return None;
    }
    let mut scores: Vec<f64> = best.values().copied().collect();
    scores.sort_by(|a, b| b.total_cmp(a));
    scores.get(k - 1).copied()
}

/// Fold one exactly-resolved containment into the per-table best map,
/// applying the same threshold / liveness / self-exclusion filters as the
/// exhaustive merge.
fn fold<'a>(
    engine: &'a LshEnsembleDiscovery,
    key: DomainKey,
    c: f64,
    exclude_table: &str,
    best: &mut HashMap<&'a str, f64>,
) {
    if c + 1e-12 < engine.config.threshold {
        return;
    }
    let Some(table) = engine.table_names.get(&key.0) else {
        return;
    };
    if table == exclude_table {
        return;
    }
    let entry = best.entry(table.as_str()).or_insert(0.0);
    if c > *entry {
        *entry = c;
    }
}

/// Cost-bounded exact top-k over the engine's posting lists (module docs
/// have the full schedule). Requires a positive threshold — the residual
/// bound cannot see zero-overlap domains, which a non-positive threshold
/// would admit; [`LshEnsembleDiscovery::exact_discover`] routes that
/// degenerate case to the full-domain scan instead.
pub(crate) fn exact_search<'a>(
    engine: &'a LshEnsembleDiscovery,
    q_ids: &[u32],
    q_len: usize,
    exclude_table: &str,
    k: usize,
    max_postings: usize,
) -> (HashMap<&'a str, f64>, ExactSearchStats) {
    debug_assert!(
        engine.config.threshold > 0.0,
        "cost model needs postings to see every candidate"
    );
    let mut stats = ExactSearchStats::default();
    let mut best: HashMap<&str, f64> = HashMap::new();

    // Cheapest-first schedule; (length, token id) keys make it total.
    let mut lists: Vec<(u32, &Vec<DomainKey>)> = q_ids
        .iter()
        .filter_map(|id| engine.postings.get(id).map(|list| (*id, list)))
        .collect();
    lists.sort_unstable_by_key(|(id, list)| (list.len(), *id));
    let total_lists = lists.len();

    let mut overlap: HashMap<DomainKey, usize> = HashMap::new();
    let mut scanned = 0usize;
    let mut processed = 0usize;
    for (_, list) in &lists {
        // Threshold bound: a domain unseen so far overlaps at most the
        // remaining lists, one token each — below threshold, it can never
        // verify, so the remaining (longest) lists need not be scanned.
        let residual = (total_lists - processed) as f64 / q_len as f64;
        if residual + 1e-12 < engine.config.threshold {
            break;
        }
        if scanned + list.len() > max_postings {
            stats.budget_exhausted = true;
            break;
        }
        for key in *list {
            *overlap.entry(*key).or_insert(0) += 1;
        }
        scanned += list.len();
        processed += 1;
    }
    stats.postings_skipped = lists[processed..].iter().map(|(_, list)| list.len()).sum();

    let remaining = total_lists - processed;
    if remaining == 0 {
        // Complete merge: every overlap is exact, so this is the full
        // posting merge verbatim.
        stats.verified = overlap.len();
        for (key, hits) in overlap {
            fold(
                engine,
                key,
                hits as f64 / q_len as f64,
                exclude_table,
                &mut best,
            );
        }
        return (best, stats);
    }

    // Truncated merge: finish the seen candidates by exact verification,
    // best upper bound first. Each candidate's upper bound is capped by
    // its own domain size — the unscanned lists can add at most one token
    // each, but never lift the overlap past `|domain|` — so a small
    // domain provably below threshold is dropped *unverified*: the same
    // filter the exhaustive merge applies only after paying to scan it.
    // Domain keys break bound ties, keeping the verified prefix
    // deterministic.
    let mut ranked: Vec<(DomainKey, f64)> = overlap
        .into_iter()
        .filter_map(|(key, partial)| {
            let dom_len = engine.domains.get(&key).map_or(partial, |d| d.len());
            let bound = (partial + remaining).min(dom_len) as f64 / q_len as f64;
            (bound + 1e-12 >= engine.config.threshold).then_some((key, bound))
        })
        .collect();
    ranked.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for (key, bound) in ranked {
        // Optimality: strictly `>` so bound ties with the k-th verified
        // score are still verified and tie-breaks stay exhaustive-exact.
        if let Some(kth) = kth_best(&best, k) {
            if kth > bound {
                break;
            }
        }
        let Some(domain) = engine.domains.get(&key) else {
            continue;
        };
        stats.verified += 1;
        let hits = q_ids.iter().filter(|id| domain.contains(id)).count();
        fold(
            engine,
            key,
            hits as f64 / q_len as f64,
            exclude_table,
            &mut best,
        );
    }
    (best, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lshe::LshEnsembleConfig;
    use crate::types::TableQuery;
    use dialite_table::{DataLake, Table, Value};

    /// A skewed lake with hub tokens shared by every table: the shape
    /// where cheapest-first scheduling skips the dominant lists.
    fn hub_lake(tables: usize) -> DataLake {
        let mut lake = DataLake::new();
        for t in 0..tables {
            let mut rows: Vec<Vec<Value>> = (0..4)
                .map(|h| vec![Value::Text(format!("hub{h}"))])
                .collect();
            for i in 0..8 {
                rows.push(vec![Value::Text(format!("t{t}_v{i}"))]);
            }
            lake.add(Table::from_rows(&format!("t{t}"), &["k"], rows).unwrap())
                .unwrap();
        }
        lake
    }

    fn query_over(lake: &DataLake, source: &str, tokens: usize) -> TableQuery {
        let table = lake.get(source).unwrap();
        let mut toks: Vec<String> = table.column_token_set(0).into_iter().collect();
        toks.sort();
        toks.truncate(tokens);
        let rows: Vec<Vec<Value>> = toks.into_iter().map(|t| vec![Value::Text(t)]).collect();
        TableQuery::with_column(Table::from_rows("q", &["k"], rows).unwrap(), 0)
    }

    fn exact_args(engine: &LshEnsembleDiscovery, q: &TableQuery) -> (Vec<u32>, usize, String) {
        let toks = q.table.column_token_set(0);
        (
            engine.query_token_ids(&toks),
            toks.len(),
            q.table.name().to_string(),
        )
    }

    #[test]
    fn unlimited_search_equals_the_full_posting_merge() {
        let lake = hub_lake(12);
        let engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let q = query_over(&lake, "t3", 10);
        let (ids, q_len, name) = exact_args(&engine, &q);
        let (oracle, _) = engine.exact_best_per_table(&ids, q_len, &name);
        for k in [1, 3, usize::MAX] {
            let (got, stats) = exact_search(&engine, &ids, q_len, &name, k, usize::MAX);
            // The k-bound may trim sub-top-k tables from the map, but
            // every reported score is the oracle's, and at k=MAX the maps
            // are identical.
            for (table, score) in &got {
                assert_eq!(oracle.get(table), Some(score), "k={k}");
            }
            if k == usize::MAX {
                assert_eq!(got, oracle);
            }
            assert!(!stats.budget_exhausted);
        }
    }

    #[test]
    fn threshold_stop_skips_the_longest_lists() {
        let lake = hub_lake(12);
        let engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        // 4 hub tokens (12-entry lists) + 6 private tokens (1-entry lists):
        // with threshold 0.5 the residual bound kills the merge before the
        // hub lists are touched.
        let q = query_over(&lake, "t3", 10);
        let (ids, q_len, name) = exact_args(&engine, &q);
        let (_, stats) = exact_search(&engine, &ids, q_len, &name, usize::MAX, usize::MAX);
        assert!(
            stats.postings_skipped >= 12,
            "hub lists must be skipped: {stats:?}"
        );
    }

    #[test]
    fn postings_budget_yields_a_sound_subset_and_reports_exhaustion() {
        let lake = hub_lake(12);
        let engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let q = query_over(&lake, "t3", 10);
        let (ids, q_len, name) = exact_args(&engine, &q);
        let (oracle, _) = engine.exact_best_per_table(&ids, q_len, &name);
        let (got, stats) = exact_search(&engine, &ids, q_len, &name, usize::MAX, 2);
        assert!(stats.budget_exhausted, "{stats:?}");
        for (table, score) in &got {
            assert_eq!(oracle.get(table), Some(score), "budgeted scores stay exact");
        }
        // Zero budget: empty but sound, never a panic.
        let (got, stats) = exact_search(&engine, &ids, q_len, &name, 5, 0);
        assert!(got.is_empty());
        assert!(stats.budget_exhausted);
        assert_eq!(stats.verified, 0);
    }

    #[test]
    fn no_postings_is_an_empty_exact_answer() {
        let lake = hub_lake(3);
        let engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let (got, stats) = exact_search(&engine, &[], 5, "q", 3, usize::MAX);
        assert!(got.is_empty());
        assert_eq!(stats, ExactSearchStats::default());
    }
}
