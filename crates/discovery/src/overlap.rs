//! Exact top-k overlap search (JOSIE-shaped).
//!
//! JOSIE (Zhu et al., SIGMOD 2019) answers exact top-k overlap set
//! similarity queries with a cost model that interleaves posting-list reads
//! and candidate verification. At laptop scale a straight inverted-index
//! merge is exact and fast, so this engine keeps JOSIE's *semantics*
//! (exact overlap, top-k) without the distributed cost model — the
//! simplification is documented in DESIGN.md §1.

use std::collections::HashMap;

use dialite_table::DataLake;

use crate::types::{top_k, Discovered, Discovery, TableQuery};

/// Exact overlap-based joinable discovery.
pub struct ExactOverlapDiscovery {
    /// token → (table index, column) posting lists.
    postings: HashMap<String, Vec<(u32, u16)>>,
    /// Per (table, column): domain size (for containment normalization).
    domain_sizes: HashMap<(u32, u16), usize>,
    table_names: Vec<String>,
    /// Score = overlap / |query| (containment) when true; raw overlap count
    /// otherwise.
    normalize: bool,
}

impl ExactOverlapDiscovery {
    /// Index every column of every lake table. `normalize` selects
    /// containment scoring (`true`) or raw overlap counts (`false`).
    pub fn build(lake: &DataLake, normalize: bool) -> ExactOverlapDiscovery {
        let mut postings: HashMap<String, Vec<(u32, u16)>> = HashMap::new();
        let mut domain_sizes = HashMap::new();
        let mut table_names = Vec::with_capacity(lake.len());
        for (t, table) in lake.tables().enumerate() {
            table_names.push(table.name().to_string());
            for c in 0..table.column_count() {
                let tokens = table.column_token_set(c);
                domain_sizes.insert((t as u32, c as u16), tokens.len());
                for tok in tokens {
                    postings.entry(tok).or_default().push((t as u32, c as u16));
                }
            }
        }
        ExactOverlapDiscovery {
            postings,
            domain_sizes,
            table_names,
            normalize,
        }
    }

    /// Number of distinct indexed tokens.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Number of indexed column domains.
    pub fn indexed_columns(&self) -> usize {
        self.domain_sizes.len()
    }
}

impl Discovery for ExactOverlapDiscovery {
    fn name(&self) -> &str {
        "exact-overlap"
    }

    fn discover(&self, query: &TableQuery, k: usize) -> Vec<Discovered> {
        let col = query.effective_column();
        if col >= query.table.column_count() {
            return Vec::new();
        }
        let q_tokens = query.table.column_token_set(col);
        if q_tokens.is_empty() {
            return Vec::new();
        }
        // Merge posting lists: overlap count per (table, column).
        let mut overlap: HashMap<(u32, u16), usize> = HashMap::new();
        for tok in &q_tokens {
            if let Some(post) = self.postings.get(tok) {
                for &key in post {
                    *overlap.entry(key).or_insert(0) += 1;
                }
            }
        }
        // Best column per table.
        let mut best: HashMap<u32, f64> = HashMap::new();
        for ((t, _), count) in overlap {
            if self.table_names[t as usize] == query.table.name() {
                continue;
            }
            let score = if self.normalize {
                count as f64 / q_tokens.len() as f64
            } else {
                count as f64
            };
            let e = best.entry(t).or_insert(0.0);
            if score > *e {
                *e = score;
            }
        }
        let scored = best
            .into_iter()
            .map(|(t, score)| Discovered {
                table: self.table_names[t as usize].clone(),
                score,
            })
            .collect();
        top_k(scored, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::table;

    fn demo_lake() -> DataLake {
        let full = table! {
            "full"; ["city"];
            ["berlin"], ["barcelona"], ["boston"],
        };
        let half = table! {
            "half"; ["place", "n"];
            ["berlin", 1], ["zzz", 2],
        };
        let none = table! {
            "none"; ["animal"];
            ["cat"], ["dog"],
        };
        DataLake::from_tables([full, half, none]).unwrap()
    }

    fn query() -> TableQuery {
        TableQuery::with_column(
            table! { "Q"; ["City"]; ["Berlin"], ["Barcelona"], ["Boston"] },
            0,
        )
    }

    #[test]
    fn exact_containment_ranking() {
        let engine = ExactOverlapDiscovery::build(&demo_lake(), true);
        let hits = engine.discover(&query(), 10);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].table, "full");
        assert!((hits[0].score - 1.0).abs() < 1e-12);
        assert_eq!(hits[1].table, "half");
        assert!((hits[1].score - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn raw_overlap_counts() {
        let engine = ExactOverlapDiscovery::build(&demo_lake(), false);
        let hits = engine.discover(&query(), 10);
        assert_eq!(hits[0].score, 3.0);
        assert_eq!(hits[1].score, 1.0);
    }

    #[test]
    fn zero_overlap_tables_are_absent() {
        let engine = ExactOverlapDiscovery::build(&demo_lake(), true);
        let hits = engine.discover(&query(), 10);
        assert!(hits.iter().all(|d| d.table != "none"));
    }

    #[test]
    fn case_insensitive_token_matching() {
        // Query uses "Berlin", lake stores "berlin" — overlap tokens
        // normalize case.
        let engine = ExactOverlapDiscovery::build(&demo_lake(), true);
        let hits = engine.discover(&query(), 1);
        assert!((hits[0].score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vocabulary_counts_distinct_tokens() {
        let engine = ExactOverlapDiscovery::build(&demo_lake(), true);
        // berlin, barcelona, boston, zzz, 1, 2, cat, dog
        assert_eq!(engine.vocabulary_size(), 8);
    }

    #[test]
    fn numeric_join_columns_work() {
        let a = table! { "ids"; ["id"]; [17], [42], [99] };
        let lake = DataLake::from_tables([a]).unwrap();
        let engine = ExactOverlapDiscovery::build(&lake, true);
        let q = TableQuery::new(table! { "Q"; ["key"]; [42], [17] });
        let hits = engine.discover(&q, 5);
        assert_eq!(hits[0].table, "ids");
        assert!((hits[0].score - 1.0).abs() < 1e-12);
    }
}
