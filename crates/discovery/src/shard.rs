//! Sharded discovery: the storage/execution split over the [`LakeIndex`].
//!
//! One `LakeIndex` is a single-core monolith — one `StringPool`, one
//! SANTOS inverted index, one LSH ensemble, and (for writers) one
//! exclusive critical section per sync. At open-data-lake scale the
//! storage must be partitioned. This module splits the stack in two:
//!
//! * **Storage shards.** A [`ShardRouter`] stripes the lake's stable slot
//!   space across N shards; each shard is a full [`LakeIndex`] scoped to
//!   its stripe (its own engines, pool, postings, planner cache and
//!   telemetry window), maintained through the same incremental
//!   [`sync`](LakeIndex::sync) contract — replaying only the changelog
//!   events its stripe admits.
//! * **Execution layer.** A [`ShardedLakeIndex`] fans each query out
//!   across the shards on std scoped threads, hands every shard an even
//!   [`QueryBudget::split`] slice of the caller's budget, re-ranks the
//!   concatenated per-shard top-k with the one ordering rule
//!   ([`top_k_discovered`]), and merges per-shard telemetry with
//!   [`DiscoveryTelemetry::merge`].
//!
//! Routing is **slot-striped** (`slot % shards`) rather than
//! hash-of-name: [`LakeEvent::Removed`](dialite_table::LakeEvent) carries
//! only the slot, so routing must be a pure function of the slot for
//! per-shard changelog replay to see its own removals. Slots are stable
//! for a table's whole residency, so a table never migrates between
//! shards while it lives.
//!
//! Contracts, pinned by `tests/shard_oracle.rs`:
//!
//! * `shards == 1` is byte-for-byte the single `LakeIndex` — queries run
//!   inline on the caller thread, the budget split is the identity, and
//!   results pass through without a re-rank.
//! * Under the exact-verification config, every discovery surface
//!   (probe-all, budgeted stage, planned top-k) returns byte-identical
//!   output for any shard count, because per-table scores are independent
//!   of co-resident tables and the stripes partition the lake exactly.
//! * Snapshot consistency: a concurrent query never observes some shards
//!   before and some after a sync. Fan-outs stamp each shard's version
//!   and retry on disagreement, falling back to the churn lock (shared
//!   with [`sync`](ShardedLakeIndex::sync)) after a bounded number of
//!   optimistic rounds.

use std::sync::{Arc, Mutex, RwLock};

use dialite_kb::KnowledgeBase;
use dialite_minhash::SketchSnapshot;
use dialite_table::DataLake;

use crate::index::{LakeIndex, LakeIndexConfig};
use crate::telemetry::DiscoveryTelemetry;
use crate::topk::{DiscoveryBudget, QueryBudget};
use crate::types::{top_k_discovered, Discovered, Discovery, TableQuery};

/// Optimistic consistent-snapshot rounds before a fan-out falls back to
/// serializing against [`ShardedLakeIndex::sync`] on the churn lock.
const CONSISTENT_RETRIES: usize = 8;

/// One shard's slice of the lake's slot space: shard `shard` of `of`
/// [`admits`](ShardScope::admits) exactly the slots congruent to it
/// modulo `of`. [`ShardScope::all`] (`0 of 1`) admits every slot and
/// makes scoped builds identical to unscoped ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardScope {
    shard: u32,
    of: u32,
}

impl ShardScope {
    /// The whole-lake scope: shard 0 of 1, admitting every slot.
    pub fn all() -> ShardScope {
        ShardScope { shard: 0, of: 1 }
    }

    /// Which shard this scope is (`< of`).
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Total shard count the stripe was cut from (`>= 1`).
    pub fn of(&self) -> u32 {
        self.of
    }

    /// `true` when the slot belongs to this scope's stripe. The stripes
    /// of one shard count partition the slot space: every slot is
    /// admitted by exactly one of them.
    pub fn admits(&self, slot: u32) -> bool {
        slot % self.of == self.shard
    }
}

impl Default for ShardScope {
    fn default() -> Self {
        ShardScope::all()
    }
}

/// The routing half of the sharded index: a pure `slot -> shard` function
/// plus the per-shard [`ShardScope`]s it induces. Slot-striped
/// (`slot % shards`) so that changelog events — which for removals carry
/// only the slot — route identically to the live entries they concern.
///
/// ```
/// use dialite_discovery::ShardRouter;
///
/// let router = ShardRouter::new(4);
/// assert_eq!(router.shards(), 4);
/// assert_eq!(router.route(6), 2);
/// // Every slot lands in exactly the scope that admits it.
/// for slot in 0..32 {
///     let shard = router.route(slot);
///     assert!(router.scope(shard).admits(slot));
///     let owners = (0..4).filter(|&s| router.scope(s).admits(slot)).count();
///     assert_eq!(owners, 1);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u32,
}

impl ShardRouter {
    /// A router over `shards` stripes; a count of 0 is clamped to 1.
    pub fn new(shards: usize) -> ShardRouter {
        ShardRouter {
            shards: u32::try_from(shards.max(1)).expect("shard count fits in u32"),
        }
    }

    /// Number of shards routed across.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning a slot.
    pub fn route(&self, slot: u32) -> u32 {
        slot % self.shards
    }

    /// The slot stripe owned by one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn scope(&self, shard: u32) -> ShardScope {
        assert!(
            shard < self.shards,
            "shard {shard} out of range for {} shards",
            self.shards
        );
        ShardScope {
            shard,
            of: self.shards,
        }
    }
}

/// The execution layer over N storage shards: fans queries out across
/// per-shard [`LakeIndex`]es in parallel, merges per-shard top-k with the
/// one ordering rule, and merges per-shard telemetry windows (routing
/// and consistency invariants are laid out in the module-level docs).
///
/// Writers go through [`sync`](ShardedLakeIndex::sync), which holds the
/// churn lock and write-locks **one shard at a time** — concurrent
/// queries keep flowing on every shard not currently being updated, and
/// the version-stamped fan-out keeps their snapshots consistent.
///
/// ```
/// use std::sync::Arc;
/// use dialite_discovery::{
///     DiscoveryBudget, LakeIndexConfig, ShardedLakeIndex, TableQuery,
/// };
/// use dialite_kb::curated::covid_kb;
/// use dialite_table::fixtures;
///
/// let mut lake = fixtures::covid_lake();
/// let index =
///     ShardedLakeIndex::build(&lake, Arc::new(covid_kb()), LakeIndexConfig::default(), 4);
/// assert_eq!(index.shard_count(), 4);
///
/// // The lake churns; one sync catches every shard up.
/// lake.remove("animals").unwrap();
/// index.sync(&lake);
/// assert!(index.is_current(&lake));
///
/// let query = TableQuery::with_column(fixtures::fig2_query(), 1); // City
/// let legs = index.discover_all_budgeted(&query, 5, &DiscoveryBudget::default());
/// assert!(legs[1].1.iter().any(|d| d.table == "T3"));
/// ```
pub struct ShardedLakeIndex {
    router: ShardRouter,
    /// One scoped [`LakeIndex`] per stripe. Shard locks are only ever
    /// taken after the churn lock (never the reverse), so the order is
    /// acyclic.
    shards: Vec<RwLock<LakeIndex>>,
    /// Serializes [`sync`](ShardedLakeIndex::sync) runs against each
    /// other and against the consistent-snapshot fallback of queries that
    /// keep losing the optimistic version race.
    churn: Mutex<()>,
}

impl ShardedLakeIndex {
    /// Build `shards` scoped indexes over the lake's current state (a
    /// count of 0 is clamped to 1).
    pub fn build(
        lake: &DataLake,
        kb: Arc<KnowledgeBase>,
        config: LakeIndexConfig,
        shards: usize,
    ) -> ShardedLakeIndex {
        let router = ShardRouter::new(shards);
        let shards = (0..router.shards())
            .map(|i| {
                RwLock::new(LakeIndex::build_scoped(
                    lake,
                    kb.clone(),
                    config.clone(),
                    router.scope(i),
                ))
            })
            .collect();
        ShardedLakeIndex {
            router,
            shards,
            churn: Mutex::new(()),
        }
    }

    /// Like [`ShardedLakeIndex::build`], but warm-start every shard's LSH
    /// engine from one lake-wide sketch snapshot. Each scoped build only
    /// picks up the sketches for slots its stripe admits (domain keys are
    /// slot-addressed, so the shards' subsets are disjoint); sketches the
    /// snapshot lacks — or whose family/size no longer match — are hashed
    /// fresh, exactly as in [`LakeIndex::build_scoped_warm`].
    pub fn build_warm(
        lake: &DataLake,
        kb: Arc<KnowledgeBase>,
        config: LakeIndexConfig,
        shards: usize,
        sketches: &SketchSnapshot,
    ) -> ShardedLakeIndex {
        let router = ShardRouter::new(shards);
        let shards = (0..router.shards())
            .map(|i| {
                RwLock::new(LakeIndex::build_scoped_warm(
                    lake,
                    kb.clone(),
                    config.clone(),
                    router.scope(i),
                    sketches,
                ))
            })
            .collect();
        ShardedLakeIndex {
            router,
            shards,
            churn: Mutex::new(()),
        }
    }

    /// Merge every shard's sketch export into one lake-wide snapshot.
    /// Stripes own disjoint slot sets, so concatenation never collides;
    /// the result is re-sorted into the canonical `(size, key)` order so
    /// the export is byte-stable across shard counts.
    pub fn export_sketches(&self) -> SketchSnapshot {
        let mut merged = SketchSnapshot::default();
        for (i, shard) in self.shards.iter().enumerate() {
            let shard = shard.read().expect("shard lock");
            let part = shard.export_sketches();
            if i == 0 {
                merged.num_perm = part.num_perm;
                merged.seed = part.seed;
            }
            merged.domains.extend(part.domains);
        }
        merged
            .domains
            .sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        merged
    }

    /// Total MinHash signatures computed across all shards — the work a
    /// warm start keeps proportional to the replayed tail.
    pub fn sketch_work(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock").sketch_work())
            .sum()
    }

    /// Number of storage shards the lake is striped across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The slot router the stripes were cut with.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// The knowledge base every shard's SANTOS engine annotates with.
    pub fn kb(&self) -> Arc<KnowledgeBase> {
        self.shards[0].read().expect("shard lock").kb()
    }

    /// The configuration every shard was built with (owned: the borrow
    /// cannot outlive the shard lock).
    pub fn config(&self) -> LakeIndexConfig {
        self.shards[0].read().expect("shard lock").config().clone()
    }

    /// The lake version the shards reflect. Taken under the churn lock,
    /// so mid-sync states (where stripes disagree) are never observed.
    pub fn version(&self) -> u64 {
        let _churn = self.churn.lock().expect("churn lock");
        self.shards[0].read().expect("shard lock").version()
    }

    /// `true` when every shard reflects the lake's current version.
    pub fn is_current(&self, lake: &DataLake) -> bool {
        self.version() == lake.version()
    }

    /// Catch every shard up with the lake — each shard replays the
    /// changelog filtered to its own stripe (or rebuilds its stripe when
    /// the delta is unserviceable), per the [`LakeIndex::sync`] contract.
    /// Holds the churn lock for the whole pass but write-locks one shard
    /// at a time, so queries keep flowing on the other shards.
    pub fn sync(&self, lake: &DataLake) {
        let _churn = self.churn.lock().expect("churn lock");
        for shard in &self.shards {
            shard.write().expect("shard lock").sync(lake);
        }
    }

    /// Run `f` against every shard and collect `(version, result)` pairs
    /// in shard order. With one shard the call runs inline on the caller
    /// thread; otherwise shards `1..` run on scoped threads while the
    /// caller computes shard 0.
    fn fan_out<R, F>(&self, f: &F) -> Vec<(u64, R)>
    where
        R: Send,
        F: Fn(&LakeIndex) -> R + Sync,
    {
        let probe = |shard: &RwLock<LakeIndex>| {
            let guard = shard.read().expect("shard lock");
            (guard.version(), f(&guard))
        };
        if self.shards.len() == 1 {
            return vec![probe(&self.shards[0])];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self.shards[1..]
                .iter()
                .map(|shard| scope.spawn(move || probe(shard)))
                .collect();
            let mut out = Vec::with_capacity(self.shards.len());
            out.push(probe(&self.shards[0]));
            // Joining in spawn order keeps the collection deterministic.
            out.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard fan-out")),
            );
            out
        })
    }

    /// [`fan_out`](Self::fan_out) with snapshot consistency: accept a
    /// round only when every shard reported the same version (all-equal
    /// versions imply one fully synced state — mid-sync, caught-up and
    /// lagging stripes disagree). After [`CONSISTENT_RETRIES`] losing
    /// races, serialize against sync on the churn lock instead.
    fn fan_out_consistent<R, F>(&self, f: &F) -> (u64, Vec<R>)
    where
        R: Send,
        F: Fn(&LakeIndex) -> R + Sync,
    {
        let unzip = |rounds: Vec<(u64, R)>| {
            let version = rounds[0].0;
            (version, rounds.into_iter().map(|(_, r)| r).collect())
        };
        for _ in 0..CONSISTENT_RETRIES {
            let rounds = self.fan_out(f);
            if rounds.iter().all(|(v, _)| *v == rounds[0].0) {
                return unzip(rounds);
            }
        }
        let _churn = self.churn.lock().expect("churn lock");
        unzip(self.fan_out(f))
    }

    /// Concatenate per-shard engine legs and re-rank each leg with the
    /// one ordering rule. A single shard's legs pass through untouched —
    /// the `shards == 1` byte-for-byte contract.
    fn merge_legs(
        mut per_shard: Vec<Vec<(String, Vec<Discovered>)>>,
        k: usize,
    ) -> Vec<(String, Vec<Discovered>)> {
        let mut merged = per_shard.remove(0);
        if per_shard.is_empty() {
            return merged;
        }
        for legs in per_shard {
            for ((_, acc), (_, hits)) in merged.iter_mut().zip(legs) {
                acc.extend(hits);
            }
        }
        for (_, acc) in &mut merged {
            *acc = top_k_discovered(std::mem::take(acc), k);
        }
        merged
    }

    /// Per-engine probe-all discovery fanned out across the shards —
    /// the sharded form of [`LakeIndex::discover_all`], same leg shape
    /// and order.
    pub fn discover_all(&self, query: &TableQuery, k: usize) -> Vec<(String, Vec<Discovered>)> {
        let (_, per_shard) = self.fan_out_consistent(&|ix: &LakeIndex| ix.discover_all(query, k));
        Self::merge_legs(per_shard, k)
    }

    /// The budgeted discovery stage fanned out across the shards — the
    /// sharded form of [`LakeIndex::discover_all_budgeted`]. Each shard
    /// works under an even [`DiscoveryBudget::split`] slice and folds its
    /// own stats into its own telemetry window.
    pub fn discover_all_budgeted(
        &self,
        query: &TableQuery,
        k: usize,
        budget: &DiscoveryBudget,
    ) -> Vec<(String, Vec<Discovered>)> {
        self.discover_all_budgeted_versioned(query, k, budget).1
    }

    /// [`discover_all_budgeted`](Self::discover_all_budgeted) plus the
    /// lake version the consistent snapshot was taken at — what a serving
    /// layer needs to stamp responses without holding any lake lock.
    pub fn discover_all_budgeted_versioned(
        &self,
        query: &TableQuery,
        k: usize,
        budget: &DiscoveryBudget,
    ) -> (u64, Vec<(String, Vec<Discovered>)>) {
        let split = budget.split(self.shards.len());
        let (version, per_shard) =
            self.fan_out_consistent(&|ix: &LakeIndex| ix.discover_all_budgeted(query, k, &split));
        (version, Self::merge_legs(per_shard, k))
    }

    /// Budgeted top-k joinable search fanned out across the shards — the
    /// sharded form of [`LakeIndex::discover_top_k`], with the
    /// [`QueryBudget`] split evenly per shard.
    pub fn discover_top_k(
        &self,
        query: &TableQuery,
        k: usize,
        budget: &QueryBudget,
    ) -> Vec<Discovered> {
        let split = budget.split(self.shards.len());
        let (_, mut per_shard) =
            self.fan_out_consistent(&|ix: &LakeIndex| ix.discover_top_k(query, k, &split));
        if per_shard.len() == 1 {
            return per_shard.remove(0);
        }
        top_k_discovered(per_shard.into_iter().flatten().collect(), k)
    }

    /// The merged telemetry window: per-shard [`DiscoveryTelemetry`]
    /// snapshots folded with [`DiscoveryTelemetry::merge`]. Counters are
    /// exactly the sums of [`telemetry_per_shard`](Self::telemetry_per_shard).
    pub fn telemetry(&self) -> DiscoveryTelemetry {
        let mut merged = DiscoveryTelemetry::default();
        for window in self.telemetry_per_shard() {
            merged.merge(&window);
        }
        merged
    }

    /// Each shard's own telemetry window, in shard order — the
    /// per-stripe work breakdown the `sharded` bench group reports.
    pub fn telemetry_per_shard(&self) -> Vec<DiscoveryTelemetry> {
        self.shards
            .iter()
            .map(|shard| shard.read().expect("shard lock").telemetry())
            .collect()
    }

    /// Zero every shard's telemetry window.
    pub fn reset_telemetry(&self) {
        for shard in &self.shards {
            shard.read().expect("shard lock").reset_telemetry();
        }
    }
}

impl Discovery for ShardedLakeIndex {
    fn name(&self) -> &str {
        "sharded-lake-index"
    }

    /// Union of both engines' results across all shards; a table found by
    /// both engines keeps its best score (NaN-safe), exactly like
    /// [`LakeIndex`]'s union.
    fn discover(&self, query: &TableQuery, k: usize) -> Vec<Discovered> {
        let mut best: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
        for (_, hits) in self.discover_all(query, k) {
            crate::types::merge_best_scores(&mut best, hits);
        }
        top_k_discovered(
            best.into_iter()
                .map(|(table, score)| Discovered { table, score })
                .collect(),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_kb::curated::covid_kb;
    use dialite_table::table;

    fn lake_of(n: usize) -> DataLake {
        DataLake::from_tables((0..n).map(|i| {
            table! {
                &format!("t{i:02}"); ["city", "rate"];
                [format!("city_{}", i % 5), i as i64],
                [format!("city_{}", (i + 1) % 5), (i + 1) as i64],
            }
        }))
        .unwrap()
    }

    #[test]
    fn scopes_partition_the_slot_space() {
        for of in [1u32, 2, 3, 8] {
            let router = ShardRouter::new(of as usize);
            for slot in 0..64 {
                let owners = (0..of).filter(|&s| router.scope(s).admits(slot)).count();
                assert_eq!(owners, 1, "slot {slot} must have exactly one owner");
                assert!(router.scope(router.route(slot)).admits(slot));
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let router = ShardRouter::new(0);
        assert_eq!(router.shards(), 1);
        let index = ShardedLakeIndex::build(
            &lake_of(3),
            Arc::new(covid_kb()),
            LakeIndexConfig::default(),
            0,
        );
        assert_eq!(index.shard_count(), 1);
    }

    #[test]
    fn scoped_build_covers_exactly_the_stripe() {
        let lake = lake_of(10);
        let kb = Arc::new(covid_kb());
        let index = ShardedLakeIndex::build(&lake, kb, LakeIndexConfig::default(), 4);
        let per_shard: usize = index
            .shards
            .iter()
            .map(|s| s.read().unwrap().santos().len())
            .sum();
        assert_eq!(per_shard, lake.len(), "stripes must partition the lake");
    }

    #[test]
    fn sync_catches_every_shard_up() {
        let mut lake = lake_of(8);
        let kb = Arc::new(covid_kb());
        let index = ShardedLakeIndex::build(&lake, kb, LakeIndexConfig::default(), 3);
        lake.add(table! { "fresh"; ["city"]; ["city_0"], ["city_9"] })
            .unwrap();
        lake.remove("t03").unwrap();
        index.sync(&lake);
        assert!(index.is_current(&lake));
        let total: usize = index
            .shards
            .iter()
            .map(|s| s.read().unwrap().santos().len())
            .sum();
        assert_eq!(total, lake.len());
    }

    #[test]
    fn merged_telemetry_is_the_sum_of_shards() {
        let lake = lake_of(12);
        let kb = Arc::new(covid_kb());
        let index = ShardedLakeIndex::build(&lake, kb, LakeIndexConfig::default(), 4);
        let query = TableQuery::with_column(
            table! { "q"; ["city"]; ["city_0"], ["city_1"], ["city_2"] },
            0,
        );
        for _ in 0..3 {
            let _ = index.discover_all_budgeted(&query, 5, &DiscoveryBudget::default());
        }
        let merged = index.telemetry();
        let mut folded = DiscoveryTelemetry::default();
        for window in index.telemetry_per_shard() {
            folded.merge(&window);
        }
        assert_eq!(merged.topk, folded.topk);
        assert_eq!(merged.santos, folded.santos);
        // Every shard saw every fan-out.
        assert_eq!(merged.topk.queries, 3 * 4);
        index.reset_telemetry();
        assert_eq!(index.telemetry(), DiscoveryTelemetry::default());
    }
}
