//! A shared string pool: dense `u32` ids for overlap tokens.
//!
//! Discovery engines compare *sets of tokens*. Storing each column's domain
//! as `HashSet<String>` re-hashes the same strings for every (query,
//! candidate) pair; interning tokens once at index-build time turns the
//! exact-containment verification into `u32` set probes — the same
//! dictionary-encoding move the integrate crate applies to cell values.

use std::collections::HashMap;

/// Interns strings to dense `u32` ids. Ids are assigned in first-seen order.
#[derive(Debug, Clone, Default)]
pub struct StringPool {
    ids: HashMap<String, u32>,
}

impl StringPool {
    /// An empty pool.
    pub fn new() -> StringPool {
        StringPool::default()
    }

    /// Intern `s`, assigning a fresh id the first time it is seen.
    pub fn intern(&mut self, s: &str) -> u32 {
        match self.ids.get(s) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(self.ids.len()).expect("pool id space");
                self.ids.insert(s.to_string(), id);
                id
            }
        }
    }

    /// Id of an already-interned string, if any. A miss means the token
    /// occurs nowhere in the indexed corpus.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.ids.get(s).copied()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dense() {
        let mut p = StringPool::new();
        let a = p.intern("berlin");
        let b = p.intern("boston");
        assert_eq!(p.intern("berlin"), a);
        assert_ne!(a, b);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn get_does_not_insert() {
        let mut p = StringPool::new();
        assert_eq!(p.get("x"), None);
        assert!(p.is_empty());
        let id = p.intern("x");
        assert_eq!(p.get("x"), Some(id));
    }
}
