//! A shared string pool: dense `u32` ids for overlap tokens.
//!
//! Discovery engines compare *sets of tokens*. Storing each column's domain
//! as `HashSet<String>` re-hashes the same strings for every (query,
//! candidate) pair; interning tokens once at index-build time turns the
//! exact-containment verification into `u32` set probes — the same
//! dictionary-encoding move the integrate crate applies to cell values.
//!
//! Under lake churn the pool would grow without bound: tokens of removed
//! tables stay interned (dead dictionary weight). [`StringPool::compact`]
//! supports the discovery layer's generation-based compaction — keep only
//! the ids a caller proves live, reassign dense ids, and hand back the
//! old→new remap so callers can rewrite their stored id sets.

use std::collections::{HashMap, HashSet};

/// Interns strings to dense `u32` ids. Ids are assigned in first-seen order.
#[derive(Debug, Clone, Default)]
pub struct StringPool {
    ids: HashMap<String, u32>,
    /// Reverse map, `id as usize → string`; always the same length as
    /// `ids`. Needed so compaction can re-intern survivors without the
    /// caller retaining any strings.
    strings: Vec<String>,
}

/// Sentinel in the remap returned by [`StringPool::compact`]: the old id
/// was dropped (its token was dead).
pub const POOL_ID_DROPPED: u32 = u32::MAX;

impl StringPool {
    /// An empty pool.
    pub fn new() -> StringPool {
        StringPool::default()
    }

    /// Intern `s`, assigning a fresh id the first time it is seen.
    pub fn intern(&mut self, s: &str) -> u32 {
        match self.ids.get(s) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(self.ids.len()).expect("pool id space");
                self.ids.insert(s.to_string(), id);
                self.strings.push(s.to_string());
                id
            }
        }
    }

    /// Id of an already-interned string, if any. A miss means the token
    /// occurs nowhere in the indexed corpus.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.ids.get(s).copied()
    }

    /// The string behind an id, if the id was ever assigned.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(String::as_str)
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Drop every id not in `live` and reassign the survivors dense ids
    /// (ascending old-id order, so relative order is stable). Returns the
    /// old→new remap, indexed by old id; dropped ids map to
    /// [`POOL_ID_DROPPED`]. Callers must rewrite every stored id through
    /// the remap — ids from before the compaction are otherwise dangling.
    pub fn compact(&mut self, live: &HashSet<u32>) -> Vec<u32> {
        let mut remap = vec![POOL_ID_DROPPED; self.strings.len()];
        let mut strings = Vec::with_capacity(live.len());
        let mut ids = HashMap::with_capacity(live.len());
        for (old, s) in std::mem::take(&mut self.strings).into_iter().enumerate() {
            if live.contains(&(old as u32)) {
                let new = strings.len() as u32;
                remap[old] = new;
                ids.insert(s.clone(), new);
                strings.push(s);
            }
        }
        self.ids = ids;
        self.strings = strings;
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dense() {
        let mut p = StringPool::new();
        let a = p.intern("berlin");
        let b = p.intern("boston");
        assert_eq!(p.intern("berlin"), a);
        assert_ne!(a, b);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn get_does_not_insert() {
        let mut p = StringPool::new();
        assert_eq!(p.get("x"), None);
        assert!(p.is_empty());
        let id = p.intern("x");
        assert_eq!(p.get("x"), Some(id));
    }

    #[test]
    fn resolve_round_trips() {
        let mut p = StringPool::new();
        let a = p.intern("alpha");
        let b = p.intern("beta");
        assert_eq!(p.resolve(a), Some("alpha"));
        assert_eq!(p.resolve(b), Some("beta"));
        assert_eq!(p.resolve(99), None);
    }

    #[test]
    fn compact_drops_dead_ids_and_remaps_survivors() {
        let mut p = StringPool::new();
        let a = p.intern("keep_a");
        let dead = p.intern("drop_me");
        let b = p.intern("keep_b");
        let live: HashSet<u32> = [a, b].into_iter().collect();
        let remap = p.compact(&live);
        assert_eq!(p.len(), 2);
        assert_eq!(remap[dead as usize], POOL_ID_DROPPED);
        let (na, nb) = (remap[a as usize], remap[b as usize]);
        assert_ne!(na, POOL_ID_DROPPED);
        assert_ne!(nb, POOL_ID_DROPPED);
        // Survivors keep their relative order, ids re-densify from 0.
        assert_eq!((na, nb), (0, 1));
        assert_eq!(p.resolve(na), Some("keep_a"));
        assert_eq!(p.resolve(nb), Some("keep_b"));
        assert_eq!(p.get("drop_me"), None);
        // Re-interning a dropped token assigns a fresh dense id.
        assert_eq!(p.intern("drop_me"), 2);
    }

    #[test]
    fn compact_with_everything_live_is_identity() {
        let mut p = StringPool::new();
        let ids: Vec<u32> = ["x", "y", "z"].iter().map(|s| p.intern(s)).collect();
        let live: HashSet<u32> = ids.iter().copied().collect();
        let remap = p.compact(&live);
        for id in ids {
            assert_eq!(remap[id as usize], id);
        }
        assert_eq!(p.len(), 3);
    }
}
