//! Budgeted top-k query planning for joinable discovery — the JOSIE-style
//! candidate-cap lever over the LSH Ensemble engine.
//!
//! The probe-all query path ([`LshEnsembleDiscovery`]'s `discover`) hashes
//! the query column and probes every partition, then truncates to `k`.
//! At lake scale that is wasted work twice over: interactive users re-hash
//! the same query column on every refinement, and most partitions hold
//! domains too small to ever reach the containment threshold, let alone
//! the running top-k. [`TopKPlanner`] turns the scan into a planned search:
//!
//! 1. **Signature cache.** Query-column MinHash signatures are kept in a
//!    small LRU keyed by `(table name, column, hasher identity, token-set
//!    fingerprint)`. The content fingerprint subsumes the lake-version
//!    proxy: a cached signature stays valid across arbitrary lake churn
//!    (signatures depend only on the hash family and the tokens) and
//!    invalidates itself the moment the query column's content changes.
//! 2. **Partition schedule.** Partitions are probed best-bound-first
//!    ([`LshEnsemble::probe_plan`](dialite_minhash::LshEnsemble::probe_plan)):
//!    each partition's upper size bound caps the containment any of its
//!    domains can achieve. Partitions whose bound is below the threshold
//!    are never probed, and the search stops as soon as the k-th best
//!    verified table score strictly beats the best possible score of every
//!    unprobed partition.
//! 3. **Posting-list verification.** Candidates are verified exactly
//!    against interned token-id sets; small and mid-size queries skip the
//!    sketch entirely and are answered exactly by the cost-bounded
//!    posting search of the `cost` module (cheapest-list-first merge,
//!    best-bound-first verification, [`QueryBudget::postings`] cap) —
//!    raising `exact_fallback_below` trades the sketch's approximation
//!    for exact answers wherever the cost model keeps the merge cheap.
//!
//! With an unlimited [`QueryBudget`] the planner returns exactly what the
//! probe-all path returns (same tables, same scores, same tie-breaks) —
//! pinned by tests — while probing a fraction of the partitions on skewed
//! lakes. Budgets cap the partitions probed and candidates verified for
//! latency-bound serving; budgeted results are best-effort but every
//! reported score is still an exactly verified containment. Staged (fresh-
//! churn) domains are always verified regardless of budget, preserving the
//! "churn is never a false negative" guarantee.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use dialite_minhash::Signature;
use dialite_text::fnv1a64;

use crate::cost::kth_best;
use crate::lshe::{DomainKey, LshEnsembleDiscovery};
use crate::types::{top_k, Discovered, TableQuery};

/// Per-query work limits for [`TopKPlanner::discover_top_k`].
///
/// The default is unlimited (plan-optimal early termination only). Budgets
/// make worst-case latency predictable: once a cap is hit the planner
/// returns the best verified results so far. Budgeted output is a sound
/// subset — every reported score is an exactly verified containment at or
/// above the engine threshold — but may miss tables an unbudgeted search
/// would find.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryBudget {
    /// Maximum LSH partitions probed (staged-domain verification and the
    /// exact small-query path do not count against this).
    pub max_partitions: usize,
    /// Maximum candidate domains verified against their token-id sets.
    /// Staged (fresh-churn) domains are always verified and do not count.
    pub max_verifications: usize,
    /// Maximum posting entries the exact path's cost-bounded merge may
    /// scan per query (see the `cost` module). Candidates the truncated
    /// merge already surfaced are still verified exactly, so a budgeted
    /// exact answer is a sound subset at exact scores. The sketch path
    /// and the degenerate non-positive-threshold scan ignore this cap —
    /// neither retrieves through postings.
    pub postings: usize,
}

impl Default for QueryBudget {
    fn default() -> Self {
        QueryBudget::unlimited()
    }
}

impl QueryBudget {
    /// No caps: the planner stops only via its optimality bound.
    pub fn unlimited() -> QueryBudget {
        QueryBudget {
            max_partitions: usize::MAX,
            max_verifications: usize::MAX,
            postings: usize::MAX,
        }
    }

    /// Cap the number of partitions probed.
    pub fn with_max_partitions(mut self, n: usize) -> QueryBudget {
        self.max_partitions = n;
        self
    }

    /// Cap the number of candidate domains verified.
    pub fn with_max_verifications(mut self, n: usize) -> QueryBudget {
        self.max_verifications = n;
        self
    }

    /// Cap the posting entries the exact path's merge may scan.
    pub fn with_max_postings(mut self, n: usize) -> QueryBudget {
        self.postings = n;
        self
    }

    /// The per-shard slice of this budget for a fan-out across `shards`
    /// shards: each finite cap is divided by the shard count (rounding up,
    /// so the fleet never gets *less* total budget than the single-index
    /// query had), and unlimited caps stay unlimited. `split(1)` is the
    /// identity — required for the `shards == 1` byte-for-byte contract.
    ///
    /// ```
    /// use dialite_discovery::QueryBudget;
    ///
    /// let budget = QueryBudget::unlimited()
    ///     .with_max_partitions(64)
    ///     .with_max_verifications(100)
    ///     .with_max_postings(1000);
    /// assert_eq!(budget.split(1), budget);
    /// let per_shard = budget.split(8);
    /// assert_eq!(per_shard.max_partitions, 8);
    /// assert_eq!(per_shard.max_verifications, 13); // ceil(100 / 8)
    /// assert_eq!(per_shard.postings, 125);
    /// assert_eq!(
    ///     QueryBudget::unlimited().split(8),
    ///     QueryBudget::unlimited()
    /// );
    /// ```
    pub fn split(&self, shards: usize) -> QueryBudget {
        QueryBudget {
            max_partitions: split_cap(self.max_partitions, shards),
            max_verifications: split_cap(self.max_verifications, shards),
            postings: split_cap(self.postings, shards),
        }
    }
}

/// `cap / shards` rounded up, with `usize::MAX` (unlimited) preserved.
fn split_cap(cap: usize, shards: usize) -> usize {
    if cap == usize::MAX {
        usize::MAX
    } else {
        cap.div_ceil(shards.max(1))
    }
}

/// Work limits of the whole discovery *stage* — the budget `Pipeline::run`
/// hands to `LakeIndex::discover_all_budgeted`, covering every engine leg:
/// the planned joinable search (a per-query [`QueryBudget`]), the capped
/// SANTOS retrieval (a candidate cap), and — when the optional metadata
/// leg is enabled — the capped header-match retrieval (its own candidate
/// cap).
///
/// The default is *generous but finite*: interactive latency stays bounded
/// on type-dense or partition-heavy lakes, while small lakes never hit a
/// cap and behave exactly like the unbudgeted stage.
/// [`DiscoveryBudget::unlimited`] reproduces the legacy probe-all stage
/// byte-for-byte (order and tie-breaks included) — pinned by
/// `crates/core/tests/pipeline_oracle.rs`.
///
/// ```
/// use dialite_discovery::{DiscoveryBudget, QueryBudget};
///
/// // The default is finite on both legs...
/// let budget = DiscoveryBudget::default();
/// assert!(budget.santos_candidates < usize::MAX);
/// assert!(budget.joinable.max_partitions < usize::MAX);
///
/// // ...while `unlimited()` is the exact legacy probe-all stage.
/// let exact = DiscoveryBudget::unlimited();
/// assert_eq!(exact.joinable, QueryBudget::unlimited());
/// assert_eq!(exact.santos_candidates, usize::MAX);
/// assert_eq!(exact.metadata_candidates, usize::MAX);
///
/// // Budgets compose builder-style.
/// let tight = DiscoveryBudget::default()
///     .with_santos_candidates(32)
///     .with_metadata_candidates(16)
///     .with_joinable(QueryBudget::unlimited().with_max_partitions(2));
/// assert_eq!(tight.santos_candidates, 32);
/// assert_eq!(tight.metadata_candidates, 16);
/// assert_eq!(tight.joinable.max_partitions, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiscoveryBudget {
    /// Per-query work limits of the planned joinable leg.
    pub joinable: QueryBudget,
    /// Maximum candidate tables the SANTOS leg scores per query. Typed
    /// queries retrieve best-bound-first from the type index; typeless
    /// (KB-poor) queries retrieve best-bound-first from the synthesized-
    /// signal posting index — `usize::MAX` keeps both exhaustive (see
    /// [`SantosDiscovery::discover_capped`](crate::SantosDiscovery::discover_capped)).
    pub santos_candidates: usize,
    /// Maximum candidate tables the optional metadata (header-match) leg
    /// scores per query — `usize::MAX` keeps it exhaustive (see
    /// [`MetadataDiscovery::discover_capped`](crate::MetadataDiscovery::discover_capped)).
    /// Ignored when the leg is disabled.
    pub metadata_candidates: usize,
}

impl Default for DiscoveryBudget {
    /// Generous finite caps: 64 partitions / 4096 verifications / 2²⁰
    /// scanned posting entries on the joinable leg, 128 scored SANTOS
    /// candidates, 128 scored metadata candidates.
    fn default() -> Self {
        DiscoveryBudget {
            joinable: QueryBudget {
                max_partitions: 64,
                max_verifications: 4096,
                postings: 1 << 20,
            },
            santos_candidates: 128,
            metadata_candidates: 128,
        }
    }
}

impl DiscoveryBudget {
    /// No caps anywhere: the stage output equals the legacy probe-all
    /// discovery exactly.
    pub fn unlimited() -> DiscoveryBudget {
        DiscoveryBudget {
            joinable: QueryBudget::unlimited(),
            santos_candidates: usize::MAX,
            metadata_candidates: usize::MAX,
        }
    }

    /// Replace the joinable-leg query budget.
    pub fn with_joinable(mut self, budget: QueryBudget) -> DiscoveryBudget {
        self.joinable = budget;
        self
    }

    /// Replace the SANTOS candidate cap.
    pub fn with_santos_candidates(mut self, cap: usize) -> DiscoveryBudget {
        self.santos_candidates = cap;
        self
    }

    /// Replace the metadata (header-match) candidate cap.
    pub fn with_metadata_candidates(mut self, cap: usize) -> DiscoveryBudget {
        self.metadata_candidates = cap;
        self
    }

    /// The per-shard slice of this stage budget (see
    /// [`QueryBudget::split`]): every leg is divided by the shard count,
    /// rounding up, with unlimited caps preserved and `split(1)` the
    /// identity.
    ///
    /// ```
    /// use dialite_discovery::DiscoveryBudget;
    ///
    /// let budget = DiscoveryBudget::default(); // 64 / 4096 / 2²⁰ / 128 / 128
    /// assert_eq!(budget.split(1), budget);
    /// let per_shard = budget.split(4);
    /// assert_eq!(per_shard.joinable.max_partitions, 16);
    /// assert_eq!(per_shard.joinable.max_verifications, 1024);
    /// assert_eq!(per_shard.joinable.postings, 1 << 18);
    /// assert_eq!(per_shard.santos_candidates, 32);
    /// assert_eq!(per_shard.metadata_candidates, 32);
    /// assert_eq!(
    ///     DiscoveryBudget::unlimited().split(4),
    ///     DiscoveryBudget::unlimited()
    /// );
    /// ```
    pub fn split(&self, shards: usize) -> DiscoveryBudget {
        DiscoveryBudget {
            joinable: self.joinable.split(shards),
            santos_candidates: split_cap(self.santos_candidates, shards),
            metadata_candidates: split_cap(self.metadata_candidates, shards),
        }
    }
}

/// What one planned query actually did — the observability half of the
/// budget contract, returned by [`TopKPlanner::discover_top_k_with_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopKStats {
    /// The query-column signature came from the LRU cache (no re-hashing).
    pub cache_hit: bool,
    /// The query was answered exactly via the posting-list merge; no
    /// sketch work (signature, partitions) happened at all.
    pub exact_path: bool,
    /// Partitions actually probed.
    pub partitions_probed: usize,
    /// Partitions skipped — below the threshold bound, beaten by the
    /// running top-k, or cut off by the budget.
    pub partitions_pruned: usize,
    /// Candidate domains whose containment was computed exactly — against
    /// stored token-id sets on the sketch path, or in the posting-list
    /// merge on the exact path.
    pub candidates_verified: usize,
    /// The optimality bound fired: remaining partitions provably could not
    /// change the top-k.
    pub terminated_early: bool,
    /// A budget cap cut the search short (results are best-effort).
    pub budget_exhausted: bool,
    /// Posting entries the exact path's cost model never scanned — lists
    /// proven unnecessary by the threshold bound or cut by the postings
    /// budget. Always 0 on the sketch path.
    pub postings_skipped: usize,
}

/// Commutative fingerprint of a token set: order-independent, cheap
/// (one FNV pass per token vs `num_perm` universal-hash passes for a
/// signature). Sum, xor and cardinality together make an accidental
/// collision across a cache of ~dozens of entries vanishingly unlikely.
fn fingerprint(tokens: &HashSet<String>) -> (u64, u64, u64) {
    let mut sum = 0u64;
    let mut xor = 0u64;
    for t in tokens {
        let h = fnv1a64(t.as_bytes());
        sum = sum.wrapping_add(h);
        xor ^= h.rotate_left((h & 63) as u32);
    }
    (sum, xor, tokens.len() as u64)
}

/// Cache key: the query column's identity plus the hash-family identity
/// (signatures from different `(num_perm, seed)` families are not
/// interchangeable, so a planner shared across engines stays correct).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SigKey {
    table: String,
    column: usize,
    num_perm: usize,
    seed: u64,
    fingerprint: (u64, u64, u64),
}

struct SigEntry {
    sig: Signature,
    last_used: u64,
}

struct SigCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<SigKey, SigEntry>,
    hits: u64,
    misses: u64,
}

impl SigCache {
    fn get(&mut self, key: &SigKey) -> Option<Signature> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                self.hits += 1;
                Some(e.sig.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: SigKey, sig: Signature) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Evict the least-recently-used entry; capacity is small (a
            // working set of interactive queries), so the O(n) scan is
            // cheaper than an ordered structure's constant overhead.
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
            }
        }
        self.tick += 1;
        self.entries.insert(
            key,
            SigEntry {
                sig,
                last_used: self.tick,
            },
        );
    }
}

/// Default number of cached query-column signatures.
pub const DEFAULT_SIGNATURE_CACHE: usize = 64;

/// The budgeted top-k query engine over [`LshEnsembleDiscovery`]: cached
/// query signatures, best-bound-first partition probing with provable
/// early termination, and posting-list verification (full lifecycle in
/// `ARCHITECTURE.md`).
///
/// A planner is cheap to construct and internally synchronized (`&self`
/// queries from many threads share the signature cache); `LakeIndex` owns
/// one and `Pipeline::discover_top_k` routes through it.
///
/// ```
/// use dialite_discovery::{
///     LshEnsembleConfig, LshEnsembleDiscovery, QueryBudget, TableQuery, TopKPlanner,
/// };
/// use dialite_table::fixtures;
///
/// let lake = fixtures::covid_lake();
/// let engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
/// let planner = TopKPlanner::new();
///
/// // Paper §3.1: City is the query column; T3 joins on it.
/// let query = TableQuery::with_column(fixtures::fig2_query(), 1);
/// let hits = planner.discover_top_k(&engine, &query, 3, &QueryBudget::unlimited());
/// assert_eq!(hits[0].table, "T3");
/// ```
pub struct TopKPlanner {
    cache: Mutex<SigCache>,
}

impl Default for TopKPlanner {
    fn default() -> Self {
        TopKPlanner::new()
    }
}

impl TopKPlanner {
    /// Planner with the default signature-cache capacity
    /// ([`DEFAULT_SIGNATURE_CACHE`]).
    pub fn new() -> TopKPlanner {
        TopKPlanner::with_cache_capacity(DEFAULT_SIGNATURE_CACHE)
    }

    /// Planner with an explicit cache capacity (`0` disables caching).
    pub fn with_cache_capacity(capacity: usize) -> TopKPlanner {
        TopKPlanner {
            cache: Mutex::new(SigCache {
                capacity,
                tick: 0,
                entries: HashMap::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Number of signatures currently cached.
    pub fn cached_signatures(&self) -> usize {
        self.cache
            .lock()
            .expect("signature cache lock")
            .entries
            .len()
    }

    /// `(hits, misses)` of the signature cache since construction (or the
    /// last [`TopKPlanner::clear_cache`]).
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.cache.lock().expect("signature cache lock");
        (c.hits, c.misses)
    }

    /// Drop every cached signature and reset the hit/miss counters.
    pub fn clear_cache(&self) {
        let mut c = self.cache.lock().expect("signature cache lock");
        c.entries.clear();
        c.hits = 0;
        c.misses = 0;
    }

    /// The top-`k` joinable tables for the query under a work budget.
    /// See [`TopKPlanner::discover_top_k_with_stats`] for the stats
    /// variant; results are identical.
    pub fn discover_top_k(
        &self,
        engine: &LshEnsembleDiscovery,
        query: &TableQuery,
        k: usize,
        budget: &QueryBudget,
    ) -> Vec<Discovered> {
        self.discover_top_k_with_stats(engine, query, k, budget).0
    }

    /// [`TopKPlanner::discover_top_k`] plus the [`TopKStats`] describing
    /// what the planner actually did (cache hit, partitions pruned, early
    /// termination, budget exhaustion).
    pub fn discover_top_k_with_stats(
        &self,
        engine: &LshEnsembleDiscovery,
        query: &TableQuery,
        k: usize,
        budget: &QueryBudget,
    ) -> (Vec<Discovered>, TopKStats) {
        let mut stats = TopKStats::default();
        let col = query.effective_column();
        if col >= query.table.column_count() || k == 0 {
            return (Vec::new(), stats);
        }
        let q_tokens = query.table.column_token_set(col);
        if q_tokens.is_empty() {
            return (Vec::new(), stats);
        }
        let q_len = q_tokens.len();
        let q_ids = engine.query_token_ids(&q_tokens);
        let threshold = engine.config.threshold;
        let exclude = query.table.name();

        // Small-to-mid queries: answer exactly via the cost-bounded
        // posting search, no sketch work at all — the same shared engine
        // helper the probe-all path uses, so planner and probe-all cannot
        // drift apart here.
        if q_len < engine.config.exact_fallback_below {
            stats.exact_path = true;
            let (best, exact) = engine.exact_discover(&q_ids, q_len, exclude, k, budget.postings);
            stats.candidates_verified += exact.verified;
            stats.postings_skipped += exact.postings_skipped;
            stats.budget_exhausted |= exact.budget_exhausted;
            return (finish(best, k), stats);
        }

        let sig = self.signature_for(engine, exclude, col, &q_tokens, &mut stats);

        // Fresh-churn safety first: staged domains are verified exactly,
        // always, outside any budget — a just-added table must never be a
        // false negative.
        let mut best: HashMap<&str, f64> = HashMap::new();
        let mut seen: HashSet<DomainKey> = engine.ensemble.staged_keys().copied().collect();
        engine.verify_candidates(seen.iter().copied(), &q_ids, q_len, exclude, &mut best);

        let plan = engine.ensemble.probe_plan(q_len);
        let mut remaining = plan.len();
        for probe in &plan {
            // Threshold bound: nothing in this (or any later, since the
            // plan is bound-descending) partition can verify ≥ threshold.
            if probe.max_containment + 1e-12 < threshold {
                stats.partitions_pruned += remaining;
                break;
            }
            // Optimality bound: the k-th best verified table score strictly
            // beats anything an unprobed partition could hold. `>` (not
            // `>=`) so score ties are still probed and name tie-breaking
            // matches the probe-all path exactly.
            if let Some(kth) = kth_best(&best, k) {
                if kth > probe.max_containment {
                    stats.partitions_pruned += remaining;
                    stats.terminated_early = true;
                    break;
                }
            }
            if stats.partitions_probed >= budget.max_partitions {
                stats.partitions_pruned += remaining;
                stats.budget_exhausted = true;
                break;
            }
            stats.partitions_probed += 1;
            remaining -= 1;

            let mut fresh: Vec<DomainKey> = engine
                .ensemble
                .query_partition(probe.partition, &sig, q_len, threshold)
                .into_iter()
                .filter(|key| seen.insert(*key))
                .collect();
            let verify_left = budget
                .max_verifications
                .saturating_sub(stats.candidates_verified);
            if fresh.len() > verify_left {
                fresh.truncate(verify_left);
                stats.budget_exhausted = true;
            }
            stats.candidates_verified +=
                engine.verify_candidates(fresh, &q_ids, q_len, exclude, &mut best);
            if stats.budget_exhausted {
                stats.partitions_pruned += remaining;
                break;
            }
        }
        (finish(best, k), stats)
    }

    /// Cache-or-compute the query column's signature.
    fn signature_for(
        &self,
        engine: &LshEnsembleDiscovery,
        table: &str,
        column: usize,
        q_tokens: &HashSet<String>,
        stats: &mut TopKStats,
    ) -> Signature {
        let key = SigKey {
            table: table.to_string(),
            column,
            num_perm: engine.config.num_perm,
            seed: engine.config.seed,
            fingerprint: fingerprint(q_tokens),
        };
        if let Some(sig) = self.cache.lock().expect("signature cache lock").get(&key) {
            stats.cache_hit = true;
            return sig;
        }
        // Hash outside the lock: signatures cost `num_perm` passes over
        // the tokens, and concurrent queries should not serialize on it.
        let sig = engine.hasher.signature(q_tokens.iter().map(String::as_str));
        self.cache
            .lock()
            .expect("signature cache lock")
            .insert(key, sig.clone());
        sig
    }
}

fn finish(best: HashMap<&str, f64>, k: usize) -> Vec<Discovered> {
    top_k(
        best.into_iter()
            .map(|(t, s)| Discovered {
                table: t.to_string(),
                score: s,
            })
            .collect(),
        k,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lshe::LshEnsembleConfig;
    use crate::types::Discovery;
    use dialite_table::{table, DataLake, Table, Value};

    /// A skewed lake: a handful of big superset tables, many small ones.
    fn skewed_lake(smalls: usize) -> (DataLake, TableQuery) {
        let mut lake = DataLake::new();
        let big_rows: Vec<Vec<Value>> = (0..120)
            .map(|i| vec![Value::Text(format!("tok{i}"))])
            .collect();
        lake.add(Table::from_rows("big_a", &["k"], big_rows.clone()).unwrap())
            .unwrap();
        lake.add(Table::from_rows("big_b", &["k"], big_rows[..100].to_vec()).unwrap())
            .unwrap();
        for s in 0..smalls {
            let rows: Vec<Vec<Value>> = (0..6)
                .map(|i| vec![Value::Text(format!("small{s}_{i}"))])
                .collect();
            lake.add(Table::from_rows(&format!("small{s}"), &["k"], rows).unwrap())
                .unwrap();
        }
        let q_rows: Vec<Vec<Value>> = (0..60)
            .map(|i| vec![Value::Text(format!("tok{i}"))])
            .collect();
        let q = TableQuery::with_column(Table::from_rows("q", &["k"], q_rows).unwrap(), 0);
        (lake, q)
    }

    #[test]
    fn unbudgeted_planner_matches_probe_all_exactly() {
        let (lake, q) = skewed_lake(40);
        let engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let planner = TopKPlanner::new();
        for k in [1, 2, 5, 50] {
            assert_eq!(
                planner.discover_top_k(&engine, &q, k, &QueryBudget::unlimited()),
                engine.discover(&q, k),
                "planner diverged from probe-all at k={k}"
            );
        }
    }

    #[test]
    fn skew_prunes_partitions_via_threshold_and_optimality_bounds() {
        let (lake, q) = skewed_lake(60);
        let engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let planner = TopKPlanner::new();
        let (hits, stats) =
            planner.discover_top_k_with_stats(&engine, &q, 2, &QueryBudget::unlimited());
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].table, "big_a");
        assert!(
            stats.partitions_pruned > 0,
            "60 six-token tables vs a 60-token query must leave sub-threshold partitions: {stats:?}"
        );
        assert!(!stats.budget_exhausted);
        assert_eq!(
            stats.partitions_probed + stats.partitions_pruned,
            engine.ensemble.partition_count()
        );
    }

    #[test]
    fn signature_cache_hits_on_repeat_and_invalidates_on_content_change() {
        let (lake, q) = skewed_lake(10);
        let engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let planner = TopKPlanner::new();
        let (_, s1) = planner.discover_top_k_with_stats(&engine, &q, 3, &QueryBudget::unlimited());
        assert!(!s1.cache_hit);
        let (_, s2) = planner.discover_top_k_with_stats(&engine, &q, 3, &QueryBudget::unlimited());
        assert!(s2.cache_hit, "repeat query must reuse the signature");
        assert_eq!(planner.cache_stats().0, 1);

        // Same table name + column, different tokens → fingerprint differs.
        let changed_rows: Vec<Vec<Value>> = (0..60)
            .map(|i| vec![Value::Text(format!("other{i}"))])
            .collect();
        let changed =
            TableQuery::with_column(Table::from_rows("q", &["k"], changed_rows).unwrap(), 0);
        let (_, s3) =
            planner.discover_top_k_with_stats(&engine, &changed, 3, &QueryBudget::unlimited());
        assert!(!s3.cache_hit, "changed content must not hit the cache");
        assert_eq!(planner.cached_signatures(), 2);
        planner.clear_cache();
        assert_eq!(planner.cached_signatures(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (lake, _) = skewed_lake(4);
        let engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let planner = TopKPlanner::with_cache_capacity(2);
        let mk = |name: &str, salt: usize| {
            let rows: Vec<Vec<Value>> = (0..40)
                .map(|i| vec![Value::Text(format!("{salt}_{i}"))])
                .collect();
            TableQuery::with_column(Table::from_rows(name, &["k"], rows).unwrap(), 0)
        };
        let (a, b, c) = (mk("qa", 1), mk("qb", 2), mk("qc", 3));
        let budget = QueryBudget::unlimited();
        planner.discover_top_k(&engine, &a, 1, &budget); // cache: a
        planner.discover_top_k(&engine, &b, 1, &budget); // cache: a b
        planner.discover_top_k(&engine, &a, 1, &budget); // touch a
        planner.discover_top_k(&engine, &c, 1, &budget); // evicts b
        assert_eq!(planner.cached_signatures(), 2);
        let (_, sa) = planner.discover_top_k_with_stats(&engine, &a, 1, &budget);
        assert!(sa.cache_hit, "a was touched, must survive");
        let (_, sb) = planner.discover_top_k_with_stats(&engine, &b, 1, &budget);
        assert!(!sb.cache_hit, "b was the LRU victim");
    }

    #[test]
    fn budget_caps_partitions_and_results_stay_sound() {
        let (lake, q) = skewed_lake(40);
        let engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let planner = TopKPlanner::new();
        let budget = QueryBudget::unlimited().with_max_partitions(1);
        let (hits, stats) = planner.discover_top_k_with_stats(&engine, &q, 5, &budget);
        assert!(stats.partitions_probed <= 1);
        assert!(stats.budget_exhausted || stats.terminated_early || stats.partitions_pruned > 0);
        // Sound: every reported score is a true containment ≥ threshold.
        for d in &hits {
            assert!(d.score >= engine.config.threshold - 1e-12, "{d:?}");
        }
    }

    #[test]
    fn budget_caps_verifications() {
        let (lake, q) = skewed_lake(40);
        // Low threshold so many candidates surface.
        let engine = LshEnsembleDiscovery::build(
            &lake,
            LshEnsembleConfig {
                threshold: 0.05,
                ..LshEnsembleConfig::default()
            },
        );
        let planner = TopKPlanner::new();
        let budget = QueryBudget::unlimited().with_max_verifications(1);
        let (_, stats) = planner.discover_top_k_with_stats(&engine, &q, 50, &budget);
        assert!(stats.candidates_verified <= 1, "{stats:?}");
        assert!(stats.budget_exhausted, "{stats:?}");
    }

    #[test]
    fn staged_domains_are_verified_even_under_zero_budget() {
        let (mut lake, q) = skewed_lake(10);
        let engine_cfg = LshEnsembleConfig {
            // Never auto-rebalance: the fresh table stays staged.
            rebalance_dirtiness: f64::INFINITY,
            ..LshEnsembleConfig::default()
        };
        let mut engine = LshEnsembleDiscovery::build(&lake, engine_cfg);
        let fresh_rows: Vec<Vec<Value>> = (0..70)
            .map(|i| vec![Value::Text(format!("tok{i}"))])
            .collect();
        let fresh = Table::from_rows("fresh_superset", &["k"], fresh_rows).unwrap();
        let slot = lake.add_table(fresh.clone()).unwrap();
        engine.upsert_table(slot, &fresh);

        let planner = TopKPlanner::new();
        let budget = QueryBudget::unlimited()
            .with_max_partitions(0)
            .with_max_verifications(0);
        let (hits, stats) = planner.discover_top_k_with_stats(&engine, &q, 5, &budget);
        assert!(
            hits.iter()
                .any(|d| d.table == "fresh_superset" && (d.score - 1.0).abs() < 1e-12),
            "staged superset must surface despite a zero budget: {hits:?} {stats:?}"
        );
    }

    #[test]
    fn small_queries_take_the_exact_posting_path() {
        let lake = DataLake::from_tables([
            table! { "t1"; ["k"]; ["a"], ["b"], ["c"] },
            table! { "t2"; ["k"]; ["a"], ["x"], ["y"] },
        ])
        .unwrap();
        let engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let planner = TopKPlanner::new();
        let q = TableQuery::with_column(table! { "q"; ["k"]; ["a"], ["b"] }, 0);
        let (hits, stats) =
            planner.discover_top_k_with_stats(&engine, &q, 5, &QueryBudget::unlimited());
        assert!(stats.exact_path);
        assert!(!stats.cache_hit);
        assert_eq!(hits, engine.discover(&q, 5));
        assert_eq!(hits[0].table, "t1");
        assert!((hits[0].score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn raised_fallback_answers_mid_size_queries_exactly() {
        // With `exact_fallback_below` raised past the query size, the
        // 60-token query takes the cost-bounded exact path — and must
        // still match the probe-all answer byte-for-byte, skipping the
        // hub posting lists the threshold bound proves unnecessary.
        let (lake, q) = skewed_lake(40);
        let engine = LshEnsembleDiscovery::build(
            &lake,
            LshEnsembleConfig {
                exact_fallback_below: usize::MAX,
                ..LshEnsembleConfig::default()
            },
        );
        let planner = TopKPlanner::new();
        for k in [1, 2, 5, 50] {
            let (hits, stats) =
                planner.discover_top_k_with_stats(&engine, &q, k, &QueryBudget::unlimited());
            assert!(stats.exact_path);
            assert_eq!(hits, engine.discover(&q, k), "k={k}");
        }
    }

    #[test]
    fn postings_budget_bounds_the_exact_path_and_is_reported() {
        let (lake, q) = skewed_lake(40);
        let engine = LshEnsembleDiscovery::build(
            &lake,
            LshEnsembleConfig {
                exact_fallback_below: usize::MAX,
                ..LshEnsembleConfig::default()
            },
        );
        let planner = TopKPlanner::new();
        let budget = QueryBudget::unlimited().with_max_postings(0);
        let (hits, stats) = planner.discover_top_k_with_stats(&engine, &q, 5, &budget);
        assert!(stats.exact_path);
        assert!(stats.budget_exhausted, "{stats:?}");
        assert!(stats.postings_skipped > 0, "{stats:?}");
        assert!(hits.is_empty(), "nothing scanned, nothing reported");
    }

    #[test]
    fn empty_and_out_of_range_queries_are_empty() {
        let (lake, q) = skewed_lake(4);
        let engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let planner = TopKPlanner::new();
        assert!(planner
            .discover_top_k(&engine, &q, 0, &QueryBudget::unlimited())
            .is_empty());
        let empty_q = TableQuery::new(
            Table::from_rows("e", &["c"], vec![vec![Value::null_missing()]]).unwrap(),
        );
        assert!(planner
            .discover_top_k(&engine, &empty_q, 5, &QueryBudget::unlimited())
            .is_empty());
    }
}
