//! Joinable-table search over the LSH Ensemble containment index, with
//! exact verification of candidates — the discovery backend the demo drives
//! through `datasketch` (paper §2.1, §3.1).
//!
//! Column domains are identified by `(table slot, col)` pairs — the stable
//! slot indices of the mutable [`DataLake`] — and stored as token-**id**
//! sets over a shared [`StringPool`], so verification probes `u32` sets
//! instead of re-hashing strings, and table names never need to be embedded
//! in (collision-prone) composite string keys.
//!
//! Alongside the sketch index the engine maintains **exact token posting
//! lists** (token id → the `(slot, col)` domains containing it). They
//! answer small queries exactly without touching the sketch path (a
//! JOSIE-style merge over the query's postings), and they are what the
//! budget-aware [`TopKPlanner`](crate::TopKPlanner) uses to verify
//! candidates.
//!
//! The engine is incrementally maintainable: [`LshEnsembleDiscovery::
//! upsert_table`] / [`LshEnsembleDiscovery::remove_table`] apply one
//! table's worth of work (hash its domains, retire its dead domain keys and
//! postings) instead of rebuilding over the whole lake — `LakeIndex` drives
//! these from the lake changelog. Staged (not-yet-rebalanced) domains are
//! exact-scanned at query time, so a freshly added table is discoverable
//! immediately, never an LSH false negative. Removed tables' tokens are
//! reclaimed by generation-based pool compaction (see
//! [`LshEnsembleDiscovery::pool_generation`]) once the retired token weight
//! overtakes the live weight, so long-churn memory stays bounded.

use std::collections::{HashMap, HashSet};

use dialite_minhash::{LshEnsemble, LshEnsembleBuilder, MinHasher, Signature, SketchSnapshot};
use dialite_table::{DataLake, Table};

use crate::cost::{self, ExactSearchStats};
use crate::pool::{StringPool, POOL_ID_DROPPED};
use crate::shard::ShardScope;
use crate::types::{top_k, Discovered, Discovery, TableQuery};

/// Configuration of the joinable search.
#[derive(Debug, Clone)]
pub struct LshEnsembleConfig {
    /// MinHash permutations (signature length).
    pub num_perm: usize,
    /// Size partitions of the ensemble.
    pub num_partitions: usize,
    /// Containment threshold a candidate column must (probabilistically)
    /// exceed to be retrieved, and (exactly) to be reported.
    pub threshold: f64,
    /// Seed for the hash family.
    pub seed: u64,
    /// Queries with fewer distinct tokens than this bypass the sketch index
    /// and scan the stored domains exactly. MinHash banding has ~50% recall
    /// at the threshold and tiny sets sit near it by construction; an exact
    /// posting-list merge over a handful of tokens is cheaper than a false
    /// negative.
    pub exact_fallback_below: usize,
    /// Fraction of live domains that may be dirty (staged inserts +
    /// tombstones) before a mutation triggers ensemble re-partitioning.
    pub rebalance_dirtiness: f64,
    /// Floor on the retired-token weight before a mutation may trigger
    /// pool compaction; keeps tiny lakes from compacting on every remove.
    pub pool_compact_min: usize,
}

impl Default for LshEnsembleConfig {
    fn default() -> Self {
        LshEnsembleConfig {
            num_perm: 256,
            num_partitions: 8,
            threshold: 0.5,
            seed: 0x1517,
            exact_fallback_below: 16,
            rebalance_dirtiness: 0.25,
            pool_compact_min: 1024,
        }
    }
}

/// A column domain's identity in the index: `(table slot index, column)`.
pub(crate) type DomainKey = (u32, u32);

/// Joinable-table discovery: find lake tables with a column whose domain
/// contains (most of) the query column's domain.
pub struct LshEnsembleDiscovery {
    pub(crate) config: LshEnsembleConfig,
    pub(crate) hasher: MinHasher,
    pub(crate) ensemble: LshEnsemble<DomainKey>,
    /// `(table slot, col)` → interned token-id set, for exact verification.
    pub(crate) domains: HashMap<DomainKey, HashSet<u32>>,
    /// Lake table names by slot index (live tables only).
    pub(crate) table_names: HashMap<u32, String>,
    /// Indexed column indices per slot, so retiring a table touches only
    /// its own domains.
    cols_of: HashMap<u32, Vec<u32>>,
    /// The token dictionary shared by all indexed domains. Compacted once
    /// retired weight overtakes live weight (generation-based), so removed
    /// tables' tokens do not accumulate forever.
    pub(crate) pool: StringPool,
    /// Exact inverted index: token id → the domains containing the token.
    /// Maintained through every upsert/remove, in lockstep with `domains`.
    pub(crate) postings: HashMap<u32, Vec<DomainKey>>,
    /// Σ |domain| over live domains (token occurrences, with multiplicity
    /// across domains).
    live_weight: usize,
    /// Token occurrences retired since the last compaction / full build.
    retired_weight: usize,
    /// Bumped on every pool compaction; lets callers observe that ids from
    /// an older generation are no longer meaningful.
    pool_generation: u64,
}

impl LshEnsembleDiscovery {
    /// Index every column of every lake table.
    pub fn build(lake: &DataLake, config: LshEnsembleConfig) -> LshEnsembleDiscovery {
        LshEnsembleDiscovery::build_scoped(lake, config, ShardScope::all())
    }

    /// Index one shard's stripe of the lake (the slots `scope`
    /// [`admits`](ShardScope::admits)): the shard's `StringPool`, posting
    /// lists and equi-depth ensemble partitions are computed over the
    /// stripe alone, exactly as [`LshEnsembleDiscovery::build`] computes
    /// them over the whole lake. [`ShardScope::all`] reproduces the
    /// unscoped build.
    pub fn build_scoped(
        lake: &DataLake,
        config: LshEnsembleConfig,
        scope: ShardScope,
    ) -> LshEnsembleDiscovery {
        let mut builder = LshEnsembleBuilder::new(config.num_perm, config.seed);
        let mut domains: HashMap<DomainKey, HashSet<u32>> = HashMap::new();
        let mut table_names = HashMap::new();
        let mut cols_of: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut pool = StringPool::new();
        let mut postings: HashMap<u32, Vec<DomainKey>> = HashMap::new();
        let mut live_weight = 0usize;
        for (t, table) in lake.entries_routed(scope.shard(), scope.of()) {
            table_names.insert(t, table.name().to_string());
            for c in 0..table.column_count() {
                let tokens = table.column_token_set(c);
                if tokens.is_empty() {
                    continue;
                }
                let key: DomainKey = (t, c as u32);
                builder.insert_tokens(key, tokens.iter().map(String::as_str));
                let ids: HashSet<u32> = tokens.iter().map(|tok| pool.intern(tok)).collect();
                for &id in &ids {
                    postings.entry(id).or_default().push(key);
                }
                live_weight += ids.len();
                domains.insert(key, ids);
                cols_of.entry(t).or_default().push(c as u32);
            }
        }
        let hasher = builder.hasher().clone();
        let mut ensemble = builder.build(config.num_partitions);
        ensemble.set_rebalance_threshold(config.rebalance_dirtiness);
        LshEnsembleDiscovery {
            config,
            hasher,
            ensemble,
            domains,
            table_names,
            cols_of,
            pool,
            postings,
            live_weight,
            retired_weight: 0,
            pool_generation: 0,
        }
    }

    /// Like [`LshEnsembleDiscovery::build_scoped`], but reuse persisted
    /// MinHash signatures from a durable snapshot instead of re-hashing
    /// every column domain. A sketch is reused only when its hash-family
    /// identity (`num_perm`, `seed`) matches the config **and** its
    /// recorded domain size equals the live domain's token count —
    /// anything else falls back to hashing that domain fresh, so a stale
    /// or foreign snapshot can slow a warm start but never corrupt it.
    ///
    /// Token interning, posting lists and exact verification sets are
    /// always rebuilt from the lake (they are cheap `u32` work); only the
    /// `O(num_perm × tokens)` MinHash pass is skipped.
    pub fn build_scoped_warm(
        lake: &DataLake,
        config: LshEnsembleConfig,
        scope: ShardScope,
        sketches: &SketchSnapshot,
    ) -> LshEnsembleDiscovery {
        if !sketches.matches_family(config.num_perm, config.seed) {
            return LshEnsembleDiscovery::build_scoped(lake, config, scope);
        }
        let by_key: HashMap<DomainKey, (usize, &Signature)> = sketches
            .domains
            .iter()
            .map(|(key, size, sig)| (*key, (*size, sig)))
            .collect();
        let mut builder = LshEnsembleBuilder::new(config.num_perm, config.seed);
        let mut domains: HashMap<DomainKey, HashSet<u32>> = HashMap::new();
        let mut table_names = HashMap::new();
        let mut cols_of: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut pool = StringPool::new();
        let mut postings: HashMap<u32, Vec<DomainKey>> = HashMap::new();
        let mut live_weight = 0usize;
        for (t, table) in lake.entries_routed(scope.shard(), scope.of()) {
            table_names.insert(t, table.name().to_string());
            for c in 0..table.column_count() {
                let tokens = table.column_token_set(c);
                if tokens.is_empty() {
                    continue;
                }
                let key: DomainKey = (t, c as u32);
                match by_key.get(&key) {
                    Some(&(size, sig)) if size == tokens.len() => {
                        builder.insert_signature(key, size, sig.clone());
                    }
                    _ => builder.insert_tokens(key, tokens.iter().map(String::as_str)),
                }
                let ids: HashSet<u32> = tokens.iter().map(|tok| pool.intern(tok)).collect();
                for &id in &ids {
                    postings.entry(id).or_default().push(key);
                }
                live_weight += ids.len();
                domains.insert(key, ids);
                cols_of.entry(t).or_default().push(c as u32);
            }
        }
        let hasher = builder.hasher().clone();
        let mut ensemble = builder.build(config.num_partitions);
        ensemble.set_rebalance_threshold(config.rebalance_dirtiness);
        LshEnsembleDiscovery {
            config,
            hasher,
            ensemble,
            domains,
            table_names,
            cols_of,
            pool,
            postings,
            live_weight,
            retired_weight: 0,
            pool_generation: 0,
        }
    }

    /// Export every indexed domain's MinHash signature, tagged with the
    /// hash-family identity, in the shape durable snapshots persist.
    pub fn export_sketches(&self) -> SketchSnapshot {
        SketchSnapshot {
            num_perm: self.config.num_perm,
            seed: self.config.seed,
            domains: self.ensemble.export_entries(),
        }
    }

    /// MinHash signatures computed by this engine's hash family so far
    /// (across build, upserts and queries). Warm starts exist to keep this
    /// near `O(events since snapshot)` instead of `O(lake)`.
    pub fn sketch_work(&self) -> u64 {
        self.hasher.signatures_computed()
    }

    /// Index (or re-index) one table under its lake slot. `O(table)`.
    pub fn upsert_table(&mut self, slot: u32, table: &Table) {
        self.remove_table(slot);
        self.table_names.insert(slot, table.name().to_string());
        for c in 0..table.column_count() {
            let tokens = table.column_token_set(c);
            if tokens.is_empty() {
                continue;
            }
            let key: DomainKey = (slot, c as u32);
            let sig = self.hasher.signature(tokens.iter().map(String::as_str));
            self.ensemble.insert(key, tokens.len(), sig);
            let ids: HashSet<u32> = tokens.iter().map(|tok| self.pool.intern(tok)).collect();
            for &id in &ids {
                self.postings.entry(id).or_default().push(key);
            }
            self.live_weight += ids.len();
            self.domains.insert(key, ids);
            self.cols_of.entry(slot).or_default().push(c as u32);
        }
        self.maybe_compact_pool();
    }

    /// Retire every domain of the table occupying a lake slot.
    /// `O(columns of that table + their postings)`.
    pub fn remove_table(&mut self, slot: u32) {
        if self.table_names.remove(&slot).is_none() {
            return;
        }
        for c in self.cols_of.remove(&slot).unwrap_or_default() {
            let key: DomainKey = (slot, c);
            if let Some(ids) = self.domains.remove(&key) {
                for id in &ids {
                    if let Some(list) = self.postings.get_mut(id) {
                        if let Some(pos) = list.iter().position(|k| k == &key) {
                            list.swap_remove(pos);
                        }
                        if list.is_empty() {
                            self.postings.remove(id);
                        }
                    }
                }
                self.live_weight -= ids.len();
                self.retired_weight += ids.len();
            }
            self.ensemble.remove(&key);
        }
        self.maybe_compact_pool();
    }

    /// Number of indexed column domains.
    pub fn indexed_domains(&self) -> usize {
        self.domains.len()
    }

    /// Number of distinct tokens currently interned (live + not-yet-
    /// compacted dead weight).
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// `(distinct tokens with postings, total posting entries)` — the
    /// latter always equals the summed live domain sizes, an invariant the
    /// incremental oracle pins under churn.
    pub fn posting_stats(&self) -> (usize, usize) {
        (
            self.postings.len(),
            self.postings.values().map(Vec::len).sum(),
        )
    }

    /// How many times the token pool has been compacted. Compactions remap
    /// every stored token id, so the count doubles as a cheap "ids from an
    /// earlier epoch are invalid" witness in tests.
    pub fn pool_generation(&self) -> u64 {
        self.pool_generation
    }

    /// Compact once dead dictionary weight overtakes live weight (and the
    /// configured floor). The floor keeps small or rarely-churning lakes
    /// from paying the O(pool) rewrite for negligible savings; the
    /// overtake rule bounds the pool at roughly twice the live token
    /// weight regardless of how long churn runs (pinned by
    /// `tests/pool_props.rs`).
    fn maybe_compact_pool(&mut self) {
        if self.retired_weight > self.live_weight.max(self.config.pool_compact_min) {
            self.compact_pool();
        }
    }

    /// Drop every token no live domain references, re-densify ids, and
    /// rewrite all domain sets and posting lists through the remap.
    /// `O(live tokens + pool)`.
    fn compact_pool(&mut self) {
        let live: HashSet<u32> = self.domains.values().flatten().copied().collect();
        let remap = self.pool.compact(&live);
        for ids in self.domains.values_mut() {
            *ids = ids
                .iter()
                .map(|&id| remap[id as usize])
                .inspect(|&id| debug_assert_ne!(id, POOL_ID_DROPPED, "live id dropped"))
                .collect();
        }
        self.postings = std::mem::take(&mut self.postings)
            .into_iter()
            .map(|(id, list)| (remap[id as usize], list))
            .collect();
        self.retired_weight = 0;
        self.pool_generation += 1;
    }

    /// Resolve the query's tokens through the shared pool. Tokens the pool
    /// has never seen occur in no domain and drop out (the containment
    /// denominator stays the full query size).
    pub(crate) fn query_token_ids(&self, q_tokens: &HashSet<String>) -> Vec<u32> {
        q_tokens.iter().filter_map(|t| self.pool.get(t)).collect()
    }

    /// The exact (sketch-free) answer for small-to-mid queries: the
    /// cost-bounded posting search of the `cost` module for any positive
    /// threshold (cheapest-list-first merge, best-bound-first
    /// verification, `max_postings` budget), a full-domain scan in the
    /// degenerate non-positive case (where zero-overlap domains — which
    /// postings cannot see — still pass the threshold; that scan is
    /// exempt from the postings budget because it never touches
    /// postings). With `k == usize::MAX` and an unlimited budget the
    /// result is byte-identical to [`Self::exact_best_per_table`], the
    /// exhaustive merge kept as the oracle.
    ///
    /// Both the probe-all `discover` and the `TopKPlanner` call this one
    /// helper, so the planner's exact-parity contract cannot drift.
    pub(crate) fn exact_discover<'a>(
        &'a self,
        q_ids: &[u32],
        q_len: usize,
        exclude_table: &str,
        k: usize,
        max_postings: usize,
    ) -> (HashMap<&'a str, f64>, ExactSearchStats) {
        if self.config.threshold > 0.0 {
            cost::exact_search(self, q_ids, q_len, exclude_table, k, max_postings)
        } else {
            let mut best = HashMap::new();
            let verified = self.verify_candidates(
                self.domains.keys().copied(),
                q_ids,
                q_len,
                exclude_table,
                &mut best,
            );
            (
                best,
                ExactSearchStats {
                    verified,
                    ..ExactSearchStats::default()
                },
            )
        }
    }

    /// Exact per-table best containment via a posting-list merge: one pass
    /// over the query tokens' postings accumulates `|Q ∩ X|` for every
    /// domain sharing at least one token. Equivalent to brute force for any
    /// positive threshold (a zero-overlap domain can never reach it). The
    /// second return is the number of domains the merge scored — the exact
    /// path's work counter, reported as `candidates_verified`.
    pub(crate) fn exact_best_per_table(
        &self,
        q_ids: &[u32],
        q_len: usize,
        exclude_table: &str,
    ) -> (HashMap<&str, f64>, usize) {
        let mut overlap: HashMap<DomainKey, usize> = HashMap::new();
        for id in q_ids {
            if let Some(list) = self.postings.get(id) {
                for key in list {
                    *overlap.entry(*key).or_insert(0) += 1;
                }
            }
        }
        let scored = overlap.len();
        let mut best: HashMap<&str, f64> = HashMap::new();
        for (key, hits) in overlap {
            let c = hits as f64 / q_len as f64;
            if c + 1e-12 < self.config.threshold {
                continue;
            }
            let Some(table) = self.table_names.get(&key.0) else {
                continue;
            };
            if table == exclude_table {
                continue;
            }
            let entry = best.entry(table.as_str()).or_insert(0.0);
            if c > *entry {
                *entry = c;
            }
        }
        (best, scored)
    }

    /// The **unplanned** exhaustive posting merge, end to end: merge every
    /// posting list of the query's tokens, truncate to top-`k`. This is
    /// the oracle (and bench baseline) the cost-bounded exact path of
    /// the `cost` module is pinned against — with an unlimited postings
    /// budget the planner's exact path must reproduce it byte-for-byte,
    /// while scanning only the posting lists the cost model cannot prove
    /// irrelevant.
    pub fn exact_merge_oracle(&self, query: &TableQuery, k: usize) -> Vec<Discovered> {
        let col = query.effective_column();
        if col >= query.table.column_count() {
            return Vec::new();
        }
        let q_tokens = query.table.column_token_set(col);
        if q_tokens.is_empty() {
            return Vec::new();
        }
        let q_ids = self.query_token_ids(&q_tokens);
        let (best, _) = self.exact_best_per_table(&q_ids, q_tokens.len(), query.table.name());
        top_k(
            best.into_iter()
                .map(|(t, s)| Discovered {
                    table: t.to_string(),
                    score: s,
                })
                .collect(),
            k,
        )
    }

    /// Verify candidate domains exactly against their stored token-id sets,
    /// folding each verified containment into the per-table best map.
    /// Containment is `|Q ∩ X| / |Q|` over interned ids; scores below the
    /// configured threshold (LSH false positives) are dropped.
    pub(crate) fn verify_candidates<'a, I: IntoIterator<Item = DomainKey>>(
        &'a self,
        candidates: I,
        q_ids: &[u32],
        q_len: usize,
        exclude_table: &str,
        best: &mut HashMap<&'a str, f64>,
    ) -> usize {
        let mut verified = 0usize;
        for key in candidates {
            let Some(domain) = self.domains.get(&key) else {
                continue;
            };
            verified += 1;
            let hits = q_ids.iter().filter(|id| domain.contains(id)).count();
            let c = hits as f64 / q_len as f64;
            if c + 1e-12 < self.config.threshold {
                continue; // LSH false positive
            }
            let Some(table) = self.table_names.get(&key.0) else {
                continue;
            };
            if table == exclude_table {
                continue;
            }
            let entry = best.entry(table.as_str()).or_insert(0.0);
            if c > *entry {
                *entry = c;
            }
        }
        verified
    }
}

impl Discovery for LshEnsembleDiscovery {
    fn name(&self) -> &str {
        "lsh-ensemble"
    }

    fn discover(&self, query: &TableQuery, k: usize) -> Vec<Discovered> {
        let col = query.effective_column();
        if col >= query.table.column_count() {
            return Vec::new();
        }
        let q_tokens = query.table.column_token_set(col);
        if q_tokens.is_empty() {
            return Vec::new();
        }
        let q_ids = self.query_token_ids(&q_tokens);

        let best_per_table: HashMap<&str, f64> = if q_tokens.len()
            < self.config.exact_fallback_below
        {
            self.exact_discover(&q_ids, q_tokens.len(), query.table.name(), k, usize::MAX)
                .0
        } else {
            let sig = self.hasher.signature(q_tokens.iter().map(String::as_str));
            let mut cands: HashSet<DomainKey> = self
                .ensemble
                .query(&sig, q_tokens.len(), self.config.threshold)
                .into_iter()
                .collect();
            // Domains staged since the last rebalance sit in best-effort
            // partitions; scan them exactly so fresh churn is never an LSH
            // false negative.
            cands.extend(self.ensemble.staged_keys().copied());
            let mut best = HashMap::new();
            self.verify_candidates(cands, &q_ids, q_tokens.len(), query.table.name(), &mut best);
            best
        };

        let scored = best_per_table
            .into_iter()
            .map(|(t, s)| Discovered {
                table: t.to_string(),
                score: s,
            })
            .collect();
        top_k(scored, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::{table, Table};

    fn city_table(name: &str, extra: &[&str]) -> Table {
        let mut rows: Vec<Vec<dialite_table::Value>> =
            ["berlin", "barcelona", "boston", "new delhi"]
                .iter()
                .map(|c| vec![(*c).into(), 1i64.into()])
                .collect();
        for e in extra {
            rows.push(vec![(*e).into(), 2i64.into()]);
        }
        Table::from_rows(name, &["city", "v"], rows).unwrap()
    }

    fn demo_lake() -> DataLake {
        let joinable = city_table("cases_by_city", &["madrid", "mumbai"]);
        let partial = table! {
            "partial"; ["place", "x"];
            ["berlin", 1], ["barcelona", 1], ["boston", 1],
            ["zzz1", 1], ["zzz2", 1],
        };
        let noise = table! {
            "noise"; ["animal", "n"];
            ["cat", 1], ["dog", 2], ["emu", 3],
        };
        DataLake::from_tables([joinable, partial, noise]).unwrap()
    }

    fn query() -> TableQuery {
        TableQuery::with_column(
            table! {
                "Q"; ["City", "Rate"];
                ["Berlin", 0.63],
                ["Barcelona", 0.82],
                ["Boston", 0.62],
                ["New Delhi", 0.55],
                ["Madrid", 0.71],
            },
            0,
        )
    }

    #[test]
    fn warm_build_reuses_sketches_and_matches_cold_output() {
        let lake = demo_lake();
        let cold = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let sketches = cold.export_sketches();
        assert_eq!(sketches.domains.len(), cold.indexed_domains());

        let warm = LshEnsembleDiscovery::build_scoped_warm(
            &lake,
            LshEnsembleConfig::default(),
            ShardScope::all(),
            &sketches,
        );
        assert_eq!(
            warm.sketch_work(),
            0,
            "full snapshot coverage must skip every MinHash pass"
        );
        assert_eq!(warm.indexed_domains(), cold.indexed_domains());
        assert_eq!(warm.posting_stats(), cold.posting_stats());
        assert_eq!(warm.discover(&query(), 5), cold.discover(&query(), 5));
    }

    #[test]
    fn foreign_family_sketches_fall_back_to_hashing() {
        let lake = demo_lake();
        let cold = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let mut sketches = cold.export_sketches();
        sketches.seed ^= 1; // pretend the snapshot came from another family
        let warm = LshEnsembleDiscovery::build_scoped_warm(
            &lake,
            LshEnsembleConfig::default(),
            ShardScope::all(),
            &sketches,
        );
        assert_eq!(
            warm.sketch_work(),
            cold.sketch_work(),
            "family mismatch must rebuild every sketch"
        );
        assert_eq!(warm.discover(&query(), 5), cold.discover(&query(), 5));
    }

    #[test]
    fn finds_fully_containing_table() {
        let engine = LshEnsembleDiscovery::build(&demo_lake(), LshEnsembleConfig::default());
        let hits = engine.discover(&query(), 5);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].table, "cases_by_city", "{hits:?}");
        assert!((hits[0].score - 1.0).abs() < 1e-12, "exact containment 1.0");
    }

    #[test]
    fn verification_filters_below_threshold() {
        // "partial" contains 3/5 of the query (< 0.7 threshold) → excluded
        // by exact verification even if LSH proposes it.
        let config = LshEnsembleConfig {
            threshold: 0.7,
            ..LshEnsembleConfig::default()
        };
        let engine = LshEnsembleDiscovery::build(&demo_lake(), config);
        let hits = engine.discover(&query(), 5);
        assert!(hits.iter().all(|d| d.table != "partial"), "{hits:?}");
        assert!(hits.iter().all(|d| d.table != "noise"), "{hits:?}");
    }

    #[test]
    fn lower_threshold_admits_partial_container() {
        // Containment 0.6 is decisively above the 0.3 threshold (the LSH
        // S-curve is centred at the threshold, so borderline pairs are
        // 50/50 by construction — tests stay away from the borderline).
        let config = LshEnsembleConfig {
            threshold: 0.3,
            ..LshEnsembleConfig::default()
        };
        let engine = LshEnsembleDiscovery::build(&demo_lake(), config);
        let hits = engine.discover(&query(), 5);
        assert!(
            hits.iter().any(|d| d.table == "partial"),
            "0.6-containment should pass a 0.3 threshold: {hits:?}"
        );
    }

    #[test]
    fn scores_are_exact_containment() {
        let config = LshEnsembleConfig {
            threshold: 0.3,
            ..LshEnsembleConfig::default()
        };
        let engine = LshEnsembleDiscovery::build(&demo_lake(), config);
        let hits = engine.discover(&query(), 5);
        let partial = hits.iter().find(|d| d.table == "partial").unwrap();
        assert!((partial.score - 3.0 / 5.0).abs() < 1e-9, "{partial:?}");
    }

    #[test]
    fn unmarked_query_column_defaults_to_first() {
        let engine = LshEnsembleDiscovery::build(&demo_lake(), LshEnsembleConfig::default());
        let q = TableQuery::new(query().table.as_ref().clone());
        let hits = engine.discover(&q, 5);
        assert_eq!(hits[0].table, "cases_by_city");
    }

    #[test]
    fn empty_lake_and_empty_query_column() {
        let engine = LshEnsembleDiscovery::build(&DataLake::new(), LshEnsembleConfig::default());
        assert_eq!(engine.indexed_domains(), 0);
        assert!(engine.discover(&query(), 5).is_empty());

        let engine = LshEnsembleDiscovery::build(&demo_lake(), LshEnsembleConfig::default());
        let empty_q = TableQuery::new(
            Table::from_rows(
                "e",
                &["c"],
                vec![vec![dialite_table::Value::null_missing()]],
            )
            .unwrap(),
        );
        assert!(engine.discover(&empty_q, 5).is_empty());
    }

    #[test]
    fn upserted_table_is_discoverable_immediately() {
        let mut lake = demo_lake();
        let mut engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let fresh = city_table("fresh_cities", &["madrid", "lagos"]);
        let slot = lake.add_table(fresh.clone()).unwrap();
        engine.upsert_table(slot, &fresh);
        let hits = engine.discover(&query(), 5);
        assert!(
            hits.iter()
                .any(|d| d.table == "fresh_cities" && (d.score - 1.0).abs() < 1e-12),
            "churned-in table must surface at once: {hits:?}"
        );
    }

    #[test]
    fn removed_table_stops_surfacing() {
        let mut lake = demo_lake();
        let mut engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let before = engine.indexed_domains();
        let (slot, _) = lake.remove_table("cases_by_city").unwrap();
        engine.remove_table(slot);
        assert!(engine.indexed_domains() < before);
        let hits = engine.discover(&query(), 5);
        assert!(hits.iter().all(|d| d.table != "cases_by_city"), "{hits:?}");
        // Removing an unindexed slot is a no-op.
        engine.remove_table(9999);
    }

    #[test]
    fn replacing_a_table_reflects_its_new_content() {
        let mut lake = demo_lake();
        let mut engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        // "partial" becomes a full superset of the query.
        let upgraded = city_table("partial", &["madrid"]);
        let slot = lake.replace_table(upgraded.clone());
        engine.upsert_table(slot, &upgraded);
        let hits = engine.discover(&query(), 5);
        let partial = hits.iter().find(|d| d.table == "partial").unwrap();
        assert!((partial.score - 1.0).abs() < 1e-12, "{hits:?}");
    }

    #[test]
    fn postings_track_live_domain_weight() {
        let lake = demo_lake();
        let mut engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let weight = |e: &LshEnsembleDiscovery| -> usize {
            e.domains.values().map(HashSet::len).sum::<usize>()
        };
        let (_, total) = engine.posting_stats();
        assert_eq!(total, weight(&engine));

        // Churn keeps the invariant.
        let slot = 0; // cases_by_city sits in some slot; remove by probing
        let slot = engine
            .table_names
            .iter()
            .find(|(_, n)| n.as_str() == "cases_by_city")
            .map(|(s, _)| *s)
            .unwrap_or(slot);
        engine.remove_table(slot);
        let (_, total) = engine.posting_stats();
        assert_eq!(total, weight(&engine));
    }

    #[test]
    fn pool_compaction_reclaims_removed_tables_tokens() {
        let config = LshEnsembleConfig {
            pool_compact_min: 0, // compact as soon as dead > live weight
            ..LshEnsembleConfig::default()
        };
        let mut lake = DataLake::new();
        // One small long-lived table, plus a big one that gets withdrawn.
        let keeper = table! { "keeper"; ["k"]; ["stay1"], ["stay2"] };
        let big_rows: Vec<Vec<dialite_table::Value>> = (0..200)
            .map(|i| vec![dialite_table::Value::Text(format!("dead{i}"))])
            .collect();
        let big = Table::from_rows("big", &["k"], big_rows).unwrap();
        let k_slot = lake.add_table(keeper.clone()).unwrap();
        let b_slot = lake.add_table(big.clone()).unwrap();
        let mut engine = LshEnsembleDiscovery::build(&lake, config);
        assert!(engine.pool_len() >= 202);
        assert_eq!(engine.pool_generation(), 0);

        lake.remove_table("big").unwrap();
        engine.remove_table(b_slot);
        assert_eq!(
            engine.pool_generation(),
            1,
            "200 dead vs 2 live tokens must trigger compaction"
        );
        assert_eq!(engine.pool_len(), 2, "only the keeper's tokens survive");

        // Post-compaction queries still verify correctly over remapped ids.
        let q = TableQuery::with_column(table! { "q"; ["k"]; ["stay1"], ["stay2"] }, 0);
        let hits = engine.discover(&q, 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].table, "keeper");
        assert!((hits[0].score - 1.0).abs() < 1e-12);
        let _ = k_slot;
    }

    #[test]
    fn small_query_posting_path_matches_full_scan() {
        // The exact fallback is a posting merge; forcing the legacy
        // scan-everything shape via verify_candidates must agree.
        let lake = demo_lake();
        let engine = LshEnsembleDiscovery::build(
            &lake,
            LshEnsembleConfig {
                threshold: 0.3,
                ..LshEnsembleConfig::default()
            },
        );
        let q = query();
        let q_tokens = q.table.column_token_set(0);
        let q_ids = engine.query_token_ids(&q_tokens);
        let (merged, scored) = engine.exact_best_per_table(&q_ids, q_tokens.len(), q.table.name());
        assert!(scored >= merged.len(), "scored counts every merged domain");
        let mut scanned = HashMap::new();
        engine.verify_candidates(
            engine.domains.keys().copied(),
            &q_ids,
            q_tokens.len(),
            q.table.name(),
            &mut scanned,
        );
        assert_eq!(merged, scanned);
    }
}
