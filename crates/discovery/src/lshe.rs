//! Joinable-table search over the LSH Ensemble containment index, with
//! exact verification of candidates — the discovery backend the demo drives
//! through `datasketch` (paper §2.1, §3.1).
//!
//! Column domains are identified by `(table slot, col)` pairs — the stable
//! slot indices of the mutable [`DataLake`] — and stored as token-**id**
//! sets over a shared [`StringPool`], so verification probes `u32` sets
//! instead of re-hashing strings, and table names never need to be embedded
//! in (collision-prone) composite string keys.
//!
//! The engine is incrementally maintainable: [`LshEnsembleDiscovery::
//! upsert_table`] / [`LshEnsembleDiscovery::remove_table`] apply one
//! table's worth of work (hash its domains, retire its dead domain keys)
//! instead of rebuilding over the whole lake — `LakeIndex` drives these
//! from the lake changelog. Staged (not-yet-rebalanced) domains are
//! exact-scanned at query time, so a freshly added table is discoverable
//! immediately, never an LSH false negative.

use std::collections::{HashMap, HashSet};

use dialite_minhash::{LshEnsemble, LshEnsembleBuilder, MinHasher};
use dialite_table::{DataLake, Table};

use crate::pool::StringPool;
use crate::types::{top_k, Discovered, Discovery, TableQuery};

/// Configuration of the joinable search.
#[derive(Debug, Clone)]
pub struct LshEnsembleConfig {
    /// MinHash permutations (signature length).
    pub num_perm: usize,
    /// Size partitions of the ensemble.
    pub num_partitions: usize,
    /// Containment threshold a candidate column must (probabilistically)
    /// exceed to be retrieved, and (exactly) to be reported.
    pub threshold: f64,
    /// Seed for the hash family.
    pub seed: u64,
    /// Queries with fewer distinct tokens than this bypass the sketch index
    /// and scan the stored domains exactly. MinHash banding has ~50% recall
    /// at the threshold and tiny sets sit near it by construction; exact
    /// scanning a handful of tokens is cheaper than a false negative.
    pub exact_fallback_below: usize,
    /// Fraction of live domains that may be dirty (staged inserts +
    /// tombstones) before a mutation triggers ensemble re-partitioning.
    pub rebalance_dirtiness: f64,
}

impl Default for LshEnsembleConfig {
    fn default() -> Self {
        LshEnsembleConfig {
            num_perm: 256,
            num_partitions: 8,
            threshold: 0.5,
            seed: 0x1517,
            exact_fallback_below: 16,
            rebalance_dirtiness: 0.25,
        }
    }
}

/// A column domain's identity in the index: `(table slot index, column)`.
type DomainKey = (u32, u32);

/// Joinable-table discovery: find lake tables with a column whose domain
/// contains (most of) the query column's domain.
pub struct LshEnsembleDiscovery {
    config: LshEnsembleConfig,
    hasher: MinHasher,
    ensemble: LshEnsemble<DomainKey>,
    /// `(table slot, col)` → interned token-id set, for exact verification.
    domains: HashMap<DomainKey, HashSet<u32>>,
    /// Lake table names by slot index (live tables only).
    table_names: HashMap<u32, String>,
    /// Indexed column indices per slot, so retiring a table touches only
    /// its own domains.
    cols_of: HashMap<u32, Vec<u32>>,
    /// The token dictionary shared by all indexed domains. Tokens of
    /// removed tables linger (dead dictionary weight, no correctness
    /// impact); a full rebuild resets it.
    pool: StringPool,
}

impl LshEnsembleDiscovery {
    /// Index every column of every lake table.
    pub fn build(lake: &DataLake, config: LshEnsembleConfig) -> LshEnsembleDiscovery {
        let mut builder = LshEnsembleBuilder::new(config.num_perm, config.seed);
        let mut domains = HashMap::new();
        let mut table_names = HashMap::new();
        let mut cols_of: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut pool = StringPool::new();
        for (t, table) in lake.entries() {
            table_names.insert(t, table.name().to_string());
            for c in 0..table.column_count() {
                let tokens = table.column_token_set(c);
                if tokens.is_empty() {
                    continue;
                }
                let key: DomainKey = (t, c as u32);
                builder.insert_tokens(key, tokens.iter().map(String::as_str));
                domains.insert(key, tokens.iter().map(|tok| pool.intern(tok)).collect());
                cols_of.entry(t).or_default().push(c as u32);
            }
        }
        let hasher = builder.hasher().clone();
        let mut ensemble = builder.build(config.num_partitions);
        ensemble.set_rebalance_threshold(config.rebalance_dirtiness);
        LshEnsembleDiscovery {
            config,
            hasher,
            ensemble,
            domains,
            table_names,
            cols_of,
            pool,
        }
    }

    /// Index (or re-index) one table under its lake slot. `O(table)`.
    pub fn upsert_table(&mut self, slot: u32, table: &Table) {
        self.remove_table(slot);
        self.table_names.insert(slot, table.name().to_string());
        for c in 0..table.column_count() {
            let tokens = table.column_token_set(c);
            if tokens.is_empty() {
                continue;
            }
            let key: DomainKey = (slot, c as u32);
            let sig = self.hasher.signature(tokens.iter().map(String::as_str));
            self.ensemble.insert(key, tokens.len(), sig);
            self.domains.insert(
                key,
                tokens.iter().map(|tok| self.pool.intern(tok)).collect(),
            );
            self.cols_of.entry(slot).or_default().push(c as u32);
        }
    }

    /// Retire every domain of the table occupying a lake slot.
    /// `O(columns of that table)`.
    pub fn remove_table(&mut self, slot: u32) {
        if self.table_names.remove(&slot).is_none() {
            return;
        }
        for c in self.cols_of.remove(&slot).unwrap_or_default() {
            let key: DomainKey = (slot, c);
            self.domains.remove(&key);
            self.ensemble.remove(&key);
        }
    }

    /// Number of indexed column domains.
    pub fn indexed_domains(&self) -> usize {
        self.domains.len()
    }
}

impl Discovery for LshEnsembleDiscovery {
    fn name(&self) -> &str {
        "lsh-ensemble"
    }

    fn discover(&self, query: &TableQuery, k: usize) -> Vec<Discovered> {
        let col = query.effective_column();
        if col >= query.table.column_count() {
            return Vec::new();
        }
        let q_tokens = query.table.column_token_set(col);
        if q_tokens.is_empty() {
            return Vec::new();
        }
        let candidates: HashSet<DomainKey> = if q_tokens.len() < self.config.exact_fallback_below {
            // Exact scan: the keys are two copied words each — no cloning
            // of the stored domains or their identities.
            self.domains.keys().copied().collect()
        } else {
            let sig = self.hasher.signature(q_tokens.iter().map(String::as_str));
            let mut cands: HashSet<DomainKey> = self
                .ensemble
                .query(&sig, q_tokens.len(), self.config.threshold)
                .into_iter()
                .collect();
            // Domains staged since the last rebalance sit in best-effort
            // partitions; scan them exactly so fresh churn is never an LSH
            // false negative.
            cands.extend(self.ensemble.staged_keys().copied());
            cands
        };

        // Resolve the query's tokens through the shared pool once; a token
        // the pool has never seen occurs in no domain.
        let q_ids: Vec<Option<u32>> = q_tokens.iter().map(|t| self.pool.get(t)).collect();

        // Exact verification + per-table aggregation (best column wins).
        let mut best_per_table: HashMap<&str, f64> = HashMap::new();
        for key in candidates {
            let Some(domain) = self.domains.get(&key) else {
                continue;
            };
            // Containment |Q ∩ X| / |Q| over interned token ids.
            let overlap = q_ids
                .iter()
                .filter(|id| id.is_some_and(|id| domain.contains(&id)))
                .count();
            let c = overlap as f64 / q_tokens.len() as f64;
            if c + 1e-12 < self.config.threshold {
                continue; // LSH false positive
            }
            let Some(table) = self.table_names.get(&key.0) else {
                continue;
            };
            if table == query.table.name() {
                continue;
            }
            let entry = best_per_table.entry(table.as_str()).or_insert(0.0);
            if c > *entry {
                *entry = c;
            }
        }
        let scored = best_per_table
            .into_iter()
            .map(|(t, s)| Discovered {
                table: t.to_string(),
                score: s,
            })
            .collect();
        top_k(scored, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::{table, Table};

    fn city_table(name: &str, extra: &[&str]) -> Table {
        let mut rows: Vec<Vec<dialite_table::Value>> =
            ["berlin", "barcelona", "boston", "new delhi"]
                .iter()
                .map(|c| vec![(*c).into(), 1i64.into()])
                .collect();
        for e in extra {
            rows.push(vec![(*e).into(), 2i64.into()]);
        }
        Table::from_rows(name, &["city", "v"], rows).unwrap()
    }

    fn demo_lake() -> DataLake {
        let joinable = city_table("cases_by_city", &["madrid", "mumbai"]);
        let partial = table! {
            "partial"; ["place", "x"];
            ["berlin", 1], ["barcelona", 1], ["boston", 1],
            ["zzz1", 1], ["zzz2", 1],
        };
        let noise = table! {
            "noise"; ["animal", "n"];
            ["cat", 1], ["dog", 2], ["emu", 3],
        };
        DataLake::from_tables([joinable, partial, noise]).unwrap()
    }

    fn query() -> TableQuery {
        TableQuery::with_column(
            table! {
                "Q"; ["City", "Rate"];
                ["Berlin", 0.63],
                ["Barcelona", 0.82],
                ["Boston", 0.62],
                ["New Delhi", 0.55],
                ["Madrid", 0.71],
            },
            0,
        )
    }

    #[test]
    fn finds_fully_containing_table() {
        let engine = LshEnsembleDiscovery::build(&demo_lake(), LshEnsembleConfig::default());
        let hits = engine.discover(&query(), 5);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].table, "cases_by_city", "{hits:?}");
        assert!((hits[0].score - 1.0).abs() < 1e-12, "exact containment 1.0");
    }

    #[test]
    fn verification_filters_below_threshold() {
        // "partial" contains 3/5 of the query (< 0.7 threshold) → excluded
        // by exact verification even if LSH proposes it.
        let config = LshEnsembleConfig {
            threshold: 0.7,
            ..LshEnsembleConfig::default()
        };
        let engine = LshEnsembleDiscovery::build(&demo_lake(), config);
        let hits = engine.discover(&query(), 5);
        assert!(hits.iter().all(|d| d.table != "partial"), "{hits:?}");
        assert!(hits.iter().all(|d| d.table != "noise"), "{hits:?}");
    }

    #[test]
    fn lower_threshold_admits_partial_container() {
        // Containment 0.6 is decisively above the 0.3 threshold (the LSH
        // S-curve is centred at the threshold, so borderline pairs are
        // 50/50 by construction — tests stay away from the borderline).
        let config = LshEnsembleConfig {
            threshold: 0.3,
            ..LshEnsembleConfig::default()
        };
        let engine = LshEnsembleDiscovery::build(&demo_lake(), config);
        let hits = engine.discover(&query(), 5);
        assert!(
            hits.iter().any(|d| d.table == "partial"),
            "0.6-containment should pass a 0.3 threshold: {hits:?}"
        );
    }

    #[test]
    fn scores_are_exact_containment() {
        let config = LshEnsembleConfig {
            threshold: 0.3,
            ..LshEnsembleConfig::default()
        };
        let engine = LshEnsembleDiscovery::build(&demo_lake(), config);
        let hits = engine.discover(&query(), 5);
        let partial = hits.iter().find(|d| d.table == "partial").unwrap();
        assert!((partial.score - 3.0 / 5.0).abs() < 1e-9, "{partial:?}");
    }

    #[test]
    fn unmarked_query_column_defaults_to_first() {
        let engine = LshEnsembleDiscovery::build(&demo_lake(), LshEnsembleConfig::default());
        let q = TableQuery::new(query().table.as_ref().clone());
        let hits = engine.discover(&q, 5);
        assert_eq!(hits[0].table, "cases_by_city");
    }

    #[test]
    fn empty_lake_and_empty_query_column() {
        let engine = LshEnsembleDiscovery::build(&DataLake::new(), LshEnsembleConfig::default());
        assert_eq!(engine.indexed_domains(), 0);
        assert!(engine.discover(&query(), 5).is_empty());

        let engine = LshEnsembleDiscovery::build(&demo_lake(), LshEnsembleConfig::default());
        let empty_q = TableQuery::new(
            Table::from_rows(
                "e",
                &["c"],
                vec![vec![dialite_table::Value::null_missing()]],
            )
            .unwrap(),
        );
        assert!(engine.discover(&empty_q, 5).is_empty());
    }

    #[test]
    fn upserted_table_is_discoverable_immediately() {
        let mut lake = demo_lake();
        let mut engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let fresh = city_table("fresh_cities", &["madrid", "lagos"]);
        let slot = lake.add_table(fresh.clone()).unwrap();
        engine.upsert_table(slot, &fresh);
        let hits = engine.discover(&query(), 5);
        assert!(
            hits.iter()
                .any(|d| d.table == "fresh_cities" && (d.score - 1.0).abs() < 1e-12),
            "churned-in table must surface at once: {hits:?}"
        );
    }

    #[test]
    fn removed_table_stops_surfacing() {
        let mut lake = demo_lake();
        let mut engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        let before = engine.indexed_domains();
        let (slot, _) = lake.remove_table("cases_by_city").unwrap();
        engine.remove_table(slot);
        assert!(engine.indexed_domains() < before);
        let hits = engine.discover(&query(), 5);
        assert!(hits.iter().all(|d| d.table != "cases_by_city"), "{hits:?}");
        // Removing an unindexed slot is a no-op.
        engine.remove_table(9999);
    }

    #[test]
    fn replacing_a_table_reflects_its_new_content() {
        let mut lake = demo_lake();
        let mut engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
        // "partial" becomes a full superset of the query.
        let upgraded = city_table("partial", &["madrid"]);
        let slot = lake.replace_table(upgraded.clone());
        engine.upsert_table(slot, &upgraded);
        let hits = engine.discover(&query(), 5);
        let partial = hits.iter().find(|d| d.table == "partial").unwrap();
        assert!((partial.score - 1.0).abs() < 1e-12, "{hits:?}");
    }
}
