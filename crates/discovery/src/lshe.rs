//! Joinable-table search over the LSH Ensemble containment index, with
//! exact verification of candidates — the discovery backend the demo drives
//! through `datasketch` (paper §2.1, §3.1).
//!
//! Column domains are identified by `(table_idx, col)` pairs and stored as
//! token-**id** sets over a shared [`StringPool`], so verification probes
//! `u32` sets instead of re-hashing strings, and table names never need to
//! be embedded in (collision-prone) composite string keys.

use std::collections::{HashMap, HashSet};

use dialite_minhash::{LshEnsemble, LshEnsembleBuilder, MinHasher};
use dialite_table::DataLake;

use crate::pool::StringPool;
use crate::types::{top_k, Discovered, Discovery, TableQuery};

/// Configuration of the joinable search.
#[derive(Debug, Clone)]
pub struct LshEnsembleConfig {
    /// MinHash permutations (signature length).
    pub num_perm: usize,
    /// Size partitions of the ensemble.
    pub num_partitions: usize,
    /// Containment threshold a candidate column must (probabilistically)
    /// exceed to be retrieved, and (exactly) to be reported.
    pub threshold: f64,
    /// Seed for the hash family.
    pub seed: u64,
    /// Queries with fewer distinct tokens than this bypass the sketch index
    /// and scan the stored domains exactly. MinHash banding has ~50% recall
    /// at the threshold and tiny sets sit near it by construction; exact
    /// scanning a handful of tokens is cheaper than a false negative.
    pub exact_fallback_below: usize,
}

impl Default for LshEnsembleConfig {
    fn default() -> Self {
        LshEnsembleConfig {
            num_perm: 256,
            num_partitions: 8,
            threshold: 0.5,
            seed: 0x1517,
            exact_fallback_below: 16,
        }
    }
}

/// A column domain's identity in the index: `(table index, column index)`.
type DomainKey = (u32, u32);

/// Joinable-table discovery: find lake tables with a column whose domain
/// contains (most of) the query column's domain.
pub struct LshEnsembleDiscovery {
    config: LshEnsembleConfig,
    hasher: MinHasher,
    ensemble: LshEnsemble<DomainKey>,
    /// `(table_idx, col)` → interned token-id set, for exact verification.
    domains: HashMap<DomainKey, HashSet<u32>>,
    /// Lake table names, indexed by the `table_idx` of a [`DomainKey`].
    table_names: Vec<String>,
    /// The token dictionary shared by all indexed domains.
    pool: StringPool,
}

impl LshEnsembleDiscovery {
    /// Index every column of every lake table.
    pub fn build(lake: &DataLake, config: LshEnsembleConfig) -> LshEnsembleDiscovery {
        let mut builder = LshEnsembleBuilder::new(config.num_perm, config.seed);
        let mut domains = HashMap::new();
        let mut table_names = Vec::new();
        let mut pool = StringPool::new();
        for (t, table) in lake.tables().enumerate() {
            table_names.push(table.name().to_string());
            for c in 0..table.column_count() {
                let tokens = table.column_token_set(c);
                if tokens.is_empty() {
                    continue;
                }
                let key: DomainKey = (t as u32, c as u32);
                builder.insert_tokens(key, tokens.iter().map(String::as_str));
                domains.insert(key, tokens.iter().map(|tok| pool.intern(tok)).collect());
            }
        }
        let hasher = builder.hasher().clone();
        let ensemble = builder.build(config.num_partitions);
        LshEnsembleDiscovery {
            config,
            hasher,
            ensemble,
            domains,
            table_names,
            pool,
        }
    }

    /// Number of indexed column domains.
    pub fn indexed_domains(&self) -> usize {
        self.domains.len()
    }
}

impl Discovery for LshEnsembleDiscovery {
    fn name(&self) -> &str {
        "lsh-ensemble"
    }

    fn discover(&self, query: &TableQuery, k: usize) -> Vec<Discovered> {
        let col = query.effective_column();
        if col >= query.table.column_count() {
            return Vec::new();
        }
        let q_tokens = query.table.column_token_set(col);
        if q_tokens.is_empty() {
            return Vec::new();
        }
        let candidates: Vec<DomainKey> = if q_tokens.len() < self.config.exact_fallback_below {
            // Exact scan: the keys are two copied words each — no cloning
            // of the stored domains or their identities.
            self.domains.keys().copied().collect()
        } else {
            let sig = self.hasher.signature(q_tokens.iter().map(String::as_str));
            self.ensemble
                .query(&sig, q_tokens.len(), self.config.threshold)
        };

        // Resolve the query's tokens through the shared pool once; a token
        // the pool has never seen occurs in no domain.
        let q_ids: Vec<Option<u32>> = q_tokens.iter().map(|t| self.pool.get(t)).collect();

        // Exact verification + per-table aggregation (best column wins).
        let mut best_per_table: HashMap<&str, f64> = HashMap::new();
        for key in candidates {
            let Some(domain) = self.domains.get(&key) else {
                continue;
            };
            // Containment |Q ∩ X| / |Q| over interned token ids.
            let overlap = q_ids
                .iter()
                .filter(|id| id.is_some_and(|id| domain.contains(&id)))
                .count();
            let c = overlap as f64 / q_tokens.len() as f64;
            if c + 1e-12 < self.config.threshold {
                continue; // LSH false positive
            }
            let table = self.table_names[key.0 as usize].as_str();
            if table == query.table.name() {
                continue;
            }
            let entry = best_per_table.entry(table).or_insert(0.0);
            if c > *entry {
                *entry = c;
            }
        }
        let scored = best_per_table
            .into_iter()
            .map(|(t, s)| Discovered {
                table: t.to_string(),
                score: s,
            })
            .collect();
        top_k(scored, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::{table, Table};

    fn city_table(name: &str, extra: &[&str]) -> Table {
        let mut rows: Vec<Vec<dialite_table::Value>> =
            ["berlin", "barcelona", "boston", "new delhi"]
                .iter()
                .map(|c| vec![(*c).into(), 1i64.into()])
                .collect();
        for e in extra {
            rows.push(vec![(*e).into(), 2i64.into()]);
        }
        Table::from_rows(name, &["city", "v"], rows).unwrap()
    }

    fn demo_lake() -> DataLake {
        let joinable = city_table("cases_by_city", &["madrid", "mumbai"]);
        let partial = table! {
            "partial"; ["place", "x"];
            ["berlin", 1], ["barcelona", 1], ["boston", 1],
            ["zzz1", 1], ["zzz2", 1],
        };
        let noise = table! {
            "noise"; ["animal", "n"];
            ["cat", 1], ["dog", 2], ["emu", 3],
        };
        DataLake::from_tables([joinable, partial, noise]).unwrap()
    }

    fn query() -> TableQuery {
        TableQuery::with_column(
            table! {
                "Q"; ["City", "Rate"];
                ["Berlin", 0.63],
                ["Barcelona", 0.82],
                ["Boston", 0.62],
                ["New Delhi", 0.55],
                ["Madrid", 0.71],
            },
            0,
        )
    }

    #[test]
    fn finds_fully_containing_table() {
        let engine = LshEnsembleDiscovery::build(&demo_lake(), LshEnsembleConfig::default());
        let hits = engine.discover(&query(), 5);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].table, "cases_by_city", "{hits:?}");
        assert!((hits[0].score - 1.0).abs() < 1e-12, "exact containment 1.0");
    }

    #[test]
    fn verification_filters_below_threshold() {
        // "partial" contains 3/5 of the query (< 0.7 threshold) → excluded
        // by exact verification even if LSH proposes it.
        let config = LshEnsembleConfig {
            threshold: 0.7,
            ..LshEnsembleConfig::default()
        };
        let engine = LshEnsembleDiscovery::build(&demo_lake(), config);
        let hits = engine.discover(&query(), 5);
        assert!(hits.iter().all(|d| d.table != "partial"), "{hits:?}");
        assert!(hits.iter().all(|d| d.table != "noise"), "{hits:?}");
    }

    #[test]
    fn lower_threshold_admits_partial_container() {
        // Containment 0.6 is decisively above the 0.3 threshold (the LSH
        // S-curve is centred at the threshold, so borderline pairs are
        // 50/50 by construction — tests stay away from the borderline).
        let config = LshEnsembleConfig {
            threshold: 0.3,
            ..LshEnsembleConfig::default()
        };
        let engine = LshEnsembleDiscovery::build(&demo_lake(), config);
        let hits = engine.discover(&query(), 5);
        assert!(
            hits.iter().any(|d| d.table == "partial"),
            "0.6-containment should pass a 0.3 threshold: {hits:?}"
        );
    }

    #[test]
    fn scores_are_exact_containment() {
        let config = LshEnsembleConfig {
            threshold: 0.3,
            ..LshEnsembleConfig::default()
        };
        let engine = LshEnsembleDiscovery::build(&demo_lake(), config);
        let hits = engine.discover(&query(), 5);
        let partial = hits.iter().find(|d| d.table == "partial").unwrap();
        assert!((partial.score - 3.0 / 5.0).abs() < 1e-9, "{partial:?}");
    }

    #[test]
    fn unmarked_query_column_defaults_to_first() {
        let engine = LshEnsembleDiscovery::build(&demo_lake(), LshEnsembleConfig::default());
        let q = TableQuery::new(query().table.as_ref().clone());
        let hits = engine.discover(&q, 5);
        assert_eq!(hits[0].table, "cases_by_city");
    }

    #[test]
    fn empty_lake_and_empty_query_column() {
        let engine = LshEnsembleDiscovery::build(&DataLake::new(), LshEnsembleConfig::default());
        assert_eq!(engine.indexed_domains(), 0);
        assert!(engine.discover(&query(), 5).is_empty());

        let engine = LshEnsembleDiscovery::build(&demo_lake(), LshEnsembleConfig::default());
        let empty_q = TableQuery::new(
            Table::from_rows(
                "e",
                &["c"],
                vec![vec![dialite_table::Value::null_missing()]],
            )
            .unwrap(),
        );
        assert!(engine.discover(&empty_q, 5).is_empty());
    }
}
