//! Discovery-as-a-service: the concurrent serving layer over a shared
//! [`ShardedLakeIndex`].
//!
//! The rest of this crate is a one-caller library: an index answers
//! queries under `&self`, but nothing owns the lake, serializes churn
//! against reads, bounds how many requests run at once, or measures tail
//! latency under load. [`DiscoveryService`] is that missing layer:
//!
//! * **Lake lock + sharded index.** The service owns the lake behind its
//!   own `RwLock` and serves a [`ShardedLakeIndex`] beside it. Queries
//!   never touch the lake lock at all — they fan out across the index
//!   shards under per-shard read guards, with the version-stamped
//!   consistent-snapshot fan-out keeping every response attributable to
//!   exactly one lake state. Mutations take the lake write guard, apply
//!   the change and [`sync`](ShardedLakeIndex::sync) the shards before
//!   releasing it — write-locking **one shard at a time**, so concurrent
//!   queries keep flowing on every other shard. Responses are stamped
//!   with the version of the snapshot they saw, which is what makes the
//!   linearization oracle (`tests/serving_oracle.rs`) checkable: every
//!   concurrent response must be byte-identical to a single-threaded
//!   [`LakeIndex::discover_all_budgeted`](crate::LakeIndex::discover_all_budgeted)
//!   against the stamped version.
//! * **Admission control.** A bounded in-flight permit counter rejects
//!   over-capacity queries immediately with [`ServingError::Busy`] —
//!   never a block, never a partial result — so saturated serving degrades
//!   by shedding load instead of by unbounded queueing.
//! * **Per-request budgets.** Every query carries its own
//!   [`DiscoveryBudget`], so one expensive caller cannot starve the rest
//!   by monopolizing engine work inside the shard read guards.
//! * **[`ServingTelemetry`].** Request counts, `Busy` rejections and
//!   query/churn latency histograms with exact percentile export
//!   ([`LatencyHistogram::percentile`]), accumulated per-thread (sharded)
//!   and merged on snapshot, so the hot path never serializes on a
//!   telemetry lock.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use dialite_kb::KnowledgeBase;
use dialite_table::DataLake;

use crate::index::LakeIndexConfig;
use crate::shard::ShardedLakeIndex;
use crate::telemetry::{telemetry_shard, LatencyHistogram, TELEMETRY_SHARDS};
use crate::topk::DiscoveryBudget;
use crate::types::{Discovered, TableQuery};

/// Configuration of a [`DiscoveryService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Maximum queries in flight at once; the `max_in_flight + 1`-th
    /// concurrent query is rejected with [`ServingError::Busy`]. The
    /// default is generous — small deployments never reject — while still
    /// bounding worst-case memory and lock-queue depth.
    pub max_in_flight: usize,
    /// Default per-request budget for [`DiscoveryService::query_default`].
    pub budget: DiscoveryBudget,
    /// Default per-engine result count for
    /// [`DiscoveryService::query_default`].
    pub k: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            max_in_flight: 1024,
            budget: DiscoveryBudget::default(),
            k: 5,
        }
    }
}

impl ServingConfig {
    /// Replace the in-flight admission capacity.
    pub fn with_max_in_flight(mut self, n: usize) -> ServingConfig {
        self.max_in_flight = n;
        self
    }

    /// Replace the default per-request budget.
    pub fn with_budget(mut self, budget: DiscoveryBudget) -> ServingConfig {
        self.budget = budget;
        self
    }

    /// Replace the default per-engine result count.
    pub fn with_k(mut self, k: usize) -> ServingConfig {
        self.k = k;
        self
    }
}

/// Why a serving request was not answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingError {
    /// Admission control rejected the request: `max_in_flight` queries
    /// were already running. The request did no engine work and holds no
    /// partial result — retry is safe.
    Busy,
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::Busy => write!(f, "service busy: in-flight request limit reached"),
        }
    }
}

impl std::error::Error for ServingError {}

/// One answered discovery request: the per-engine results plus the lake
/// version they were computed against. The version stamp is the
/// serving-layer consistency contract — the results are exactly what a
/// single-threaded
/// [`LakeIndex::discover_all_budgeted`](crate::LakeIndex::discover_all_budgeted)
/// returns against the lake state that version names (pinned by
/// `tests/serving_oracle.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct ServingResponse {
    /// The lake version the query was served against.
    pub version: u64,
    /// Per-engine hit lists, in the same shape and order as
    /// [`ShardedLakeIndex::discover_all_budgeted`].
    pub results: Vec<(String, Vec<Discovered>)>,
}

/// One window of serving-layer observations: request outcomes plus
/// query/churn latency histograms ([`LatencyHistogram`], so tail
/// percentiles export via [`LatencyHistogram::percentiles`]). Mergeable
/// like [`DiscoveryTelemetry`](crate::DiscoveryTelemetry): per-thread
/// shards (or per-replica windows) [`merge`](ServingTelemetry::merge)
/// into one view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServingTelemetry {
    /// Queries answered.
    pub served: u64,
    /// Queries rejected with [`ServingError::Busy`].
    pub rejected: u64,
    /// Mutations applied (each one lake change + index sync).
    pub mutations: u64,
    /// End-to-end query latency (admission to response, read-guard wait
    /// included — this is what a caller experiences).
    pub query_latency: LatencyHistogram,
    /// End-to-end mutation latency (write-guard wait + apply + sync).
    pub churn_latency: LatencyHistogram,
}

impl ServingTelemetry {
    /// Add another window into this one.
    pub fn merge(&mut self, other: &ServingTelemetry) {
        self.served += other.served;
        self.rejected += other.rejected;
        self.mutations += other.mutations;
        self.query_latency.merge(&other.query_latency);
        self.churn_latency.merge(&other.churn_latency);
    }

    /// Zero the window.
    pub fn reset(&mut self) {
        *self = ServingTelemetry::default();
    }

    /// Compact human-readable report: outcomes plus query tail latency.
    pub fn summary(&self) -> String {
        format!(
            "served {} / rejected {} / mutations {}\n  query latency: {}\n  churn latency: {}",
            self.served,
            self.rejected,
            self.mutations,
            self.query_latency.percentiles().render(),
            self.churn_latency.percentiles().render(),
        )
    }
}

/// Decrements the in-flight counter on drop, so a panicking query cannot
/// leak its permit.
struct AdmissionPermit<'a>(&'a AtomicUsize);

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// The concurrent discovery service — a shared, churn-following
/// [`ShardedLakeIndex`] behind admission control, serving version-stamped
/// budgeted queries from many threads at once. [`DiscoveryService::new`]
/// serves a single shard (the plain [`LakeIndex`](crate::LakeIndex),
/// byte-for-byte); [`DiscoveryService::with_shards`] stripes the lake
/// across N shards so writers only write-lock one shard at a time.
///
/// ```
/// use std::sync::Arc;
/// use dialite_discovery::{
///     DiscoveryBudget, DiscoveryService, LakeIndexConfig, ServingConfig, TableQuery,
/// };
/// use dialite_kb::curated::covid_kb;
/// use dialite_table::fixtures;
///
/// let service = DiscoveryService::new(
///     fixtures::covid_lake(),
///     Arc::new(covid_kb()),
///     LakeIndexConfig::default(),
///     ServingConfig::default(),
/// );
///
/// let query = TableQuery::with_column(fixtures::fig2_query(), 1); // City
/// let response = service
///     .query(&query, 3, &DiscoveryBudget::default())
///     .expect("capacity available");
/// assert_eq!(response.version, service.version());
/// assert!(response.results.iter().any(|(_, hits)| {
///     hits.iter().any(|d| d.table == "T3")
/// }));
///
/// // Churn is serialized against reads; the version stamp advances.
/// let v = service.mutate(|lake| lake.remove("animals"));
/// assert!(v > response.version);
/// assert_eq!(service.telemetry().served, 1);
/// ```
pub struct DiscoveryService {
    /// The served lake. Mutations hold the write guard across the lake
    /// change *and* the index sync, so the index is never behind a state
    /// a reader of this lock can observe; queries never take it at all.
    lake: RwLock<DataLake>,
    /// The sharded execution layer queries fan out over. Its own
    /// consistent-snapshot protocol (per-shard version stamps) replaces
    /// the old single state lock on the query path.
    index: ShardedLakeIndex,
    config: ServingConfig,
    in_flight: AtomicUsize,
    /// Per-thread telemetry shards — the hot path locks only the calling
    /// thread's shard; snapshots merge.
    telemetry: [Mutex<ServingTelemetry>; TELEMETRY_SHARDS],
}

impl DiscoveryService {
    /// Build the service: index the lake eagerly and take ownership of
    /// it. One storage shard — byte-for-byte the single-`LakeIndex`
    /// service; use [`DiscoveryService::with_shards`] to stripe.
    pub fn new(
        lake: DataLake,
        kb: Arc<KnowledgeBase>,
        index_config: LakeIndexConfig,
        config: ServingConfig,
    ) -> DiscoveryService {
        DiscoveryService::with_shards(lake, kb, index_config, config, 1)
    }

    /// [`DiscoveryService::new`] with the lake striped across `shards`
    /// index shards (0 is clamped to 1): queries fan out in parallel, and
    /// mutations write-lock one shard at a time instead of the world.
    pub fn with_shards(
        lake: DataLake,
        kb: Arc<KnowledgeBase>,
        index_config: LakeIndexConfig,
        config: ServingConfig,
        shards: usize,
    ) -> DiscoveryService {
        let index = ShardedLakeIndex::build(&lake, kb, index_config, shards);
        DiscoveryService {
            lake: RwLock::new(lake),
            index,
            config,
            in_flight: AtomicUsize::new(0),
            telemetry: std::array::from_fn(|_| Mutex::new(ServingTelemetry::default())),
        }
    }

    /// Build the service around an already-built index — the warm-start
    /// path: a durability layer can rebuild the index from persisted
    /// sketches and hand it over instead of paying a cold
    /// [`ShardedLakeIndex::build`]. The index is delta-synced to the
    /// lake's current version before serving, so a slightly stale index
    /// (e.g. built over a snapshot, with the commitlog tail still to
    /// replay) is caught up here.
    pub fn with_prebuilt(
        lake: DataLake,
        index: ShardedLakeIndex,
        config: ServingConfig,
    ) -> DiscoveryService {
        index.sync(&lake);
        DiscoveryService {
            lake: RwLock::new(lake),
            index,
            config,
            in_flight: AtomicUsize::new(0),
            telemetry: std::array::from_fn(|_| Mutex::new(ServingTelemetry::default())),
        }
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Number of storage shards the served index stripes the lake across.
    pub fn shard_count(&self) -> usize {
        self.index.shard_count()
    }

    /// The lake version the service currently serves.
    pub fn version(&self) -> u64 {
        self.index.version()
    }

    /// Number of tables currently in the served lake.
    pub fn len(&self) -> usize {
        self.lake.read().expect("lake lock").len()
    }

    /// `true` when the served lake holds no tables.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Try to take an in-flight permit; `None` means over capacity.
    fn try_admit(&self) -> Option<AdmissionPermit<'_>> {
        let mut current = self.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= self.config.max_in_flight {
                return None;
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(AdmissionPermit(&self.in_flight)),
                Err(observed) => current = observed,
            }
        }
    }

    /// The calling thread's telemetry shard.
    fn shard(&self) -> &Mutex<ServingTelemetry> {
        &self.telemetry[telemetry_shard()]
    }

    /// Answer one discovery request under an explicit per-request budget.
    ///
    /// Admission control runs first: over capacity, the request is
    /// rejected with [`ServingError::Busy`] without touching any index
    /// shard or doing any engine work. Admitted requests fan out through
    /// [`ShardedLakeIndex::discover_all_budgeted_versioned`] — never
    /// taking the lake lock — and return results stamped with the version
    /// of the consistent shard snapshot they saw.
    pub fn query(
        &self,
        query: &TableQuery,
        k: usize,
        budget: &DiscoveryBudget,
    ) -> Result<ServingResponse, ServingError> {
        let Some(_permit) = self.try_admit() else {
            self.shard().lock().expect("serving telemetry").rejected += 1;
            return Err(ServingError::Busy);
        };
        let t0 = Instant::now();
        let (version, results) = self.index.discover_all_budgeted_versioned(query, k, budget);
        let elapsed = t0.elapsed();
        let mut shard = self.shard().lock().expect("serving telemetry");
        shard.served += 1;
        shard.query_latency.record(elapsed);
        Ok(ServingResponse { version, results })
    }

    /// [`DiscoveryService::query`] with the configured default `k` and
    /// budget.
    pub fn query_default(&self, query: &TableQuery) -> Result<ServingResponse, ServingError> {
        self.query(query, self.config.k, &self.config.budget.clone())
    }

    /// Apply one lake mutation and sync every index shard before
    /// releasing the lake write guard; returns the post-mutation lake
    /// version. Mutations serialize on the lake write guard (they are
    /// maintenance, not traffic) and are not admission-controlled. The
    /// shard sync write-locks one shard at a time, so concurrent queries
    /// keep flowing on every shard not currently being updated — their
    /// consistent-snapshot fan-out keeps mid-sync states unobservable.
    ///
    /// The closure runs under the write guard — keep it to lake calls
    /// (`add_table` / `replace_table` / `remove_table` / `upsert`);
    /// everything it changes becomes visible to queries atomically with
    /// the per-shard index sync.
    pub fn mutate<R>(&self, f: impl FnOnce(&mut DataLake) -> R) -> u64 {
        let t0 = Instant::now();
        let mut guard = self.lake.write().expect("lake lock");
        let _ = f(&mut guard);
        self.index.sync(&guard);
        let version = guard.version();
        drop(guard);
        let elapsed = t0.elapsed();
        let mut shard = self.shard().lock().expect("serving telemetry");
        shard.mutations += 1;
        shard.churn_latency.record(elapsed);
        version
    }

    /// Run a closure over a consistent view of lake and index together —
    /// the escape hatch for callers like the load harness validating a
    /// response against the exact version it was served from. Holding the
    /// lake read guard blocks [`DiscoveryService::mutate`] (and with it
    /// every shard sync), so the index cannot advance under `f`.
    pub fn with_state<R>(&self, f: impl FnOnce(&DataLake, &ShardedLakeIndex) -> R) -> R {
        let guard = self.lake.read().expect("lake lock");
        f(&guard, &self.index)
    }

    /// Merged snapshot of the serving telemetry across all thread shards.
    /// The inner discovery telemetry (planner counters etc.) is separate:
    /// [`DiscoveryService::discovery_telemetry`].
    pub fn telemetry(&self) -> ServingTelemetry {
        let mut out = ServingTelemetry::default();
        for shard in &self.telemetry {
            out.merge(&shard.lock().expect("serving telemetry"));
        }
        out
    }

    /// Zero the serving telemetry window (all shards).
    pub fn reset_telemetry(&self) {
        for shard in &self.telemetry {
            shard.lock().expect("serving telemetry").reset();
        }
    }

    /// Merged snapshot of the wrapped index's rolling
    /// [`DiscoveryTelemetry`](crate::DiscoveryTelemetry) across all
    /// storage shards.
    pub fn discovery_telemetry(&self) -> crate::DiscoveryTelemetry {
        self.index.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_kb::curated::covid_kb;
    use dialite_table::{fixtures, table};
    use std::time::Duration;

    fn service_with(config: ServingConfig) -> DiscoveryService {
        DiscoveryService::new(
            fixtures::covid_lake(),
            Arc::new(covid_kb()),
            LakeIndexConfig::default(),
            config,
        )
    }

    fn city_query() -> TableQuery {
        TableQuery::with_column(fixtures::fig2_query(), 1)
    }

    #[test]
    fn responses_are_version_stamped_and_match_direct_index_calls() {
        let service = service_with(ServingConfig::default());
        let response = service.query_default(&city_query()).unwrap();
        assert_eq!(response.version, service.version());
        let direct = service.with_state(|_, index| {
            index.discover_all_budgeted(&city_query(), 5, &DiscoveryBudget::default())
        });
        assert_eq!(response.results, direct);
    }

    #[test]
    fn mutations_advance_the_version_and_queries_see_them() {
        let service = service_with(ServingConfig::default());
        let before = service.query_default(&city_query()).unwrap();
        let v = service.mutate(|lake| {
            lake.upsert(table! {
                "fresh_cities"; ["place"];
                ["berlin"], ["barcelona"], ["boston"], ["madrid"], ["toronto"],
            });
        });
        assert!(v > before.version);
        let after = service.query_default(&city_query()).unwrap();
        assert_eq!(after.version, v);
        assert!(
            after
                .results
                .iter()
                .any(|(_, hits)| hits.iter().any(|d| d.table == "fresh_cities")),
            "churned-in table must be served immediately: {:?}",
            after.results
        );
    }

    #[test]
    fn zero_capacity_rejects_with_busy_and_counts_it() {
        let service = service_with(ServingConfig::default().with_max_in_flight(0));
        assert_eq!(
            service.query_default(&city_query()),
            Err(ServingError::Busy)
        );
        let t = service.telemetry();
        assert_eq!(t.served, 0);
        assert_eq!(t.rejected, 1);
        assert_eq!(t.query_latency.samples, 0, "rejections record no latency");
        assert!(ServingError::Busy.to_string().contains("busy"));
    }

    #[test]
    fn telemetry_counts_and_latency_accumulate_and_reset() {
        let service = service_with(ServingConfig::default());
        service.query_default(&city_query()).unwrap();
        service.query_default(&city_query()).unwrap();
        service.mutate(|lake| lake.remove("animals"));
        let t = service.telemetry();
        assert_eq!(t.served, 2);
        assert_eq!(t.mutations, 1);
        assert_eq!(t.query_latency.samples, 2);
        assert_eq!(t.churn_latency.samples, 1);
        assert!(t.query_latency.percentile(0.5).is_some());
        assert!(t.summary().contains("served 2"));
        service.reset_telemetry();
        assert_eq!(service.telemetry(), ServingTelemetry::default());
        // The inner discovery telemetry is its own window.
        assert_eq!(service.discovery_telemetry().topk.queries, 2);
    }

    #[test]
    fn serving_telemetry_merge_is_commutative() {
        let mut a = ServingTelemetry {
            served: 3,
            rejected: 1,
            mutations: 2,
            ..ServingTelemetry::default()
        };
        a.query_latency.record(Duration::from_micros(40));
        let mut b = ServingTelemetry::default();
        b.query_latency.record(Duration::from_micros(4_000));
        b.served = 1;
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.served, 4);
        assert_eq!(ab.query_latency.samples, 2);
    }

    #[test]
    fn len_and_is_empty_track_the_served_lake() {
        let service = service_with(ServingConfig::default());
        let n = service.len();
        assert!(n > 0 && !service.is_empty());
        service.mutate(|lake| lake.remove("animals"));
        assert_eq!(service.len(), n - 1);
    }
}
