//! Shared test support: the brute-force containment oracle both the
//! incremental-equivalence and recall suites compare the engines against.
//! One copy, so the oracle's semantics (tokenization via
//! `column_token_set`, self-match exclusion by name, best column per
//! table) cannot silently diverge between suites.

use std::collections::HashMap;

use dialite_table::{DataLake, Table};

/// Brute-force best containment of `query`'s column 0 per lake table:
/// `max over columns of |Q ∩ X| / |Q|`, the exact quantity the LSH engine
/// approximates then verifies.
pub fn brute_containment(lake: &DataLake, query: &Table) -> HashMap<String, f64> {
    let q = query.column_token_set(0);
    let mut best = HashMap::new();
    if q.is_empty() {
        return best;
    }
    for t in lake.tables() {
        if t.name() == query.name() {
            continue;
        }
        for c in 0..t.column_count() {
            let dom = t.column_token_set(c);
            let overlap = q.iter().filter(|tok| dom.contains(*tok)).count();
            let score = overlap as f64 / q.len() as f64;
            let e = best.entry(t.name().to_string()).or_insert(0.0);
            if score > *e {
                *e = score;
            }
        }
    }
    best
}
