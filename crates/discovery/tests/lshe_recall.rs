//! Recall oracle for the LSH Ensemble discovery engine: candidates are
//! checked against a brute-force exact-containment scan over datagen
//! lakes.
//!
//! Pinned guarantees:
//!
//! * **Soundness (always):** post-verification never reports a table below
//!   the containment threshold, and never above its true best containment
//!   — reported scores are exact containments of verified columns.
//! * **Exact fallback:** with `exact_fallback_below` above the query size
//!   (or the sketch bypassed entirely), the output *is* the brute-force
//!   truth, keys and scores.
//! * **Recall (quantified):** on the sketch path, decisively-above-
//!   threshold tables are recalled at ≥ 90%, and overall above-threshold
//!   recall is reported and floored. Fixed seeds keep this deterministic.
//! * **Typeless SANTOS recall (quantified):** on a typeless-heavy skewed
//!   lake (no KB coverage at all), the synthesized-signal posting index
//!   at the default candidate cap recalls ≥ 90% of the exhaustive full
//!   scan's top-k, at exact scores.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use dialite_datagen::lake::{LakeSpec, SyntheticLake};
use dialite_datagen::workloads::TopKWorkload;
use dialite_discovery::{
    Discovery, DiscoveryBudget, LshEnsembleConfig, LshEnsembleDiscovery, SantosConfig,
    SantosDiscovery, TableQuery,
};
use dialite_kb::KbBuilder;
use dialite_table::{DataLake, Table};

mod common;
use common::brute_containment;

fn lake() -> DataLake {
    SyntheticLake::generate(&LakeSpec {
        universes: 5,
        fragments_per_universe: 5,
        rows_per_universe: 60,
        categorical_cols: 2,
        numeric_cols: 1,
        null_rate: 0.05,
        value_dirt_rate: 0.0,
        scramble_headers: true,
        seed: 4242,
    })
    .lake
}

/// Every lake fragment doubles as a query (probe column 0, the universe
/// key), yielding sibling containments across the whole (0, 1] spectrum.
fn queries(lake: &DataLake) -> Vec<Table> {
    lake.tables().map(|t| t.as_ref().clone()).collect()
}

#[test]
fn sketch_path_is_sound_and_recall_is_quantified() {
    let lake = lake();
    let threshold = 0.5;
    let config = LshEnsembleConfig {
        threshold,
        exact_fallback_below: 4, // force the sketch path for real queries
        ..LshEnsembleConfig::default()
    };
    let engine = LshEnsembleDiscovery::build(&lake, config);

    let margin = 0.2;
    let mut above = 0usize;
    let mut above_found = 0usize;
    let mut decisive = 0usize;
    let mut decisive_found = 0usize;
    for q in queries(&lake) {
        let truth = brute_containment(&lake, &q);
        let hits = engine.discover(&TableQuery::with_column(q, 0), usize::MAX);
        let found: HashMap<&str, f64> = hits.iter().map(|d| (d.table.as_str(), d.score)).collect();

        // Soundness: threshold floor + no overstated score, ever.
        for (table, score) in &found {
            assert!(
                *score >= threshold - 1e-12,
                "{table} reported below threshold: {score}"
            );
            let brute = truth.get(*table).copied().unwrap_or(0.0);
            assert!(
                *score <= brute + 1e-12,
                "{table} reported {score}, true best containment {brute}"
            );
        }

        for (table, brute) in &truth {
            if *brute + 1e-12 >= threshold {
                above += 1;
                above_found += usize::from(found.contains_key(table.as_str()));
            }
            if *brute >= threshold + margin {
                decisive += 1;
                decisive_found += usize::from(found.contains_key(table.as_str()));
            }
        }
    }
    assert!(above >= 40, "workload too thin to quantify recall: {above}");
    assert!(decisive >= 20, "no decisive pairs generated: {decisive}");
    let recall_above = above_found as f64 / above as f64;
    let recall_decisive = decisive_found as f64 / decisive as f64;
    println!(
        "lsh-ensemble recall: {recall_above:.3} over {above} pairs ≥ threshold, \
         {recall_decisive:.3} over {decisive} pairs ≥ threshold+{margin}"
    );
    assert!(
        recall_decisive >= 0.9,
        "decisively-above-threshold recall degraded: {recall_decisive:.3}"
    );
    assert!(
        recall_above >= 0.6,
        "above-threshold recall degraded: {recall_above:.3}"
    );
}

#[test]
fn exact_fallback_reproduces_brute_force_truth_exactly() {
    let lake = lake();
    let threshold = 0.5;
    let config = LshEnsembleConfig {
        threshold,
        exact_fallback_below: usize::MAX, // every query takes the exact scan
        ..LshEnsembleConfig::default()
    };
    let engine = LshEnsembleDiscovery::build(&lake, config);

    for q in queries(&lake) {
        let truth: Vec<(String, f64)> = {
            let mut v: Vec<(String, f64)> = brute_containment(&lake, &q)
                .into_iter()
                .filter(|(_, s)| *s + 1e-12 >= threshold)
                .collect();
            v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            v
        };
        let hits: Vec<(String, f64)> = engine
            .discover(&TableQuery::with_column(q.clone(), 0), usize::MAX)
            .into_iter()
            .map(|d| (d.table, d.score))
            .collect();
        assert_eq!(
            hits,
            truth,
            "exact path must equal brute force for {}",
            q.name()
        );
    }
}

#[test]
fn small_queries_bypass_the_sketch_for_perfect_recall() {
    let lake = lake();
    let threshold = 0.5;
    // Default fallback (16): a 3-token query scans exactly.
    let engine = LshEnsembleDiscovery::build(
        &lake,
        LshEnsembleConfig {
            threshold,
            ..LshEnsembleConfig::default()
        },
    );
    let source = lake.tables().next().unwrap();
    let keys: Vec<_> = {
        let mut v: Vec<String> = source.column_token_set(0).into_iter().collect();
        v.sort();
        v.truncate(3);
        v
    };
    assert_eq!(keys.len(), 3);
    let q = Table::from_rows(
        "tiny_q",
        &["key"],
        keys.iter()
            .map(|k| vec![dialite_table::Value::Text(k.clone())])
            .collect(),
    )
    .unwrap();
    let truth = brute_containment(&lake, &q);
    let hits = engine.discover(&TableQuery::with_column(q, 0), usize::MAX);
    let found: HashMap<&str, f64> = hits.iter().map(|d| (d.table.as_str(), d.score)).collect();
    for (table, brute) in &truth {
        if *brute + 1e-12 >= threshold {
            assert!(
                found.contains_key(table.as_str()),
                "tiny query must have perfect recall; missing {table} ({brute})"
            );
        }
    }
    for (table, score) in &found {
        assert!((truth[*table] - score).abs() < 1e-12, "{table}: {score}");
    }
}

/// Typeless-heavy skewed lake: 1000 tables of pure token data with zero
/// KB coverage, so every SANTOS query takes the synthesized-signal path.
/// The bounded posting-index retrieval at the default candidate cap must
/// recall ≥ 90% of the exhaustive full scan's top-k — and every hit it
/// does report must carry the full scan's exact score (the bound reorders
/// retrieval, it never invents or perturbs scores).
#[test]
fn typeless_santos_recall_floor_at_default_cap() {
    let trace = TopKWorkload {
        tables: 1000,
        hub_tables: 8,
        hub_rows: 256,
        tail_rows: 12,
        vocab: 1000,
        queries: 8,
        query_rows: 128,
        seed: 67,
    }
    .generate();
    let lake = DataLake::from_tables(trace.tables).unwrap();
    let kb = Arc::new(KbBuilder::new().build());
    // Synthesized scores on a pure-token lake are jaccard-scaled, so the
    // demo default `min_score` (0.2) keeps only near-duplicates; lower it
    // so each query's full-scan top-k is actually k deep and recall is
    // measured over a real candidate band, not a single obvious hit.
    let engine = SantosDiscovery::build(
        &lake,
        kb,
        SantosConfig {
            min_score: 0.02,
            ..SantosConfig::default()
        },
    );
    let cap = DiscoveryBudget::default().santos_candidates;
    let k = 10usize;

    let mut oracle_total = 0usize;
    let mut found_total = 0usize;
    for q in trace.queries {
        let query = TableQuery::with_column(q, 0);
        // Exhaustive truth: the full scan, with its full score map for
        // the exactness check below.
        let (oracle, oracle_stats) = engine.discover_capped(&query, k, usize::MAX);
        assert!(
            oracle_stats.full_scan,
            "a KB-empty lake must take the typeless full-scan oracle path"
        );
        let truth: HashMap<String, f64> = engine
            .discover_capped(&query, usize::MAX, usize::MAX)
            .0
            .into_iter()
            .map(|d| (d.table, d.score))
            .collect();

        let (capped, stats) = engine.discover_capped(&query, k, cap);
        assert!(
            !stats.full_scan,
            "the default cap must route through the posting index"
        );
        for d in &capped {
            assert_eq!(
                truth.get(&d.table),
                Some(&d.score),
                "{} must carry its exact full-scan score",
                d.table
            );
        }

        let oracle_set: HashSet<&str> = oracle.iter().map(|d| d.table.as_str()).collect();
        oracle_total += oracle_set.len();
        found_total += capped
            .iter()
            .filter(|d| oracle_set.contains(d.table.as_str()))
            .count();
    }
    assert!(
        oracle_total >= 40,
        "workload too thin to quantify recall: {oracle_total}"
    );
    let recall = found_total as f64 / oracle_total as f64;
    println!(
        "typeless santos recall at cap {cap}: {recall:.3} over {oracle_total} \
         full-scan top-{k} pairs"
    );
    assert!(
        recall >= 0.9,
        "typeless recall at the default cap degraded: {recall:.3}"
    );
}
