//! Shard oracle: a [`ShardedLakeIndex`] at any shard count must be
//! observationally identical to the single index — the storage/execution
//! split is an implementation detail, never a semantics change.
//!
//! Three properties are pinned:
//!
//! * **Byte-identity across shard counts**: with the LSH sketch bypassed
//!   (`exact_fallback_below = usize::MAX`, the same regime as the
//!   incremental oracle), discovery output is a pure function of lake
//!   state, so N ∈ {1, 2, 4, 8} shards must agree bit-for-bit with the
//!   single index on keys *and* scores — across churn traces (per-shard
//!   incremental `sync` included), at unlimited *and* finite budgets, on
//!   the full two-leg stage and on the joinable top-k leg alone.
//! * **Telemetry lockstep**: the merged window equals the fold of the
//!   per-shard windows, counter for counter, at every query point.
//! * **Merge under thread churn**: a [`ShardedTelemetry`] recorded into
//!   from any number of concurrent threads snapshots to exactly the
//!   single-threaded fold of the same recordings — counters and latency
//!   histograms both (sums are order-independent; whole-microsecond
//!   durations keep the f64 mean accumulation exact).

use std::sync::Arc;
use std::time::Duration;

use dialite_datagen::workloads::{ChurnOp, ChurnWorkload};
use dialite_discovery::{
    DiscoveryBudget, DiscoveryTelemetry, LakeIndexConfig, LshEnsembleConfig, MetadataConfig,
    MetadataStats, QueryBudget, SantosConfig, SantosStats, ShardedLakeIndex, ShardedTelemetry,
    TableQuery, TopKStats,
};
use dialite_kb::curated::covid_kb;
use dialite_table::DataLake;
use proptest::prelude::*;

/// Sketch-free config (the incremental oracle's): every stored domain is
/// verified exactly, so discovery output is deterministic given the lake —
/// the precondition for byte-identity across shardings. The tiny dirtiness
/// budget forces tombstone-triggered rebalances inside the traces, and the
/// metadata leg is enabled so the oracle covers the full three-leg stage.
fn exact_config() -> LakeIndexConfig {
    LakeIndexConfig {
        santos: SantosConfig::default(),
        lshe: LshEnsembleConfig {
            num_perm: 64,
            num_partitions: 4,
            exact_fallback_below: usize::MAX,
            rebalance_dirtiness: 0.15,
            ..LshEnsembleConfig::default()
        },
        metadata: Some(MetadataConfig::default()),
    }
}

/// Merged telemetry must equal the fold of the per-shard windows —
/// counters, latency sample counts, everything.
fn assert_telemetry_lockstep(index: &ShardedLakeIndex) {
    let merged = index.telemetry();
    let mut folded = DiscoveryTelemetry::default();
    for window in index.telemetry_per_shard() {
        folded.merge(&window);
    }
    assert_eq!(merged.topk, folded.topk, "topk counters out of lockstep");
    assert_eq!(
        merged.santos, folded.santos,
        "santos counters out of lockstep"
    );
    assert_eq!(
        merged.metadata, folded.metadata,
        "metadata counters out of lockstep"
    );
    assert_eq!(
        merged.joinable_latency.samples,
        folded.joinable_latency.samples
    );
    assert_eq!(merged.santos_latency.samples, folded.santos_latency.samples);
    assert_eq!(
        merged.metadata_latency.samples,
        folded.metadata_latency.samples
    );
}

proptest! {
    /// The main oracle: every shard count answers every query point of a
    /// random churn trace exactly like the single index — both legs,
    /// budgeted and unlimited — and merged telemetry stays in lockstep
    /// with the per-shard sums throughout.
    #[test]
    fn sharded_discovery_equals_single_index_across_churn(
        seed in any::<u64>(),
        ops in 12usize..28,
    ) {
        let trace = ChurnWorkload {
            initial_tables: 8,
            rows_per_table: 12,
            vocab: 150,
            ops,
            seed,
        }
        .generate();
        let kb = Arc::new(covid_kb());
        let config = exact_config();
        let mut lake = DataLake::from_tables(trace.initial).unwrap();
        let single = ShardedLakeIndex::build(&lake, kb.clone(), config.clone(), 1);
        let sharded: Vec<ShardedLakeIndex> = [2usize, 4, 8]
            .iter()
            .map(|&n| ShardedLakeIndex::build(&lake, kb.clone(), config.clone(), n))
            .collect();
        // Finite but covering on these small lakes (every split slice
        // still admits the whole stripe), so budget-splitting itself is
        // exercised without perturbing the exact-path output.
        let budgets = [DiscoveryBudget::unlimited(), DiscoveryBudget::default()];
        let topk_budget = QueryBudget::unlimited();
        let mut compared = 0usize;
        for op in trace.ops {
            if let ChurnOp::Query(q) = &op {
                single.sync(&lake);
                let query = TableQuery::with_column(q.clone(), 0);
                for index in &sharded {
                    index.sync(&lake);
                    prop_assert!(index.is_current(&lake));
                    for budget in &budgets {
                        prop_assert_eq!(
                            index.discover_all_budgeted(&query, 6, budget),
                            single.discover_all_budgeted(&query, 6, budget),
                            "{}-shard stage diverged from single index at query {}",
                            index.shard_count(),
                            compared
                        );
                    }
                    prop_assert_eq!(
                        index.discover_top_k(&query, 6, &topk_budget),
                        single.discover_top_k(&query, 6, &topk_budget),
                        "{}-shard top-k diverged from single index at query {}",
                        index.shard_count(),
                        compared
                    );
                    assert_telemetry_lockstep(index);
                }
                compared += 1;
            } else {
                op.apply(&mut lake);
            }
        }
        prop_assert!(compared > 0, "trace contained no queries");
    }

    /// Thread-churn merge property: however the recordings are spread
    /// over concurrent threads, the sharded snapshot equals the
    /// single-threaded fold of the exact same recordings. Durations are
    /// whole microseconds, so even the histograms' f64 mean accumulation
    /// is exact and the windows compare equal as a whole.
    #[test]
    fn sharded_telemetry_snapshot_equals_single_threaded_fold(
        seed in any::<u64>(),
        threads in 1usize..9,
        per_thread in 1usize..24,
    ) {
        // Deterministic per-(thread, i) recordings derived from the seed.
        let stats_at = |t: usize, i: usize| {
            let x = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((t * 1_000 + i) as u64);
            let topk = TopKStats {
                cache_hit: x & 1 == 0,
                exact_path: x & 2 == 0,
                partitions_probed: (x % 7) as usize,
                partitions_pruned: (x % 5) as usize,
                candidates_verified: (x % 97) as usize,
                terminated_early: x & 4 == 0,
                budget_exhausted: x & 8 == 0,
                postings_skipped: (x % 31) as usize,
            };
            let santos = SantosStats {
                candidates_retrieved: (x % 211) as usize,
                candidates_scored: (x % 89) as usize,
                bound_pruned: (x % 13) as usize,
                cap_hit: x & 16 == 0,
                full_scan: x & 32 == 0,
                typeless_pruned: (x % 17) as usize,
            };
            let metadata = MetadataStats {
                candidates_retrieved: (x % 151) as usize,
                candidates_scored: (x % 67) as usize,
                bound_pruned: (x % 11) as usize,
                cap_hit: x & 64 == 0,
                full_scan: x & 128 == 0,
            };
            let latency = Duration::from_micros(x % 2_000_000);
            (topk, santos, metadata, latency)
        };

        let mut expected = DiscoveryTelemetry::default();
        for t in 0..threads {
            for i in 0..per_thread {
                let (topk, santos, metadata, latency) = stats_at(t, i);
                expected.record_topk(&topk, latency);
                expected.record_santos(&santos, latency);
                expected.record_metadata(&metadata, latency);
            }
        }

        let sharded = ShardedTelemetry::default();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let sharded = &sharded;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let (topk, santos, metadata, latency) = stats_at(t, i);
                        sharded.record_topk(&topk, latency);
                        sharded.record_santos(&santos, latency);
                        sharded.record_metadata(&metadata, latency);
                    }
                });
            }
        });

        prop_assert_eq!(sharded.snapshot(), expected);

        // Reset zeroes every shard, whichever threads recorded into them.
        sharded.reset();
        prop_assert_eq!(sharded.snapshot(), DiscoveryTelemetry::default());
    }
}
