//! Direct property coverage for [`StringPool`] (previously exercised only
//! transitively through the LSH engine): id stability, density and growth
//! under *interleaved* insert streams — the access pattern incremental
//! `LakeIndex` maintenance produces, where tokens from freshly churned-in
//! tables interleave with re-interns of long-indexed ones.

use std::collections::{HashMap, HashSet};

use dialite_discovery::StringPool;
use proptest::prelude::*;

fn arb_token() -> impl Strategy<Value = String> {
    "[a-z]{1,6}"
}

proptest! {
    /// Interleave several logical insert streams (as concurrent indexers
    /// would) round-robin: first-seen ids never change, re-interns are
    /// hits, ids stay dense, and growth equals the number of distinct
    /// tokens regardless of interleaving.
    #[test]
    fn interleaved_streams_agree_on_stable_dense_ids(
        streams in prop::collection::vec(prop::collection::vec(arb_token(), 0..30), 1..5)
    ) {
        let mut pool = StringPool::new();
        let mut oracle: HashMap<String, u32> = HashMap::new();
        let depth = streams.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..depth {
            for stream in &streams {
                let Some(tok) = stream.get(round) else { continue };
                let id = pool.intern(tok);
                match oracle.get(tok) {
                    Some(&known) => prop_assert_eq!(id, known, "id drifted for {}", tok),
                    None => {
                        // Fresh tokens take the next dense id.
                        prop_assert_eq!(id as usize, oracle.len(), "ids must stay dense");
                        oracle.insert(tok.clone(), id);
                    }
                }
            }
        }
        prop_assert_eq!(pool.len(), oracle.len());
        // Lookup without insertion agrees for every token ever seen…
        for (tok, &id) in &oracle {
            prop_assert_eq!(pool.get(tok), Some(id));
        }
        // …and ids are a bijection.
        let distinct: HashSet<u32> = oracle.values().copied().collect();
        prop_assert_eq!(distinct.len(), oracle.len());
    }

    /// The same token multiset interned in any stream order yields the
    /// same final pool size, and `get` never inserts.
    #[test]
    fn pool_growth_is_order_independent(tokens in prop::collection::vec(arb_token(), 0..60)) {
        let mut forward = StringPool::new();
        for t in &tokens {
            forward.intern(t);
        }
        let mut backward = StringPool::new();
        for t in tokens.iter().rev() {
            backward.intern(t);
        }
        let distinct: HashSet<&String> = tokens.iter().collect();
        prop_assert_eq!(forward.len(), distinct.len());
        prop_assert_eq!(backward.len(), distinct.len());
        // `get` on a fresh pool inserts nothing.
        let probe = StringPool::new();
        for t in &tokens {
            prop_assert_eq!(probe.get(t), None);
        }
        prop_assert!(probe.is_empty());
    }
}
