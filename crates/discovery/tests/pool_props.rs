//! Direct property coverage for [`StringPool`] (previously exercised only
//! transitively through the LSH engine): id stability, density and growth
//! under *interleaved* insert streams — the access pattern incremental
//! `LakeIndex` maintenance produces, where tokens from freshly churned-in
//! tables interleave with re-interns of long-indexed ones — plus the
//! generation-based compaction bound: under arbitrarily long churn the
//! engine's pool stays proportional to the *live* token weight instead of
//! growing with everything ever interned.

use std::collections::{HashMap, HashSet};

use dialite_datagen::workloads::{ChurnOp, ChurnWorkload};
use dialite_discovery::{
    Discovery, LshEnsembleConfig, LshEnsembleDiscovery, StringPool, TableQuery,
};
use dialite_table::DataLake;
use proptest::prelude::*;

fn arb_token() -> impl Strategy<Value = String> {
    "[a-z]{1,6}"
}

proptest! {
    /// Interleave several logical insert streams (as concurrent indexers
    /// would) round-robin: first-seen ids never change, re-interns are
    /// hits, ids stay dense, and growth equals the number of distinct
    /// tokens regardless of interleaving.
    #[test]
    fn interleaved_streams_agree_on_stable_dense_ids(
        streams in prop::collection::vec(prop::collection::vec(arb_token(), 0..30), 1..5)
    ) {
        let mut pool = StringPool::new();
        let mut oracle: HashMap<String, u32> = HashMap::new();
        let depth = streams.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..depth {
            for stream in &streams {
                let Some(tok) = stream.get(round) else { continue };
                let id = pool.intern(tok);
                match oracle.get(tok) {
                    Some(&known) => prop_assert_eq!(id, known, "id drifted for {}", tok),
                    None => {
                        // Fresh tokens take the next dense id.
                        prop_assert_eq!(id as usize, oracle.len(), "ids must stay dense");
                        oracle.insert(tok.clone(), id);
                    }
                }
            }
        }
        prop_assert_eq!(pool.len(), oracle.len());
        // Lookup without insertion agrees for every token ever seen…
        for (tok, &id) in &oracle {
            prop_assert_eq!(pool.get(tok), Some(id));
        }
        // …and ids are a bijection.
        let distinct: HashSet<u32> = oracle.values().copied().collect();
        prop_assert_eq!(distinct.len(), oracle.len());
    }

    /// The same token multiset interned in any stream order yields the
    /// same final pool size, and `get` never inserts.
    #[test]
    fn pool_growth_is_order_independent(tokens in prop::collection::vec(arb_token(), 0..60)) {
        let mut forward = StringPool::new();
        for t in &tokens {
            forward.intern(t);
        }
        let mut backward = StringPool::new();
        for t in tokens.iter().rev() {
            backward.intern(t);
        }
        let distinct: HashSet<&String> = tokens.iter().collect();
        prop_assert_eq!(forward.len(), distinct.len());
        prop_assert_eq!(backward.len(), distinct.len());
        // `get` on a fresh pool inserts nothing.
        let probe = StringPool::new();
        for t in &tokens {
            prop_assert_eq!(probe.get(t), None);
        }
        prop_assert!(probe.is_empty());
    }

    /// The compaction bound: drive an `LshEnsembleDiscovery` through a long
    /// `ChurnWorkload` trace (every mutation applied incrementally) and the
    /// pool never exceeds twice the live token weight — dead dictionary
    /// weight is reclaimed, it does not accumulate with trace length.
    ///
    /// Why 2×: with `pool_compact_min = 0` the engine compacts as soon as
    /// the retired token weight overtakes the live weight, so at rest
    /// `retired ≤ live_weight`, and the pool holds at most the live
    /// distinct tokens plus at most `retired` dead ones.
    #[test]
    fn pool_stays_bounded_under_long_churn(seed in any::<u64>(), ops in 30usize..80) {
        let trace = ChurnWorkload {
            initial_tables: 10,
            rows_per_table: 16,
            vocab: 6_000, // vast universe: naive interning would only grow
            ops,
            seed,
        }
        .generate();
        let config = LshEnsembleConfig {
            num_perm: 32,
            num_partitions: 4,
            pool_compact_min: 0,
            // Exact posting-path queries only: this suite pins memory
            // behaviour, not sketch recall, so keep the probabilistic
            // path out of the assertions.
            exact_fallback_below: usize::MAX,
            ..LshEnsembleConfig::default()
        };
        let mut lake = DataLake::from_tables(trace.initial).unwrap();
        let mut engine = LshEnsembleDiscovery::build(&lake, config.clone());
        let sync = |engine: &mut LshEnsembleDiscovery, lake: &DataLake, name: &str| {
            if let Some(slot) = lake.table_idx(name) {
                engine.upsert_table(slot, lake.table_at(slot).unwrap());
            }
        };
        for op in &trace.ops {
            match op {
                ChurnOp::Add(t) | ChurnOp::Replace(t) => {
                    let name = t.name().to_string();
                    op.apply(&mut lake);
                    sync(&mut engine, &lake, &name);
                }
                ChurnOp::Remove(name) => {
                    let slot = lake.table_idx(name).expect("trace removes live tables");
                    op.apply(&mut lake);
                    engine.remove_table(slot);
                }
                ChurnOp::Query(q) => {
                    // Queries keep working mid-churn across compactions.
                    let hits = engine.discover(&TableQuery::with_column(q.clone(), 0), 5);
                    prop_assert!(
                        hits.iter().any(|d| (d.score - 1.0).abs() < 1e-12),
                        "churn query lost its containment-1.0 match: {:?}",
                        hits
                    );
                }
            }
            let live_weight = engine.posting_stats().1;
            prop_assert!(
                engine.pool_len() <= (2 * live_weight).max(1),
                "pool grew past the compaction bound: {} tokens vs live weight {}",
                engine.pool_len(),
                live_weight
            );
        }
        // (That compactions actually fire — not just that the bound holds
        // vacuously — is pinned deterministically by the engine's
        // `pool_compaction_reclaims_removed_tables_tokens` unit test.)
    }
}
