//! Incremental-vs-rebuild oracle: a `LakeIndex` maintained through a random
//! churn trace must answer discovery queries exactly like a fresh `build()`
//! over the lake's final state — including after tombstone-triggered
//! ensemble rebalances.
//!
//! Two regimes are pinned:
//!
//! * **Exact-verification semantics** (the main oracle): with the LSH
//!   sketch bypassed (`exact_fallback_below = usize::MAX`), discovery
//!   output is a pure function of the maintained domain/annotation state,
//!   so incremental and rebuilt indexes must agree bit-for-bit on keys
//!   *and* scores. Any drift in tombstoning, pool interning, slot keying
//!   or the SANTOS inverted index surfaces here.
//! * **Sketch-path soundness**: with the real LSH candidate path, reported
//!   results must still be a subset of the brute-force truth at exact
//!   scores (candidates are verified), and a *freshly churned-in* table —
//!   staged since the last rebalance — must never be a false negative for
//!   a query it fully contains.

use std::sync::Arc;
use std::time::Duration;

use dialite_datagen::workloads::{ChurnOp, ChurnWorkload};
use dialite_discovery::{
    Discovery, DiscoveryBudget, DiscoveryTelemetry, LakeIndex, LakeIndexConfig, LshEnsembleConfig,
    QueryBudget, SantosConfig, TableQuery,
};
use dialite_kb::curated::covid_kb;
use dialite_table::{DataLake, Table};
use proptest::prelude::*;

mod common;
use common::brute_containment;

fn exact_config() -> LakeIndexConfig {
    LakeIndexConfig {
        santos: SantosConfig::default(),
        lshe: LshEnsembleConfig {
            num_perm: 64,
            num_partitions: 4,
            // Bypass the sketch: every stored domain is verified exactly,
            // making discovery output deterministic given the lake state.
            exact_fallback_below: usize::MAX,
            // Tiny dirtiness budget → frequent tombstone-triggered
            // rebalances inside the trace, exercising re-partitioning.
            rebalance_dirtiness: 0.15,
            ..LshEnsembleConfig::default()
        },
        // Three legs: incremental maintenance of the metadata engine must
        // match a fresh build at every query point, like the other two.
        metadata: Some(dialite_discovery::MetadataConfig::default()),
    }
}

proptest! {
    /// The main oracle: `sync` after every mutation, and at every query
    /// point the incrementally maintained index and a fresh build of the
    /// current lake return identical (engine, table, score) results.
    #[test]
    fn incremental_lake_index_equals_fresh_rebuild(seed in any::<u64>(), ops in 12usize..32) {
        let trace = ChurnWorkload {
            initial_tables: 8,
            rows_per_table: 12,
            vocab: 150,
            ops,
            seed,
        }
        .generate();
        let kb = Arc::new(covid_kb());
        let config = exact_config();
        let mut lake = DataLake::from_tables(trace.initial).unwrap();
        let mut index = LakeIndex::build(&lake, kb.clone(), config.clone());
        let mut compared = 0usize;
        for op in trace.ops {
            if let ChurnOp::Query(q) = &op {
                index.sync(&lake);
                prop_assert!(index.is_current(&lake));
                let fresh = LakeIndex::build(&lake, kb.clone(), config.clone());
                let query = TableQuery::with_column(q.clone(), 0);
                let got = index.discover_all(&query, 6);
                let want = fresh.discover_all(&query, 6);
                prop_assert_eq!(
                    got,
                    want,
                    "incremental index diverged from rebuild at op {}",
                    compared
                );
                compared += 1;
            } else {
                op.apply(&mut lake);
            }
        }
        prop_assert!(compared > 0, "trace contained no queries");
    }

    /// Top-k planner + posting-list + signature-cache oracle under churn:
    /// an incrementally maintained `LakeIndex` (planner cache staying warm
    /// across syncs, pool compaction forced on) answers `discover_top_k`
    /// exactly like a freshly built index AND exactly like the probe-all
    /// path, repeat queries hit the cache without changing results, and
    /// the posting lists stay in lockstep with the live domains.
    #[test]
    fn planner_postings_and_cache_survive_churn(seed in any::<u64>(), ops in 12usize..32) {
        let trace = ChurnWorkload {
            initial_tables: 8,
            rows_per_table: 14,
            vocab: 160,
            ops,
            seed,
        }
        .generate();
        let kb = Arc::new(covid_kb());
        let config = LakeIndexConfig {
            santos: SantosConfig::default(),
            lshe: LshEnsembleConfig {
                num_perm: 64,
                num_partitions: 4,
                rebalance_dirtiness: 0.2,
                // Compact on every overtake, so churn traces exercise the
                // id-remap path (domains, postings, verification) often.
                pool_compact_min: 0,
                ..LshEnsembleConfig::default()
            },
            metadata: None,
        };
        let budget = QueryBudget::unlimited();
        let mut lake = DataLake::from_tables(trace.initial).unwrap();
        let mut index = LakeIndex::build(&lake, kb.clone(), config.clone());
        let mut compared = 0usize;
        for op in trace.ops {
            if let ChurnOp::Query(q) = &op {
                index.sync(&lake);
                let fresh = LakeIndex::build(&lake, kb.clone(), config.clone());
                let query = TableQuery::with_column(q.clone(), 0);
                let got = index.discover_top_k(&query, 6, &budget);
                prop_assert_eq!(
                    &got,
                    &fresh.discover_top_k(&query, 6, &budget),
                    "incremental planner diverged from fresh build at query {}",
                    compared
                );
                prop_assert_eq!(
                    &got,
                    &index.lshe().discover(&query, 6),
                    "planner diverged from probe-all at query {}",
                    compared
                );
                // Repeat query: served from the signature cache (or the
                // exact path), identical results.
                prop_assert_eq!(
                    &got,
                    &index.discover_top_k(&query, 6, &budget),
                    "cached repeat diverged at query {}",
                    compared
                );
                // Postings mirror the live domains exactly, dead weight
                // included (fresh build has none by construction).
                prop_assert_eq!(
                    index.lshe().posting_stats(),
                    fresh.lshe().posting_stats(),
                    "posting lists diverged from rebuild at query {}",
                    compared
                );
                compared += 1;
            } else {
                op.apply(&mut lake);
                // Sync per mutation: maximal churn stress on postings,
                // compaction and the planner cache.
                index.sync(&lake);
            }
        }
        prop_assert!(compared > 0, "trace contained no queries");
    }

    /// Telemetry lockstep under churn: the index's rolling
    /// `DiscoveryTelemetry` counters must equal an independently
    /// accumulated sum of the per-query `TopKStats` / `SantosStats` the
    /// same calls returned — across syncs, forced `StringPool`
    /// compactions, and even a full rebuild (which must carry the window
    /// over, not zero it). Latency histograms are checked for sample
    /// counts only (durations are wall-clock).
    #[test]
    fn telemetry_stays_in_lockstep_with_per_query_stats(seed in any::<u64>(), ops in 12usize..28) {
        let trace = ChurnWorkload {
            initial_tables: 8,
            rows_per_table: 14,
            vocab: 160,
            ops,
            seed,
        }
        .generate();
        let kb = Arc::new(covid_kb());
        let config = LakeIndexConfig {
            santos: SantosConfig::default(),
            lshe: LshEnsembleConfig {
                num_perm: 64,
                num_partitions: 4,
                rebalance_dirtiness: 0.2,
                // Compact on every overtake: the id-remap path must not
                // disturb (or double-count) telemetry.
                pool_compact_min: 0,
                ..LshEnsembleConfig::default()
            },
            metadata: None,
        };
        let budget = QueryBudget::unlimited().with_max_verifications(6);
        let stage_budget = DiscoveryBudget::default();
        let mut lake = DataLake::from_tables(trace.initial).unwrap();
        let mut index = LakeIndex::build(&lake, kb.clone(), config.clone());
        let mut expected = DiscoveryTelemetry::default();
        let mut compared = 0usize;
        for op in trace.ops {
            if let ChurnOp::Query(q) = &op {
                index.sync(&lake);
                let query = TableQuery::with_column(q.clone(), 0);
                // Interactive joinable queries record the topk leg only...
                let (_, stats) = index.discover_top_k_with_stats(&query, 6, &budget);
                expected.record_topk(&stats, Duration::ZERO);
                // ...while the budgeted stage records both legs; its
                // returned lists must be consistent with independently
                // capped engine calls whose stats we fold by hand.
                let staged = index.discover_all_budgeted(&query, 6, &stage_budget);
                let (santos_hits, santos_stats) =
                    index.santos().discover_capped(&query, 6, stage_budget.santos_candidates);
                prop_assert_eq!(&staged[0].1, &santos_hits);
                expected.record_santos(&santos_stats, Duration::ZERO);
                let (join_hits, join_stats) = index.discover_top_k_with_stats(
                    &query,
                    6,
                    &stage_budget.joinable,
                );
                prop_assert_eq!(&staged[1].1, &join_hits);
                // The by-hand stage replay recorded one extra topk query
                // into the index; mirror both it and the stage's own.
                expected.record_topk(&join_stats, Duration::ZERO);
                expected.record_topk(&join_stats, Duration::ZERO);

                let got = index.telemetry();
                prop_assert_eq!(got.topk, expected.topk, "topk counters diverged");
                prop_assert_eq!(got.santos, expected.santos, "santos counters diverged");
                prop_assert_eq!(
                    got.joinable_latency.samples,
                    expected.joinable_latency.samples
                );
                prop_assert_eq!(got.santos_latency.samples, expected.santos_latency.samples);
                compared += 1;
            } else {
                op.apply(&mut lake);
                index.sync(&lake);
            }
        }
        prop_assert!(compared > 0, "trace contained no queries");

        // A full rebuild (handing the index an older lineage of the lake)
        // keeps the telemetry window instead of zeroing it.
        let pre_churn = lake.clone();
        let probe = Table::from_rows(
            "telemetry_rebuild_probe",
            &["key"],
            vec![vec!["probe_tok".into()]],
        )
        .unwrap();
        lake.add_table(probe).unwrap();
        index.sync(&lake);
        index.sync(&pre_churn); // pre-fork version → changelog miss → rebuild
        prop_assert!(index.is_current(&pre_churn));
        prop_assert_eq!(index.telemetry().topk, expected.topk);
        prop_assert_eq!(index.telemetry().santos, expected.santos);
        index.reset_telemetry();
        prop_assert_eq!(index.telemetry(), DiscoveryTelemetry::default());
    }

    /// Sketch-path soundness under churn: every reported table carries its
    /// exact brute-force containment score, nothing below the threshold is
    /// reported, and a just-added full superset is found immediately.
    #[test]
    fn sketch_path_stays_sound_under_churn(seed in any::<u64>(), ops in 8usize..24) {
        let trace = ChurnWorkload {
            initial_tables: 8,
            rows_per_table: 20,
            vocab: 200,
            ops,
            seed,
        }
        .generate();
        let kb = Arc::new(covid_kb());
        let config = LakeIndexConfig {
            santos: SantosConfig::default(),
            lshe: LshEnsembleConfig {
                num_perm: 64,
                num_partitions: 4,
                rebalance_dirtiness: 0.3,
                ..LshEnsembleConfig::default()
            },
            metadata: None,
        };
        let threshold = config.lshe.threshold;
        let mut lake = DataLake::from_tables(trace.initial).unwrap();
        let mut index = LakeIndex::build(&lake, kb.clone(), config.clone());
        for op in trace.ops {
            match &op {
                ChurnOp::Query(q) => {
                    index.sync(&lake);
                    let truth = brute_containment(&lake, q);
                    let query = TableQuery::with_column(q.clone(), 0);
                    for hit in index.lshe().discover(&query, usize::MAX) {
                        let brute = truth.get(&hit.table).copied().unwrap_or(0.0);
                        prop_assert!(
                            hit.score >= threshold - 1e-12,
                            "{} reported below threshold: {}",
                            hit.table,
                            hit.score
                        );
                        prop_assert!(
                            hit.score <= brute + 1e-12,
                            "{} reported {} above its true containment {}",
                            hit.table,
                            hit.score,
                            brute
                        );
                    }
                }
                ChurnOp::Add(t) => {
                    op.apply(&mut lake);
                    index.sync(&lake);
                    // Churn safety: the new table fully contains a query
                    // over its own keys; staged domains are exact-scanned,
                    // so it must surface at containment 1.0 at once.
                    let probe = Table::from_rows(
                        "staged_probe",
                        &["key"],
                        t.rows().map(|r| vec![r[0].clone()]).collect(),
                    )
                    .unwrap();
                    let hits = index
                        .lshe()
                        .discover(&TableQuery::with_column(probe, 0), usize::MAX);
                    prop_assert!(
                        hits.iter()
                            .any(|d| d.table == t.name() && (d.score - 1.0).abs() < 1e-12),
                        "freshly added {} not discovered: {:?}",
                        t.name(),
                        hits
                    );
                }
                _ => {
                    op.apply(&mut lake);
                }
            }
        }
    }
}

/// The concurrent case of `telemetry_stays_in_lockstep_with_per_query_stats`:
/// the index's sharded telemetry under N threads must equal the sum of the
/// per-request stats those same calls returned — no lost updates, no
/// double counts, regardless of which shard each thread landed on.
/// (Latency histograms are checked for sample counts; durations are
/// wall-clock.)
#[test]
fn telemetry_lockstep_holds_under_concurrent_queries() {
    let trace = ChurnWorkload {
        initial_tables: 10,
        rows_per_table: 14,
        vocab: 160,
        ops: 24,
        seed: 83,
    }
    .generate();
    let kb = Arc::new(covid_kb());
    let mut lake = DataLake::from_tables(trace.initial).unwrap();
    // Apply the whole trace up front: this test is about concurrent
    // *recording*, so the lake stays fixed while threads query.
    for op in trace.ops {
        op.apply(&mut lake);
    }
    let queries: Vec<TableQuery> = lake
        .tables()
        .take(4)
        .map(|t| TableQuery::with_column(t.as_ref().clone(), 0))
        .collect();
    let index = LakeIndex::build(&lake, kb, exact_config());
    let budget = QueryBudget::unlimited().with_max_verifications(6);
    let stage_budget = DiscoveryBudget::default();

    const THREADS: usize = 8;
    const PER_THREAD: usize = 12;
    let per_thread_expected: Vec<DiscoveryTelemetry> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let index = &index;
                let queries = &queries;
                let budget = &budget;
                let stage_budget = &stage_budget;
                scope.spawn(move || {
                    let mut expected = DiscoveryTelemetry::default();
                    for i in 0..PER_THREAD {
                        let q = &queries[(t + i) % queries.len()];
                        let (_, stats) = index.discover_top_k_with_stats(q, 6, budget);
                        expected.record_topk(&stats, Duration::ZERO);
                        // The budgeted stage records both legs; fold the
                        // equivalent per-leg stats by hand (deterministic
                        // given the fixed lake + exact config).
                        let _ = index.discover_all_budgeted(q, 6, stage_budget);
                        let (_, santos_stats) =
                            index
                                .santos()
                                .discover_capped(q, 6, stage_budget.santos_candidates);
                        expected.record_santos(&santos_stats, Duration::ZERO);
                        let (_, join_stats) =
                            index.discover_top_k_with_stats(q, 6, &stage_budget.joinable);
                        expected.record_topk(&join_stats, Duration::ZERO);
                        expected.record_topk(&join_stats, Duration::ZERO);
                    }
                    expected
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut expected = DiscoveryTelemetry::default();
    for e in &per_thread_expected {
        expected.merge(e);
    }
    let got = index.telemetry();
    assert_eq!(
        got.topk, expected.topk,
        "topk counters diverged under threads"
    );
    assert_eq!(
        got.santos, expected.santos,
        "santos counters diverged under threads"
    );
    assert_eq!(
        got.joinable_latency.samples,
        expected.joinable_latency.samples
    );
    assert_eq!(got.santos_latency.samples, expected.santos_latency.samples);
}

/// Deterministic spot-check of the rebalance boundary: enough removals to
/// trip the dirtiness budget repeatedly, then equality with a rebuild.
#[test]
fn tombstone_triggered_rebalance_matches_rebuild() {
    let trace = ChurnWorkload {
        initial_tables: 12,
        rows_per_table: 10,
        vocab: 120,
        ops: 0,
        seed: 7,
    }
    .generate();
    let kb = Arc::new(covid_kb());
    let config = exact_config();
    let mut lake = DataLake::from_tables(trace.initial.clone()).unwrap();
    let mut index = LakeIndex::build(&lake, kb.clone(), config.clone());

    // Remove half the lake one table at a time (each sync applies one
    // tombstone; the 0.15 budget forces several rebalances along the way).
    let names: Vec<String> = lake.names().map(str::to_string).collect();
    for name in names.iter().take(6) {
        lake.remove(name).unwrap();
        index.sync(&lake);
    }
    let fresh = LakeIndex::build(&lake, kb, config);
    let probe = TableQuery::with_column(trace.initial[7].clone(), 0);
    assert_eq!(
        index.discover_all(&probe, 8),
        fresh.discover_all(&probe, 8),
        "index after tombstone-triggered rebalances must match a rebuild"
    );
}
