//! SANTOS candidate-cap oracle: capped, bound-ranked retrieval vs the
//! exhaustive (score-everything) engine on the type-dense
//! `SantosWorkload`.
//!
//! Pinned guarantees, mirroring `lshe_recall.rs` for the joinable leg:
//!
//! * **Exactness at covering caps:** any finite `cap >= lake size` equals
//!   the exhaustive output byte-for-byte (keys, scores, order,
//!   tie-breaks) — the bound-soundness oracle for the type-overlap upper
//!   bound and its early-termination rule.
//! * **Recall floor at the default cap:** top-k recall against the
//!   exhaustive oracle stays ≥ 0.9 (the workload's printed baseline is
//!   recorded in ROADMAP Open items).
//! * **Work reduction:** the capped path scores ≥ 5× fewer candidates
//!   than the exhaustive path on the type-dense lake — the whole point of
//!   the cap.

use std::collections::HashSet;
use std::sync::Arc;

use dialite_datagen::workloads::SantosWorkload;
use dialite_discovery::{DiscoveryBudget, SantosConfig, SantosDiscovery, TableQuery};
use dialite_table::DataLake;

const K: usize = 10;

fn workload() -> SantosWorkload {
    SantosWorkload {
        queries: 8,
        ..SantosWorkload::default()
    }
}

fn build(trace: &dialite_datagen::SantosTrace) -> (DataLake, SantosDiscovery) {
    let lake = DataLake::from_tables(trace.tables.clone()).unwrap();
    let engine = SantosDiscovery::build(&lake, Arc::new(trace.kb.clone()), SantosConfig::default());
    (lake, engine)
}

#[test]
fn covering_cap_equals_exhaustive_exactly() {
    let trace = workload().generate();
    let (lake, engine) = build(&trace);
    for q in &trace.queries {
        let query = TableQuery::with_column(q.clone(), 0);
        for k in [1, K, 50] {
            let (exhaustive, _) = engine.discover_capped(&query, k, usize::MAX);
            let (capped, stats) = engine.discover_capped(&query, k, lake.len());
            assert_eq!(
                capped,
                exhaustive,
                "cap covering the lake must be exact for {} at k={k}",
                q.name()
            );
            assert!(!stats.cap_hit, "covering cap must never bind: {stats:?}");
            assert!(!stats.full_scan, "typed queries must use the type index");
        }
    }
}

#[test]
fn default_cap_holds_the_recall_floor_and_cuts_scoring_5x() {
    let trace = workload().generate();
    let (_lake, engine) = build(&trace);
    let cap = DiscoveryBudget::default().santos_candidates;

    let mut truth_hits = 0usize;
    let mut recalled = 0usize;
    let mut exhaustive_scored = 0usize;
    let mut capped_scored = 0usize;
    let mut retrieved = 0usize;
    for q in &trace.queries {
        let query = TableQuery::with_column(q.clone(), 0);
        let (exhaustive, ex_stats) = engine.discover_capped(&query, K, usize::MAX);
        // The untruncated truth (k = MAX), computed once per query: a
        // capped hit may legitimately fall outside the exhaustive top-K,
        // but it must exist in the full ranking at the same score.
        let (truth, _) = engine.discover_capped(&query, usize::MAX, usize::MAX);
        let (capped, stats) = engine.discover_capped(&query, K, cap);
        assert!(!stats.full_scan, "typed query fell back to full scan");
        assert!(
            stats.candidates_scored <= cap,
            "cap violated: {} > {cap}",
            stats.candidates_scored
        );
        // Soundness: capped hits are a subset of the exhaustive output at
        // identical scores — the cap drops work, it never invents results.
        for hit in &capped {
            let full = truth
                .iter()
                .find(|d| d.table == hit.table)
                .unwrap_or_else(|| panic!("{} invented by the cap", hit.table));
            assert_eq!(hit.score, full.score, "score drifted for {}", hit.table);
        }

        let want: HashSet<&str> = exhaustive.iter().map(|d| d.table.as_str()).collect();
        let got: HashSet<&str> = capped.iter().map(|d| d.table.as_str()).collect();
        truth_hits += want.len();
        recalled += want.intersection(&got).count();
        exhaustive_scored += ex_stats.candidates_scored;
        capped_scored += stats.candidates_scored;
        retrieved += stats.candidates_retrieved;
    }

    assert!(
        truth_hits >= 4 * trace.queries.len(),
        "workload too thin to quantify recall: {truth_hits} truth hits"
    );
    let recall = recalled as f64 / truth_hits as f64;
    let reduction = exhaustive_scored as f64 / (capped_scored.max(1)) as f64;
    println!(
        "santos cap recall@{K}: {recall:.3} over {truth_hits} oracle hits at cap {cap}; \
         scored {capped_scored} vs exhaustive {exhaustive_scored} ({reduction:.1}x fewer, \
         {retrieved} retrieved)"
    );
    assert!(
        recall >= 0.9,
        "capped recall degraded below the floor: {recall:.3}"
    );
    assert!(
        reduction >= 5.0,
        "cap must cut scored candidates at least 5x on the type-dense lake, got {reduction:.1}x"
    );
    // The lake really is type-dense: the type index retrieves a large
    // candidate fraction per query, which is why the cap matters at all.
    assert!(
        retrieved >= trace.queries.len() * 400,
        "workload lost its type density: {retrieved} retrieved over {} queries",
        trace.queries.len()
    );
}

#[test]
fn incremental_maintenance_keeps_capped_retrieval_exact() {
    // The cap machinery reads `by_type` and the per-table semantics; churn
    // maintains both. A capped query after upsert/remove must equal the
    // same query against a freshly built engine.
    let trace = SantosWorkload {
        tables: 60,
        queries: 3,
        ..SantosWorkload::default()
    }
    .generate();
    let mut lake = DataLake::from_tables(trace.tables.clone()).unwrap();
    let kb = Arc::new(trace.kb.clone());
    let mut engine = SantosDiscovery::build(&lake, kb.clone(), SantosConfig::default());

    let (gone, _) = lake.remove_table(trace.tables[3].name()).unwrap();
    engine.remove_table(gone);
    let newcomer = trace.tables[5].clone().renamed("santos_fresh");
    let slot = lake.add_table(newcomer.clone()).unwrap();
    engine.upsert_table(slot, &newcomer);

    let fresh = SantosDiscovery::build(&lake, kb, SantosConfig::default());
    for q in &trace.queries {
        let query = TableQuery::with_column(q.clone(), 0);
        for cap in [8, lake.len(), usize::MAX] {
            assert_eq!(
                engine.discover_capped(&query, K, cap).0,
                fresh.discover_capped(&query, K, cap).0,
                "churned capped retrieval diverged at cap {cap} for {}",
                q.name()
            );
        }
    }
}
