//! Cost-model oracle: the bounded retrieval paths introduced for the last
//! two exhaustive legs must collapse to their exhaustive oracles exactly
//! whenever nothing binds, and degrade to *sound subsets at exact scores*
//! when a budget does bind — never to approximations.
//!
//! Three properties, over random churn traces (mirroring
//! `pipeline_oracle.rs`):
//!
//! * **Unlimited == full posting merge, byte-for-byte**: with the sketch
//!   bypassed (`exact_fallback_below = usize::MAX`) the planner's
//!   cost-bounded exact path at an unlimited — or merely *covering* —
//!   postings budget must reproduce the unplanned full posting merge
//!   ([`LshEnsembleDiscovery::exact_merge_oracle`]) on keys, scores,
//!   order and tie-breaks, at every `k`.
//! * **Finite budgets are sound**: any postings cap yields a subset of
//!   the exhaustive answer whose scores are *exactly* the exhaustive
//!   scores (every reported containment is verified, never estimated),
//!   ranked consistently with the oracle.
//! * **Typeless capped == full scan at covering caps**: on a KB-empty
//!   lake the SANTOS synthesized-signal posting index at any covering
//!   cap equals the `cap == usize::MAX` exhaustive full scan
//!   byte-for-byte, and smaller caps stay sound subsets.
//!
//! CI runs this with `PROPTEST_CASES=64` on push and 1024 in the
//! scheduled deep job.

use std::collections::HashMap;
use std::sync::Arc;

use dialite_datagen::workloads::{ChurnOp, ChurnWorkload};
use dialite_discovery::{
    Discovered, LshEnsembleConfig, LshEnsembleDiscovery, QueryBudget, SantosConfig,
    SantosDiscovery, TableQuery, TopKPlanner,
};
use dialite_kb::KbBuilder;
use dialite_table::DataLake;
use proptest::prelude::*;

/// Sketch-free engine config: every query takes the exact posting path,
/// so output is a pure function of lake state and budget — the regime
/// where the cost model's equality contract is bit-exact.
fn exact_config() -> LshEnsembleConfig {
    LshEnsembleConfig {
        num_perm: 32,
        num_partitions: 2,
        exact_fallback_below: usize::MAX,
        ..LshEnsembleConfig::default()
    }
}

fn churn(seed: u64, ops: usize) -> dialite_datagen::ChurnTrace {
    ChurnWorkload {
        initial_tables: 8,
        rows_per_table: 12,
        vocab: 150,
        ops,
        seed,
    }
    .generate()
}

/// Exhaustive per-table best scores: the full merge at `k = usize::MAX`
/// (the k-bound disabled), keyed for subset checks.
fn full_scores(engine: &LshEnsembleDiscovery, query: &TableQuery) -> HashMap<String, f64> {
    engine
        .exact_merge_oracle(query, usize::MAX)
        .into_iter()
        .map(|d| (d.table, d.score))
        .collect()
}

proptest! {
    /// Unlimited and covering postings budgets reproduce the unplanned
    /// full posting merge exactly, at every query point of a churn trace
    /// and every `k` — the contract that lets the cost model replace the
    /// exhaustive merge at all.
    #[test]
    fn unlimited_budget_equals_the_full_posting_merge(
        seed in any::<u64>(),
        ops in 10usize..22,
    ) {
        let trace = churn(seed, ops);
        let planner = TopKPlanner::new();
        // Finite but covering: larger than any posting volume these small
        // lakes can reach, so the budget arm is exercised without binding.
        let covering = QueryBudget::unlimited().with_max_postings(1 << 40);
        let mut lake = DataLake::from_tables(trace.initial).unwrap();
        let mut compared = 0usize;
        for op in trace.ops {
            if let ChurnOp::Query(q) = op {
                let engine = LshEnsembleDiscovery::build(&lake, exact_config());
                let query = TableQuery::with_column(q, 0);
                for k in [1usize, 6, usize::MAX] {
                    let oracle = engine.exact_merge_oracle(&query, k);
                    let (hits, stats) = planner.discover_top_k_with_stats(
                        &engine,
                        &query,
                        k,
                        &QueryBudget::unlimited(),
                    );
                    prop_assert!(stats.exact_path, "sketch must stay bypassed");
                    prop_assert!(!stats.budget_exhausted);
                    prop_assert_eq!(
                        &hits, &oracle,
                        "unlimited cost model diverged from the full merge at k={}",
                        k
                    );
                    let budgeted = planner.discover_top_k(&engine, &query, k, &covering);
                    prop_assert_eq!(
                        &budgeted, &oracle,
                        "covering postings budget diverged from the full merge at k={}",
                        k
                    );
                }
                compared += 1;
            } else {
                op.apply(&mut lake);
            }
        }
        prop_assert!(compared > 0, "trace contained no queries");
    }

    /// Any finite postings budget returns a sound subset: every reported
    /// table carries its *exact* exhaustive score (subset semantics, not
    /// approximation), the list is within `k`, and exhaustion is reported
    /// whenever results were dropped.
    #[test]
    fn finite_postings_budgets_are_sound_subsets_at_exact_scores(
        seed in any::<u64>(),
        ops in 10usize..22,
        postings in 0usize..64,
    ) {
        let trace = churn(seed, ops);
        let planner = TopKPlanner::new();
        let budget = QueryBudget::unlimited().with_max_postings(postings);
        let mut lake = DataLake::from_tables(trace.initial).unwrap();
        for op in trace.ops {
            if let ChurnOp::Query(q) = op {
                let engine = LshEnsembleDiscovery::build(&lake, exact_config());
                let query = TableQuery::with_column(q, 0);
                let full = full_scores(&engine, &query);
                let k = 6usize;
                let oracle = engine.exact_merge_oracle(&query, k);
                let (hits, stats) =
                    planner.discover_top_k_with_stats(&engine, &query, k, &budget);
                prop_assert!(hits.len() <= k);
                for d in &hits {
                    let exact = full.get(&d.table);
                    prop_assert_eq!(
                        exact,
                        Some(&d.score),
                        "budgeted hit {} must carry its exact exhaustive score",
                        d.table
                    );
                }
                // Dropping results without flagging exhaustion would make
                // the budget invisible to telemetry.
                if hits != oracle {
                    prop_assert!(
                        stats.budget_exhausted,
                        "a binding budget must be reported (postings={})",
                        postings
                    );
                }
            } else {
                op.apply(&mut lake);
            }
        }
    }

    /// Typeless SANTOS (KB-empty lake): any covering candidate cap equals
    /// the `usize::MAX` exhaustive full scan byte-for-byte, and tighter
    /// caps return sound subsets at exact scores.
    #[test]
    fn typeless_covering_cap_equals_the_full_scan(
        seed in any::<u64>(),
        ops in 10usize..22,
    ) {
        let trace = churn(seed, ops);
        let kb = Arc::new(KbBuilder::new().build());
        let mut lake = DataLake::from_tables(trace.initial).unwrap();
        let mut compared = 0usize;
        for op in trace.ops {
            if let ChurnOp::Query(q) = op {
                let engine =
                    SantosDiscovery::build(&lake, kb.clone(), SantosConfig::default());
                let query = TableQuery::with_column(q, 0);
                let full: HashMap<String, f64> = engine
                    .discover_capped(&query, usize::MAX, usize::MAX)
                    .0
                    .into_iter()
                    .map(|d: Discovered| (d.table, d.score))
                    .collect();
                for k in [1usize, 6, usize::MAX] {
                    let (oracle, oracle_stats) =
                        engine.discover_capped(&query, k, usize::MAX);
                    prop_assert!(
                        oracle_stats.full_scan,
                        "usize::MAX must stay the exhaustive full-scan oracle"
                    );
                    let (capped, stats) = engine.discover_capped(&query, k, lake.len() + 8);
                    prop_assert!(!stats.full_scan, "finite caps must use the posting index");
                    prop_assert!(!stats.cap_hit, "a covering cap must never bind");
                    prop_assert_eq!(
                        &capped, &oracle,
                        "covering cap diverged from the full scan at k={}",
                        k
                    );
                    let (tight, _) = engine.discover_capped(&query, k, 2);
                    prop_assert!(tight.len() <= k.min(2));
                    for d in &tight {
                        prop_assert_eq!(
                            full.get(&d.table),
                            Some(&d.score),
                            "tight-cap hit {} must carry its exact score",
                            &d.table
                        );
                    }
                }
                compared += 1;
            } else {
                op.apply(&mut lake);
            }
        }
        prop_assert!(compared > 0, "trace contained no queries");
    }
}
