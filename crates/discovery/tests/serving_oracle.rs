//! Concurrency oracle for the serving layer: whatever interleaving the
//! scheduler produces, `DiscoveryService` must behave like *some*
//! single-threaded execution.
//!
//! Three properties are pinned:
//!
//! * **Linearization** (the main oracle): every concurrently served
//!   response is byte-identical to a fresh single-threaded
//!   `discover_all_budgeted` against the lake state named by the version
//!   the response reports. The mutation serialization order is captured
//!   inside the `mutate` closure — under the service's write lock — so
//!   the replay walks the exact state sequence the service produced.
//!   Run with the exact (sketch-free) index config and an unlimited
//!   budget, the regime where discovery output is a pure function of
//!   lake state (see `incremental_oracle.rs`).
//! * **No reader starvation**: under continuous churn from a writer,
//!   every reader keeps completing queries (catches writer-preferring
//!   `RwLock` pathologies).
//! * **Admission control**: over-capacity requests get `Busy` — never a
//!   deadlock, never a partial result — permits are never leaked, and
//!   capacity recovers after a rejection storm.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dialite_datagen::workloads::{ServingOp, ServingTrace, ServingWorkload};
use dialite_discovery::{
    Discovered, DiscoveryBudget, DiscoveryService, LakeIndex, LakeIndexConfig, LshEnsembleConfig,
    MetadataConfig, SantosConfig, ServingConfig, ServingError, TableQuery,
};
use dialite_kb::curated::covid_kb;
use dialite_table::DataLake;
use proptest::prelude::*;

/// Sketch-free config: discovery output is a pure function of lake state,
/// so "byte-identical to a single-threaded run" is well-defined.
fn exact_config() -> LakeIndexConfig {
    LakeIndexConfig {
        santos: SantosConfig::default(),
        lshe: LshEnsembleConfig {
            num_perm: 64,
            num_partitions: 4,
            exact_fallback_below: usize::MAX,
            rebalance_dirtiness: 0.15,
            ..LshEnsembleConfig::default()
        },
        // Serve all three legs: the metadata engine must stay coherent
        // under the same concurrent read/churn interleavings as the rest.
        metadata: Some(MetadataConfig::default()),
    }
}

fn service_over(trace: &ServingTrace, serving: ServingConfig) -> DiscoveryService {
    let mut lake = DataLake::new();
    for t in &trace.initial {
        lake.add(t.clone()).expect("unique initial names");
    }
    DiscoveryService::new(lake, Arc::new(covid_kb()), exact_config(), serving)
}

/// One concurrently served response, as the replay needs it.
struct Answered {
    pool_idx: usize,
    version: u64,
    results: Vec<(String, Vec<Discovered>)>,
}

/// Drive the trace through the service from `threads` clients; return the
/// serialized mutation log (op indices, in write-lock order) and every
/// answered response.
fn drive(
    service: &DiscoveryService,
    trace: &ServingTrace,
    queries: &[TableQuery],
    threads: usize,
    k: usize,
    budget: &DiscoveryBudget,
) -> (Vec<usize>, Vec<Answered>) {
    let cursor = AtomicUsize::new(0);
    let mutation_log: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let answered: Mutex<Vec<Answered>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<Answered> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(op) = trace.ops.get(i) else { break };
                    match op {
                        ServingOp::Query(p) => {
                            let response = service
                                .query(&queries[*p], k, budget)
                                .expect("generous capacity never rejects");
                            local.push(Answered {
                                pool_idx: *p,
                                version: response.version,
                                results: response.results,
                            });
                        }
                        ServingOp::Mutate(_) => {
                            service.mutate(|lake| {
                                op.apply_tolerant(lake);
                                // Under the write lock: log order is the
                                // serialization order.
                                mutation_log.lock().unwrap().push(i);
                            });
                        }
                    }
                }
                answered.lock().unwrap().append(&mut local);
            });
        }
    });
    (
        mutation_log.into_inner().unwrap(),
        answered.into_inner().unwrap(),
    )
}

proptest! {
    /// The linearization oracle (see module docs). Each version-group of
    /// responses must match a *fresh* `LakeIndex::build` over exactly one
    /// state of the serialized replay — states advance monotonically with
    /// versions, so the walk never rewinds; a response matching no state
    /// is a linearization violation.
    #[test]
    fn concurrent_serving_equals_single_threaded_linearization(
        seed in any::<u64>(),
        ops in 16usize..40,
    ) {
        let trace = ServingWorkload {
            tables: 8,
            hub_tables: 2,
            hub_rows: 48,
            tail_rows: 6,
            vocab: 300,
            query_pool: 4,
            query_rows: 16,
            ops,
            read_ratio: 0.75,
            zipf_s: 1.0,
            seed,
        }
        .generate();
        let service = service_over(&trace, ServingConfig::default());
        let queries: Vec<TableQuery> = trace
            .pool
            .iter()
            .map(|t| TableQuery::with_column(t.clone(), 0))
            .collect();
        let budget = DiscoveryBudget::unlimited();
        let (log, mut answered) = drive(&service, &trace, &queries, 4, 6, &budget);
        prop_assert!(!answered.is_empty(), "trace served no queries");

        answered.sort_by_key(|a| a.version);
        let kb = Arc::new(covid_kb());
        let mut replay = DataLake::new();
        for t in &trace.initial {
            replay.upsert(t.clone());
        }
        let mut log_pos = 0usize;
        let mut index = LakeIndex::build(&replay, kb.clone(), exact_config());
        let mut remaining = answered.as_slice();
        while !remaining.is_empty() {
            let version = remaining[0].version;
            let n = remaining.iter().take_while(|a| a.version == version).count();
            let (group, rest) = remaining.split_at(n);
            loop {
                let all_match = group.iter().all(|a| {
                    index.discover_all_budgeted(&queries[a.pool_idx], 6, &budget) == a.results
                });
                if all_match {
                    break;
                }
                prop_assert!(
                    log_pos < log.len(),
                    "linearization violated: {} response(s) stamped v{} match no \
                     serialized lake state",
                    group.len(),
                    version
                );
                trace.ops[log[log_pos]].apply_tolerant(&mut replay);
                // Fresh build per state: this oracle must not depend on
                // incremental sync (that equivalence has its own oracle).
                index = LakeIndex::build(&replay, kb.clone(), exact_config());
                log_pos += 1;
            }
            remaining = rest;
        }
    }
}

/// Under continuous churn from one writer, 8 readers each keep completing
/// queries — a writer-preferring lock (or a sync that holds the write
/// guard unfairly long) would starve some reader below the floor.
#[test]
fn readers_are_not_starved_by_a_churning_writer() {
    let trace = ServingWorkload {
        tables: 12,
        hub_tables: 2,
        hub_rows: 48,
        tail_rows: 6,
        vocab: 300,
        query_pool: 4,
        query_rows: 16,
        ops: 0,
        read_ratio: 1.0,
        zipf_s: 1.0,
        seed: 71,
    }
    .generate();
    let service = service_over(&trace, ServingConfig::default());
    let queries: Vec<TableQuery> = trace
        .pool
        .iter()
        .map(|t| TableQuery::with_column(t.clone(), 0))
        .collect();
    let budget = DiscoveryBudget::default();
    const READERS: usize = 8;
    const FLOOR: usize = 5;
    let window = Duration::from_millis(400);
    let deadline = Instant::now() + window;
    let service = &service;

    let counts: Vec<usize> = std::thread::scope(|scope| {
        // Writer: churn one table in and out until the window closes.
        let churn_table = trace.initial[0].clone();
        let writer = scope.spawn(move || {
            let mut churned = 0usize;
            while Instant::now() < deadline {
                service.mutate(|lake| {
                    if lake.remove(churn_table.name()).is_none() {
                        lake.upsert(churn_table.clone());
                    }
                });
                churned += 1;
            }
            churned
        });
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let queries = &queries;
                let budget = &budget;
                scope.spawn(move || {
                    let mut done = 0usize;
                    while Instant::now() < deadline {
                        service
                            .query(&queries[r % queries.len()], 5, budget)
                            .expect("generous capacity");
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        let churned = writer.join().unwrap();
        assert!(churned > 0, "writer never got the write lock");
        readers.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (r, done) in counts.iter().enumerate() {
        assert!(
            *done >= FLOOR,
            "reader {r} starved: completed {done} < {FLOOR} queries in the \
             window (all counts: {counts:?})"
        );
    }
}

/// Zero capacity: every request is `Busy`, immediately, with no engine
/// work and no partial result — and the rejection is counted.
#[test]
fn zero_capacity_always_rejects_without_deadlock() {
    let trace = ServingWorkload {
        tables: 6,
        query_pool: 2,
        ops: 0,
        seed: 73,
        ..ServingWorkload::default()
    }
    .generate();
    let service = service_over(&trace, ServingConfig::default().with_max_in_flight(0));
    let query = TableQuery::with_column(trace.pool[0].clone(), 0);
    for _ in 0..16 {
        assert_eq!(
            service.query(&query, 5, &DiscoveryBudget::default()),
            Err(ServingError::Busy)
        );
    }
    let t = service.telemetry();
    assert_eq!(t.rejected, 16);
    assert_eq!(t.served, 0);
    assert_eq!(t.query_latency.samples, 0, "rejections record no latency");
}

/// Tiny capacity under a thread storm: every outcome is a full response
/// or `Busy` (nothing in between), the telemetry accounts for every
/// attempt, and — because permits release on drop, panic included —
/// capacity always recovers afterwards.
#[test]
fn over_capacity_storm_yields_busy_and_capacity_recovers() {
    let trace = ServingWorkload {
        tables: 10,
        hub_tables: 2,
        hub_rows: 48,
        tail_rows: 6,
        vocab: 300,
        query_pool: 4,
        query_rows: 16,
        ops: 0,
        read_ratio: 1.0,
        zipf_s: 1.0,
        seed: 79,
    }
    .generate();
    let service = service_over(&trace, ServingConfig::default().with_max_in_flight(2));
    let queries: Vec<TableQuery> = trace
        .pool
        .iter()
        .map(|t| TableQuery::with_column(t.clone(), 0))
        .collect();
    let budget = DiscoveryBudget::default();
    const THREADS: usize = 8;
    const PER_THREAD: usize = 20;

    let ok = AtomicUsize::new(0);
    let busy = AtomicUsize::new(0);
    let service = &service;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let queries = &queries;
            let budget = &budget;
            let (ok, busy) = (&ok, &busy);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    match service.query(&queries[(t + i) % queries.len()], 5, budget) {
                        Ok(response) => {
                            // Full response, never partial: the result
                            // shape is the complete per-engine list
                            // (santos, lsh-ensemble, metadata).
                            assert_eq!(response.results.len(), 3);
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServingError::Busy) => {
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let (ok, busy) = (ok.load(Ordering::Relaxed), busy.load(Ordering::Relaxed));
    assert_eq!(ok + busy, THREADS * PER_THREAD, "every attempt accounted");
    assert!(ok >= 2, "capacity 2 must admit some requests: ok={ok}");
    let t = service.telemetry();
    assert_eq!(t.served, ok as u64);
    assert_eq!(t.rejected, busy as u64);

    // Permits were all released: a lone request now always succeeds.
    for q in &queries {
        assert!(service.query(q, 5, &budget).is_ok(), "capacity leaked");
    }
}
