//! Metadata-discovery oracle: the inverted-index, bound-pruned retrieval
//! in [`MetadataDiscovery`] is measured against an *independent* naive
//! full header scan written here straight from the definition — mean over
//! query columns of the best header-token Jaccard against any candidate
//! column, reported when it clears the score filter.
//!
//! Pinned properties:
//!
//! * **Unlimited cap is the exhaustive oracle**: `cap == usize::MAX`
//!   output equals the naive scan byte-for-byte (keys *and* scores) at
//!   every query point of a random churn trace — for a fresh build and
//!   for an engine maintained incrementally through [`LakeIndex::sync`].
//! * **Finite caps are sound**: under any cap, every returned hit carries
//!   its exact full-scan score, results stay sorted and within `k`.
//! * **Covering caps are exact**: any finite `cap >= lake size` equals
//!   the exhaustive output exactly, with `cap_hit` never set.
//! * **Recall floor on a heterogeneous lake**: header queries against a
//!   [`HeterogeneousLakeWorkload`] corpus retrieve *every* table whose
//!   anchor header they name once `k` covers the lake.

use std::collections::HashSet;
use std::sync::Arc;

use dialite_datagen::workloads::{ChurnOp, ChurnWorkload, HeterogeneousLakeWorkload};
use dialite_discovery::{
    Discovered, LakeIndex, LakeIndexConfig, LshEnsembleConfig, MetadataConfig, MetadataDiscovery,
    SantosConfig, TableQuery,
};
use dialite_kb::curated::covid_kb;
use dialite_table::{DataLake, Table};
use dialite_text::{jaccard, word_tokens};
use proptest::prelude::*;

/// Per-column header token sets, exactly as the engine tokenizes them.
fn header_sets(table: &Table) -> Vec<HashSet<String>> {
    table
        .schema()
        .columns()
        .iter()
        .map(|col| word_tokens(&col.name).into_iter().collect())
        .collect()
}

/// The naive oracle: score every lake table directly, no index, no
/// bounds, no caps. Mirrors the engine's definition (mean over query
/// columns of the best per-column Jaccard), including the score filter,
/// the score-then-name ordering and the query's self-exclusion.
fn naive_scan(
    lake: &DataLake,
    query: &TableQuery,
    k: usize,
    config: &MetadataConfig,
) -> Vec<Discovered> {
    let q_cols = header_sets(&query.table);
    if q_cols.is_empty() || k == 0 {
        return Vec::new();
    }
    let mut hits: Vec<Discovered> = lake
        .tables()
        .filter(|t| t.name() != query.table.name())
        .filter_map(|t| {
            let cols = header_sets(t);
            if cols.is_empty() {
                return None;
            }
            let total: f64 = q_cols
                .iter()
                .map(|qc| cols.iter().map(|cc| jaccard(qc, cc)).fold(0.0, f64::max))
                .sum();
            let score = total / q_cols.len() as f64;
            (score >= config.min_score && score > 0.0).then(|| Discovered {
                table: t.name().to_string(),
                score,
            })
        })
        .collect();
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.table.cmp(&b.table)));
    hits.truncate(k);
    hits
}

/// Index config with the metadata leg on; the value legs stay cheap —
/// they are not under test here, the sync plumbing is.
fn metadata_config() -> LakeIndexConfig {
    LakeIndexConfig {
        santos: SantosConfig::default(),
        lshe: LshEnsembleConfig {
            num_perm: 16,
            num_partitions: 2,
            ..LshEnsembleConfig::default()
        },
        metadata: Some(MetadataConfig::default()),
    }
}

proptest! {
    /// Unlimited-cap output equals the independent naive scan at every
    /// query point of a random churn trace — both for the engine kept in
    /// sync incrementally through the [`LakeIndex`] event path and for a
    /// fresh standalone build of the current lake.
    #[test]
    fn unlimited_cap_equals_the_naive_full_scan_across_churn(
        seed in any::<u64>(),
        ops in 12usize..28,
    ) {
        let trace = ChurnWorkload {
            initial_tables: 8,
            rows_per_table: 12,
            vocab: 150,
            ops,
            seed,
        }
        .generate();
        let kb = Arc::new(covid_kb());
        let mut lake = DataLake::from_tables(trace.initial).unwrap();
        let mut index = LakeIndex::build(&lake, kb, metadata_config());
        let mut compared = 0usize;
        for op in trace.ops {
            if let ChurnOp::Query(q) = &op {
                index.sync(&lake);
                let query = TableQuery::new(q.clone());
                let maintained = index.metadata().expect("metadata leg is configured");
                let fresh = MetadataDiscovery::build(&lake, MetadataConfig::default());
                for k in [1usize, 3, 8] {
                    let expected = naive_scan(&lake, &query, k, &MetadataConfig::default());
                    let (got, stats) = maintained.discover_capped(&query, k, usize::MAX);
                    prop_assert!(stats.full_scan, "unlimited cap must full-scan");
                    prop_assert_eq!(
                        &got, &expected,
                        "maintained engine diverged from the naive scan at k={}", k
                    );
                    prop_assert_eq!(
                        &fresh.discover_capped(&query, k, usize::MAX).0, &expected,
                        "fresh build diverged from the naive scan at k={}", k
                    );
                }
                compared += 1;
            } else {
                op.apply(&mut lake);
            }
        }
        prop_assert!(compared > 0, "trace contained no queries");
    }

    /// Finite caps: sound under any cap (every hit is a true hit with its
    /// exact score, sorted, within `k`), and *exact* — `cap_hit` never
    /// set — as soon as the cap covers the lake.
    #[test]
    fn finite_caps_are_sound_and_covering_caps_are_exact(
        seed in any::<u64>(),
        ops in 8usize..20,
        cap in 0usize..12,
        k in 1usize..8,
        pick in 0usize..8,
    ) {
        let trace = ChurnWorkload {
            initial_tables: 8,
            rows_per_table: 12,
            vocab: 150,
            ops,
            seed,
        }
        .generate();
        let mut lake = DataLake::from_tables(trace.initial).unwrap();
        let mut queries = Vec::new();
        for op in trace.ops {
            if let ChurnOp::Query(q) = &op {
                queries.push(q.clone());
            } else {
                op.apply(&mut lake);
            }
        }
        if queries.is_empty() {
            return; // trace without query points pins nothing
        }
        let query = TableQuery::new(queries[pick % queries.len()].clone());
        let engine = MetadataDiscovery::build(&lake, MetadataConfig::default());
        let oracle_all = naive_scan(&lake, &query, usize::MAX, &MetadataConfig::default());

        let (got, _) = engine.discover_capped(&query, k, cap);
        prop_assert!(got.len() <= k);
        prop_assert!(
            got.windows(2).all(|w| w[0].score >= w[1].score),
            "capped results must stay sorted: {:?}", got
        );
        for d in &got {
            prop_assert!(
                oracle_all.contains(d),
                "capped hit {:?} is not a true full-scan hit", d
            );
        }

        // A covering cap is byte-identical to the exhaustive output.
        let covering = engine.len().max(1);
        let (exact, stats) = engine.discover_capped(&query, k, covering);
        prop_assert!(!stats.cap_hit, "a covering cap must never report cap_hit");
        prop_assert!(!stats.full_scan, "finite caps take the bounded path");
        let mut expected = oracle_all;
        expected.truncate(k);
        prop_assert_eq!(exact, expected, "covering cap diverged from the oracle");
    }
}

/// Recall floor on an open-data-shaped corpus: every table whose anchor
/// header a cluster query names is retrieved once `k` covers the lake
/// (their scores clear `min_score` by construction), and modest-`k`
/// results never contain a table sharing no header token with the query.
#[test]
fn heterogeneous_header_queries_recall_their_cluster() {
    let spec = HeterogeneousLakeWorkload {
        tables: 240,
        clusters: 6,
        cluster_headers: 8,
        max_cols: 4,
        max_rows: 32,
        value_vocab: 300,
        queries: 6,
        query_rows: 4,
        seed: 83,
        ..HeterogeneousLakeWorkload::default()
    };
    let lake = spec.lake();
    let engine = MetadataDiscovery::build(&lake, MetadataConfig::default());
    let mut checked = 0usize;
    for q in spec.header_queries() {
        let q_headers: HashSet<String> = q
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let relevant: HashSet<String> = lake
            .tables()
            .filter(|t| q_headers.contains(&t.schema().column(0).name))
            .map(|t| t.name().to_string())
            .collect();
        if relevant.is_empty() {
            continue; // tail cluster whose first headers no table drew
        }
        checked += 1;
        let query = TableQuery::new(q);

        // Full recall at lake-covering k: anchor matches score >= 1/cols
        // >= min_score, so none may be dropped.
        let (hits, _) = engine.discover_capped(&query, engine.len(), usize::MAX);
        let hit_names: HashSet<&str> = hits.iter().map(|d| d.table.as_str()).collect();
        for name in &relevant {
            assert!(
                hit_names.contains(name.as_str()),
                "cluster table {name} missing from header-query results"
            );
        }

        // Precision at modest k through the bounded path: every result
        // genuinely shares a header token with the query.
        let q_tokens: HashSet<String> = q_headers.iter().flat_map(|h| word_tokens(h)).collect();
        let (top, _) = engine.discover_capped(&query, 16, 64);
        for d in &top {
            let table = lake.get(&d.table).expect("hit names a live table");
            let shares = table
                .schema()
                .columns()
                .iter()
                .flat_map(|c| word_tokens(&c.name))
                .any(|tok| q_tokens.contains(&tok));
            assert!(shares, "{} shares no header token with the query", d.table);
        }
    }
    assert!(
        checked >= 3,
        "too few clusters materialized anchors: {checked}"
    );
}
