//! The LSH Ensemble containment-search index (Zhu et al., VLDB 2016).
//!
//! Domains (column value sets) are partitioned by set size (equi-depth).
//! Each partition materializes banding tables for every power-of-two row
//! count `r ≤ num_perm`. A containment query converts its threshold into a
//! per-partition Jaccard threshold using the partition's upper size bound,
//! picks the (near-)optimal `(b, r)` for that threshold among the
//! materialized `r` values, and probes `b` bands.
//!
//! The index is generic over the domain **key type** `K` (default
//! `String`): callers that identify domains structurally — e.g. the
//! discovery layer's `(table_idx, col)` pairs — index copyable ids instead
//! of formatted strings.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use dialite_text::fnv1a64;

use crate::hasher::{MinHasher, Signature};
use crate::params::{containment_to_jaccard, optimal_params_restricted};

fn band_hash(r: usize, band_idx: usize, slots: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(16 + slots.len() * 8);
    bytes.extend_from_slice(&(r as u64).to_le_bytes());
    bytes.extend_from_slice(&(band_idx as u64).to_le_bytes());
    for s in slots {
        bytes.extend_from_slice(&s.to_le_bytes());
    }
    fnv1a64(&bytes)
}

struct REntry {
    r: usize,
    /// `num_perm / r` hash tables, one per band.
    tables: Vec<HashMap<u64, Vec<u32>>>,
}

struct Partition<K> {
    /// Maximum domain size in this partition (the `u` of the containment →
    /// Jaccard conversion).
    upper: usize,
    lower: usize,
    keys: Vec<K>,
    r_entries: Vec<REntry>,
}

impl<K: Clone + Eq + Hash> Partition<K> {
    fn insert(&mut self, key: K, sig: &Signature) {
        let id = self.keys.len() as u32;
        self.keys.push(key);
        for re in &mut self.r_entries {
            for (band, table) in re.tables.iter_mut().enumerate() {
                let lo = band * re.r;
                let h = band_hash(re.r, band, &sig.0[lo..lo + re.r]);
                table.entry(h).or_default().push(id);
            }
        }
    }

    fn query(&self, sig: &Signature, b: usize, r: usize, hits: &mut HashSet<K>) {
        let Some(re) = self.r_entries.iter().find(|re| re.r == r) else {
            return;
        };
        for band in 0..b.min(re.tables.len()) {
            let lo = band * r;
            let h = band_hash(r, band, &sig.0[lo..lo + r]);
            if let Some(ids) = re.tables[band].get(&h) {
                hits.extend(ids.iter().map(|&id| self.keys[id as usize].clone()));
            }
        }
    }
}

/// Accumulates domains before partitioning. `K` is the domain key type.
pub struct LshEnsembleBuilder<K = String> {
    hasher: MinHasher,
    num_perm: usize,
    entries: Vec<(K, usize, Signature)>,
}

impl<K: Clone + Eq + Hash + Ord> LshEnsembleBuilder<K> {
    /// Builder with `num_perm` hash functions and a deterministic seed.
    pub fn new(num_perm: usize, seed: u64) -> LshEnsembleBuilder<K> {
        LshEnsembleBuilder {
            hasher: MinHasher::new(num_perm, seed),
            num_perm,
            entries: Vec::new(),
        }
    }

    /// The hasher queries must use to be comparable with this index.
    pub fn hasher(&self) -> &MinHasher {
        &self.hasher
    }

    /// Hash and stage a domain under `key`.
    pub fn insert_tokens<'a, I: IntoIterator<Item = &'a str>>(&mut self, key: K, tokens: I) {
        let toks: Vec<&str> = tokens.into_iter().collect();
        let size = toks.len();
        let sig = self.hasher.signature(toks);
        self.entries.push((key, size, sig));
    }

    /// Stage a pre-computed signature (size = domain cardinality).
    pub fn insert_signature(&mut self, key: K, size: usize, sig: Signature) {
        assert_eq!(sig.len(), self.num_perm, "signature length mismatch");
        self.entries.push((key, size, sig));
    }

    /// Number of staged domains.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no domain has been staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Partition (equi-depth by size) and build the banding tables.
    pub fn build(mut self, num_partitions: usize) -> LshEnsemble<K> {
        let num_partitions = num_partitions.max(1);
        self.entries
            .sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        let n = self.entries.len();
        let rs: Vec<usize> = std::iter::successors(Some(1usize), |r| Some(r * 2))
            .take_while(|&r| r <= self.num_perm)
            .collect();

        let mut partitions: Vec<Partition<K>> = Vec::new();
        if n > 0 {
            let per = n.div_ceil(num_partitions);
            for chunk in self.entries.chunks(per) {
                let lower = chunk.first().map(|e| e.1).unwrap_or(0);
                let upper = chunk.last().map(|e| e.1).unwrap_or(0);
                let mut p = Partition {
                    upper,
                    lower,
                    keys: Vec::with_capacity(chunk.len()),
                    r_entries: rs
                        .iter()
                        .map(|&r| REntry {
                            r,
                            tables: vec![HashMap::new(); self.num_perm / r],
                        })
                        .collect(),
                };
                for (key, _, sig) in chunk {
                    p.insert(key.clone(), sig);
                }
                partitions.push(p);
            }
        }
        LshEnsemble {
            num_perm: self.num_perm,
            allowed_r: rs,
            partitions,
        }
    }
}

/// The built containment index. Query with a signature from the builder's
/// [`MinHasher`], the query set's cardinality, and a containment threshold.
pub struct LshEnsemble<K = String> {
    num_perm: usize,
    allowed_r: Vec<usize>,
    partitions: Vec<Partition<K>>,
}

impl<K: Clone + Eq + Hash + Ord> LshEnsemble<K> {
    /// Candidate keys whose domains likely contain at least `threshold` of
    /// the query set. Candidates are *probabilistic* — callers verify exact
    /// containment against the real token sets (the discovery layer does).
    pub fn query(&self, sig: &Signature, query_size: usize, threshold: f64) -> Vec<K> {
        assert_eq!(sig.len(), self.num_perm, "signature length mismatch");
        let mut hits = HashSet::new();
        for p in &self.partitions {
            let j = containment_to_jaccard(threshold, query_size, p.upper);
            let (b, r) = optimal_params_restricted(j, self.num_perm, &self.allowed_r);
            p.query(sig, b, r, &mut hits);
        }
        let mut out: Vec<K> = hits.into_iter().collect();
        out.sort();
        out
    }

    /// Number of partitions actually built.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The `(lower, upper)` size bounds of each partition, in order.
    pub fn partition_bounds(&self) -> Vec<(usize, usize)> {
        self.partitions.iter().map(|p| (p.lower, p.upper)).collect()
    }

    /// Total number of indexed domains.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.keys.len()).sum()
    }

    /// `true` when the index holds no domains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(prefix: &str, range: std::ops::Range<usize>) -> Vec<String> {
        range.map(|i| format!("{prefix}{i}")).collect()
    }

    fn build_demo() -> (LshEnsemble<String>, MinHasher) {
        let mut b = LshEnsembleBuilder::new(256, 17);
        // A larger domain fully containing the query universe.
        let big = toks("q", 0..50)
            .into_iter()
            .chain(toks("extra", 0..150))
            .collect::<Vec<_>>();
        b.insert_tokens("big_superset".to_string(), big.iter().map(String::as_str));
        // A small domain equal to half the query.
        let half = toks("q", 0..25);
        b.insert_tokens("half".to_string(), half.iter().map(String::as_str));
        // Disjoint noise domains of assorted sizes.
        for i in 0..20 {
            let noise = toks(&format!("n{i}_"), 0..(10 + i * 17));
            b.insert_tokens(format!("noise{i}"), noise.iter().map(String::as_str));
        }
        let hasher = b.hasher().clone();
        (b.build(4), hasher)
    }

    /// Pairs decisively above the converted Jaccard threshold must be
    /// recalled. (Pairs *at* the threshold collide with ~50% probability by
    /// construction — the S-curve is centred there — so the test avoids the
    /// borderline regime; exact verification downstream handles it.)
    #[test]
    fn finds_superset_above_threshold() {
        let (index, hasher) = build_demo();
        let q = toks("q", 0..50);
        let sig = hasher.signature(q.iter().map(String::as_str));
        let hits = index.query(&sig, q.len(), 0.5);
        assert!(
            hits.iter().any(|h| h == "big_superset"),
            "containment-1.0 domain must be found: {hits:?}"
        );
        assert!(
            !hits.iter().any(|h| h.starts_with("noise")),
            "disjoint noise should not surface: {hits:?}"
        );
    }

    #[test]
    fn lower_threshold_also_finds_partial_container() {
        let (index, hasher) = build_demo();
        let q = toks("q", 0..50);
        let sig = hasher.signature(q.iter().map(String::as_str));
        let hits = index.query(&sig, q.len(), 0.3);
        assert!(hits.iter().any(|h| h == "big_superset"));
        assert!(
            hits.iter().any(|h| h == "half"),
            "0.5-containment domain should pass a 0.3 threshold: {hits:?}"
        );
    }

    #[test]
    fn partitions_are_size_ordered() {
        let (index, _) = build_demo();
        let bounds = index.partition_bounds();
        assert_eq!(bounds.len(), index.partition_count());
        for w in bounds.windows(2) {
            assert!(w[0].1 <= w[1].0 || w[0].1 <= w[1].1, "bounds: {bounds:?}");
        }
        for (lo, hi) in bounds {
            assert!(lo <= hi);
        }
    }

    #[test]
    fn empty_index_queries_cleanly() {
        let b = LshEnsembleBuilder::<String>::new(64, 1);
        let hasher = b.hasher().clone();
        let index = b.build(4);
        assert!(index.is_empty());
        let sig = hasher.signature(["x"]);
        assert!(index.query(&sig, 1, 0.5).is_empty());
    }

    #[test]
    fn builder_len_tracks_inserts() {
        let mut b = LshEnsembleBuilder::new(64, 1);
        assert!(b.is_empty());
        b.insert_tokens("a", ["1", "2"]);
        b.insert_signature("b", 3, MinHasher::new(64, 1).signature(["x", "y", "z"]));
        assert_eq!(b.len(), 2);
        let index = b.build(8);
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn results_are_deterministic() {
        let (i1, h1) = build_demo();
        let (i2, _) = build_demo();
        let q = toks("q", 0..50);
        let sig = h1.signature(q.iter().map(String::as_str));
        assert_eq!(i1.query(&sig, 50, 0.5), i2.query(&sig, 50, 0.5));
    }

    #[test]
    #[should_panic(expected = "signature length mismatch")]
    fn mismatched_query_signature_panics() {
        let (index, _) = build_demo();
        index.query(&Signature(vec![0; 32]), 10, 0.5);
    }
}
