//! The LSH Ensemble containment-search index (Zhu et al., VLDB 2016),
//! incrementally maintainable.
//!
//! Domains (column value sets) are partitioned by set size (equi-depth).
//! Each partition materializes banding tables for every power-of-two row
//! count `r ≤ num_perm`. A containment query converts its threshold into a
//! per-partition Jaccard threshold using the partition's upper size bound,
//! picks the (near-)optimal `(b, r)` for that threshold among the
//! materialized `r` values, and probes `b` bands.
//!
//! **Mutation.** The built index supports churn without O(lake) rebuilds:
//! [`LshEnsemble::insert`] stages a new domain into the best-fitting
//! existing partition (stretching its size bound when needed), and
//! [`LshEnsemble::remove`] tombstones a key — dead postings stay in the
//! banding tables but are filtered out of query results. Both operations
//! are `O(changed domain)`. Because staged inserts and stretched bounds
//! slowly degrade the equi-depth layout, the index tracks a *dirtiness*
//! count and re-partitions from its retained `(key, size, signature)`
//! entries once dirtiness exceeds a configurable fraction of the live
//! domain count ([`LshEnsemble::set_rebalance_threshold`]). A rebalance
//! produces exactly the layout a fresh build over the live entries would —
//! the canonical form the incremental-oracle tests pin.
//!
//! The index is generic over the domain **key type** `K` (default
//! `String`): callers that identify domains structurally — e.g. the
//! discovery layer's `(table_idx, col)` pairs — index copyable ids instead
//! of formatted strings.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use dialite_text::fnv1a64;

use crate::hasher::{MinHasher, Signature};
use crate::params::{containment_to_jaccard, optimal_params_restricted};

/// Default fraction of live domains that may be dirty (staged or
/// tombstoned) before a mutation triggers re-partitioning.
pub const DEFAULT_REBALANCE_THRESHOLD: f64 = 0.25;

fn band_hash(r: usize, band_idx: usize, slots: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(16 + slots.len() * 8);
    bytes.extend_from_slice(&(r as u64).to_le_bytes());
    bytes.extend_from_slice(&(band_idx as u64).to_le_bytes());
    for s in slots {
        bytes.extend_from_slice(&s.to_le_bytes());
    }
    fnv1a64(&bytes)
}

struct REntry {
    r: usize,
    /// `num_perm / r` hash tables, one per band.
    tables: Vec<HashMap<u64, Vec<u32>>>,
}

struct Partition<K> {
    /// Maximum domain size in this partition (the `u` of the containment →
    /// Jaccard conversion).
    upper: usize,
    lower: usize,
    keys: Vec<K>,
    r_entries: Vec<REntry>,
}

impl<K: Clone + Eq + Hash> Partition<K> {
    fn empty(lower: usize, upper: usize, num_perm: usize, rs: &[usize]) -> Partition<K> {
        Partition {
            upper,
            lower,
            keys: Vec::new(),
            r_entries: rs
                .iter()
                .map(|&r| REntry {
                    r,
                    tables: vec![HashMap::new(); num_perm / r],
                })
                .collect(),
        }
    }

    fn insert(&mut self, key: K, sig: &Signature) {
        let id = self.keys.len() as u32;
        self.keys.push(key);
        for re in &mut self.r_entries {
            for (band, table) in re.tables.iter_mut().enumerate() {
                let lo = band * re.r;
                let h = band_hash(re.r, band, &sig.0[lo..lo + re.r]);
                table.entry(h).or_default().push(id);
            }
        }
    }

    fn query(&self, sig: &Signature, b: usize, r: usize, hits: &mut HashSet<K>) {
        let Some(re) = self.r_entries.iter().find(|re| re.r == r) else {
            return;
        };
        for band in 0..b.min(re.tables.len()) {
            let lo = band * r;
            let h = band_hash(r, band, &sig.0[lo..lo + r]);
            if let Some(ids) = re.tables[band].get(&h) {
                hits.extend(ids.iter().map(|&id| self.keys[id as usize].clone()));
            }
        }
    }
}

/// Equi-depth partitioning over `(key, size, signature)` entries sorted by
/// `(size, key)` — shared by the builder and by incremental rebalances so
/// both produce the identical canonical layout.
fn partition_entries<K: Clone + Eq + Hash>(
    entries: &[(K, usize, Signature)],
    num_partitions: usize,
    num_perm: usize,
    rs: &[usize],
) -> Vec<Partition<K>> {
    let n = entries.len();
    let mut partitions = Vec::new();
    if n > 0 {
        let per = n.div_ceil(num_partitions.max(1));
        for chunk in entries.chunks(per) {
            let lower = chunk.first().map(|e| e.1).unwrap_or(0);
            let upper = chunk.last().map(|e| e.1).unwrap_or(0);
            let mut p = Partition::empty(lower, upper, num_perm, rs);
            p.keys.reserve(chunk.len());
            for (key, _, sig) in chunk {
                p.insert(key.clone(), sig);
            }
            partitions.push(p);
        }
    }
    partitions
}

/// Accumulates domains before partitioning. `K` is the domain key type.
pub struct LshEnsembleBuilder<K = String> {
    hasher: MinHasher,
    num_perm: usize,
    entries: Vec<(K, usize, Signature)>,
}

impl<K: Clone + Eq + Hash + Ord> LshEnsembleBuilder<K> {
    /// Builder with `num_perm` hash functions and a deterministic seed.
    pub fn new(num_perm: usize, seed: u64) -> LshEnsembleBuilder<K> {
        LshEnsembleBuilder {
            hasher: MinHasher::new(num_perm, seed),
            num_perm,
            entries: Vec::new(),
        }
    }

    /// The hasher queries must use to be comparable with this index.
    pub fn hasher(&self) -> &MinHasher {
        &self.hasher
    }

    /// Hash and stage a domain under `key`.
    pub fn insert_tokens<'a, I: IntoIterator<Item = &'a str>>(&mut self, key: K, tokens: I) {
        let toks: Vec<&str> = tokens.into_iter().collect();
        let size = toks.len();
        let sig = self.hasher.signature(toks);
        self.entries.push((key, size, sig));
    }

    /// Stage a pre-computed signature (size = domain cardinality).
    pub fn insert_signature(&mut self, key: K, size: usize, sig: Signature) {
        assert_eq!(sig.len(), self.num_perm, "signature length mismatch");
        self.entries.push((key, size, sig));
    }

    /// Number of staged domains.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no domain has been staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Partition (equi-depth by size) and build the banding tables.
    pub fn build(mut self, num_partitions: usize) -> LshEnsemble<K> {
        let num_partitions = num_partitions.max(1);
        self.entries
            .sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        let rs: Vec<usize> = std::iter::successors(Some(1usize), |r| Some(r * 2))
            .take_while(|&r| r <= self.num_perm)
            .collect();
        let partitions = partition_entries(&self.entries, num_partitions, self.num_perm, &rs);
        LshEnsemble {
            num_perm: self.num_perm,
            allowed_r: rs,
            num_partitions,
            partitions,
            entries: self
                .entries
                .into_iter()
                .map(|(k, size, sig)| (k, (size, sig)))
                .collect(),
            staged: HashSet::new(),
            tombstones: HashSet::new(),
            rebalance_threshold: DEFAULT_REBALANCE_THRESHOLD,
        }
    }
}

/// The built containment index. Query with a signature from the builder's
/// [`MinHasher`], the query set's cardinality, and a containment threshold.
/// Supports incremental [`insert`](LshEnsemble::insert) /
/// [`remove`](LshEnsemble::remove) — see the module docs.
pub struct LshEnsemble<K = String> {
    num_perm: usize,
    allowed_r: Vec<usize>,
    num_partitions: usize,
    partitions: Vec<Partition<K>>,
    /// Live domains: `key → (size, signature)`. Retained so a rebalance can
    /// re-partition without the caller replaying anything.
    entries: HashMap<K, (usize, Signature)>,
    /// Keys inserted since the last (re)build. Their partition placement is
    /// best-effort, so recall-critical callers should verify them exactly —
    /// [`LshEnsemble::staged_keys`] exposes the set.
    staged: HashSet<K>,
    /// Keys removed since the last (re)build whose postings still sit in
    /// the banding tables; filtered out of every query result.
    tombstones: HashSet<K>,
    /// Dirtiness fraction that triggers re-partitioning.
    rebalance_threshold: f64,
}

/// One partition's entry in a query's probe schedule: which partition to
/// probe and the best containment score any of its domains could possibly
/// achieve against a query of the planning size.
///
/// Produced by [`LshEnsemble::probe_plan`]; consumed by budget-aware
/// schedulers (the discovery layer's `TopKPlanner`) that probe partitions
/// best-bound-first and stop early once the running top-k verified score
/// provably beats every unprobed partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionProbe {
    /// Index of the partition, for [`LshEnsemble::query_partition`].
    pub partition: usize,
    /// The partition's upper domain-size bound (its `u`).
    pub upper: usize,
    /// Upper bound on the containment `|Q ∩ X| / |Q|` of any domain `X`
    /// stored in this partition: `min(1, upper / query_size)`. Exact-
    /// verification scores can never exceed it, which is what makes
    /// early termination sound.
    pub max_containment: f64,
}

impl<K: Clone + Eq + Hash + Ord> LshEnsemble<K> {
    /// Candidate keys whose domains likely contain at least `threshold` of
    /// the query set. Candidates are *probabilistic* — callers verify exact
    /// containment against the real token sets (the discovery layer does).
    pub fn query(&self, sig: &Signature, query_size: usize, threshold: f64) -> Vec<K> {
        assert_eq!(sig.len(), self.num_perm, "signature length mismatch");
        let mut hits = HashSet::new();
        for idx in 0..self.partitions.len() {
            self.probe_partition_into(idx, sig, query_size, threshold, &mut hits);
        }
        if !self.tombstones.is_empty() {
            hits.retain(|k| !self.tombstones.contains(k));
        }
        let mut out: Vec<K> = hits.into_iter().collect();
        out.sort();
        out
    }

    /// The query-time probe schedule for a query of `query_size` distinct
    /// tokens: every partition with its containment upper bound, ordered
    /// best-bound-first (ties broken by partition index, so the schedule is
    /// deterministic).
    ///
    /// Probing in this order lets a top-k scheduler stop as soon as its
    /// k-th best *verified* score is provably unbeatable by any unprobed
    /// partition — the candidate-cap lever that turns a probe-all scan into
    /// a budgeted search. Probing all scheduled partitions (and filtering
    /// tombstones) is exactly equivalent to [`LshEnsemble::query`].
    pub fn probe_plan(&self, query_size: usize) -> Vec<PartitionProbe> {
        let q = query_size.max(1) as f64;
        let mut plan: Vec<PartitionProbe> = self
            .partitions
            .iter()
            .enumerate()
            .map(|(partition, p)| PartitionProbe {
                partition,
                upper: p.upper,
                max_containment: (p.upper as f64 / q).min(1.0),
            })
            .collect();
        plan.sort_by(|a, b| {
            b.max_containment
                .total_cmp(&a.max_containment)
                .then(a.partition.cmp(&b.partition))
        });
        plan
    }

    /// Probe a single partition (by [`PartitionProbe::partition`] index)
    /// and return its candidate keys, tombstone-filtered and sorted for
    /// determinism. The `(b, r)` banding parameters are chosen exactly as
    /// [`LshEnsemble::query`] chooses them for this partition, so the union
    /// of all partitions' candidates equals the probe-all result.
    pub fn query_partition(
        &self,
        partition: usize,
        sig: &Signature,
        query_size: usize,
        threshold: f64,
    ) -> Vec<K> {
        assert_eq!(sig.len(), self.num_perm, "signature length mismatch");
        let mut hits = HashSet::new();
        self.probe_partition_into(partition, sig, query_size, threshold, &mut hits);
        if !self.tombstones.is_empty() {
            hits.retain(|k| !self.tombstones.contains(k));
        }
        let mut out: Vec<K> = hits.into_iter().collect();
        out.sort();
        out
    }

    /// Shared per-partition probe: threshold → per-partition Jaccard via
    /// the partition's upper bound, then the optimal materialized `(b, r)`.
    fn probe_partition_into(
        &self,
        partition: usize,
        sig: &Signature,
        query_size: usize,
        threshold: f64,
        hits: &mut HashSet<K>,
    ) {
        let Some(p) = self.partitions.get(partition) else {
            return;
        };
        let j = containment_to_jaccard(threshold, query_size, p.upper);
        let (b, r) = optimal_params_restricted(j, self.num_perm, &self.allowed_r);
        p.query(sig, b, r, hits);
    }

    /// Insert (or replace) a domain in the live index. The entry lands in
    /// the best-fitting existing partition — stretching that partition's
    /// size bounds when the size falls outside every bound — and is marked
    /// *staged* until the next rebalance. `O(1)` partitions touched.
    pub fn insert(&mut self, key: K, size: usize, sig: Signature) {
        assert_eq!(sig.len(), self.num_perm, "signature length mismatch");
        if self.entries.contains_key(&key) {
            self.remove(&key);
        }
        self.entries.insert(key.clone(), (size, sig.clone()));
        self.staged.insert(key.clone());
        // A re-inserted key must not stay suppressed by its own tombstone.
        // Postings of the *old* version may resurface as candidates until
        // the next rebalance — recall-safe, callers verify exactly.
        self.tombstones.remove(&key);
        if self.partitions.is_empty() {
            self.rebalance();
            return;
        }
        // First partition whose upper bound admits the size, else the last
        // partition stretched upward. Stretching `upper` only lowers that
        // partition's converted Jaccard threshold — recall-safe.
        let idx = self
            .partitions
            .iter()
            .position(|p| size <= p.upper)
            .unwrap_or(self.partitions.len() - 1);
        let p = &mut self.partitions[idx];
        p.upper = p.upper.max(size);
        p.lower = p.lower.min(size);
        p.insert(key, &sig);
        self.maybe_rebalance();
    }

    /// Tombstone a domain: it disappears from query results immediately;
    /// its banding postings are reclaimed at the next rebalance. Returns
    /// `false` when the key was not live.
    pub fn remove(&mut self, key: &K) -> bool {
        if self.entries.remove(key).is_none() {
            return false;
        }
        // Staged keys flip straight to tombstones too: their postings
        // linger in the banding tables until the next rebalance.
        self.staged.remove(key);
        self.tombstones.insert(key.clone());
        self.maybe_rebalance();
        true
    }

    /// Keys inserted since the last rebalance. Their partition placement is
    /// best-effort; exact-verification layers scan them explicitly so a
    /// freshly added domain can never be an LSH false negative.
    pub fn staged_keys(&self) -> impl Iterator<Item = &K> {
        self.staged.iter()
    }

    /// Staged inserts + tombstones since the last rebalance.
    pub fn dirtiness(&self) -> usize {
        self.staged.len() + self.tombstones.len()
    }

    /// Set the dirtiness fraction (of live domains) above which a mutation
    /// triggers re-partitioning. `0.0` rebalances on every mutation;
    /// `f64::INFINITY` never rebalances automatically.
    pub fn set_rebalance_threshold(&mut self, fraction: f64) {
        assert!(fraction >= 0.0, "rebalance threshold must be non-negative");
        self.rebalance_threshold = fraction;
    }

    fn maybe_rebalance(&mut self) {
        let budget = (self.entries.len() as f64 * self.rebalance_threshold).ceil();
        if self.dirtiness() as f64 > budget {
            self.rebalance();
        }
    }

    /// Re-partition the live entries into the canonical equi-depth layout
    /// (identical to a fresh build over the same entries), clearing all
    /// staged/tombstone state. `O(live domains)`.
    pub fn rebalance(&mut self) {
        let mut entries: Vec<(K, usize, Signature)> = self
            .entries
            .iter()
            .map(|(k, (size, sig))| (k.clone(), *size, sig.clone()))
            .collect();
        entries.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        self.partitions = partition_entries(
            &entries,
            self.num_partitions,
            self.num_perm,
            &self.allowed_r,
        );
        self.staged.clear();
        self.tombstones.clear();
    }

    /// Number of partitions actually built.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The `(lower, upper)` size bounds of each partition, in order.
    pub fn partition_bounds(&self) -> Vec<(usize, usize)> {
        self.partitions.iter().map(|p| (p.lower, p.upper)).collect()
    }

    /// Total number of live (indexed, not tombstoned) domains.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the index holds no live domains.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The live `(key, size, signature)` entries in canonical `(size, key)`
    /// order — the durable sketch export. Feeding these back through
    /// [`LshEnsembleBuilder::insert_signature`] and building reproduces
    /// this index's canonical layout without recomputing a single MinHash
    /// signature, which is what lets a snapshot warm-start skip the
    /// per-token hashing pass entirely.
    pub fn export_entries(&self) -> Vec<(K, usize, Signature)> {
        let mut entries: Vec<(K, usize, Signature)> = self
            .entries
            .iter()
            .map(|(k, (size, sig))| (k.clone(), *size, sig.clone()))
            .collect();
        entries.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(prefix: &str, range: std::ops::Range<usize>) -> Vec<String> {
        range.map(|i| format!("{prefix}{i}")).collect()
    }

    fn build_demo() -> (LshEnsemble<String>, MinHasher) {
        let mut b = LshEnsembleBuilder::new(256, 17);
        // A larger domain fully containing the query universe.
        let big = toks("q", 0..50)
            .into_iter()
            .chain(toks("extra", 0..150))
            .collect::<Vec<_>>();
        b.insert_tokens("big_superset".to_string(), big.iter().map(String::as_str));
        // A small domain equal to half the query.
        let half = toks("q", 0..25);
        b.insert_tokens("half".to_string(), half.iter().map(String::as_str));
        // Disjoint noise domains of assorted sizes.
        for i in 0..20 {
            let noise = toks(&format!("n{i}_"), 0..(10 + i * 17));
            b.insert_tokens(format!("noise{i}"), noise.iter().map(String::as_str));
        }
        let hasher = b.hasher().clone();
        (b.build(4), hasher)
    }

    /// Pairs decisively above the converted Jaccard threshold must be
    /// recalled. (Pairs *at* the threshold collide with ~50% probability by
    /// construction — the S-curve is centred there — so the test avoids the
    /// borderline regime; exact verification downstream handles it.)
    #[test]
    fn finds_superset_above_threshold() {
        let (index, hasher) = build_demo();
        let q = toks("q", 0..50);
        let sig = hasher.signature(q.iter().map(String::as_str));
        let hits = index.query(&sig, q.len(), 0.5);
        assert!(
            hits.iter().any(|h| h == "big_superset"),
            "containment-1.0 domain must be found: {hits:?}"
        );
        assert!(
            !hits.iter().any(|h| h.starts_with("noise")),
            "disjoint noise should not surface: {hits:?}"
        );
    }

    #[test]
    fn exported_sketches_rebuild_the_index_without_hashing() {
        let (index, hasher) = build_demo();
        let exported = index.export_entries();
        assert_eq!(exported.len(), index.len());
        // Canonical (size, key) order, the same order build() sorts into.
        for w in exported.windows(2) {
            assert!((w[0].1, &w[0].0) < (w[1].1, &w[1].0), "unsorted export");
        }
        // Rebuild purely from signatures: zero signature computations…
        let mut b: LshEnsembleBuilder<String> = LshEnsembleBuilder::new(256, 17);
        let warm_hasher = b.hasher().clone();
        for (key, size, sig) in exported {
            b.insert_signature(key, size, sig);
        }
        let rebuilt = b.build(index.partition_count());
        assert_eq!(warm_hasher.signatures_computed(), 0);
        // …and identical layout and query behavior.
        assert_eq!(rebuilt.partition_bounds(), index.partition_bounds());
        let q = toks("q", 0..50);
        let sig = hasher.signature(q.iter().map(String::as_str));
        let mut a = index.query(&sig, q.len(), 0.5);
        let mut b = rebuilt.query(&sig, q.len(), 0.5);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn lower_threshold_also_finds_partial_container() {
        let (index, hasher) = build_demo();
        let q = toks("q", 0..50);
        let sig = hasher.signature(q.iter().map(String::as_str));
        let hits = index.query(&sig, q.len(), 0.3);
        assert!(hits.iter().any(|h| h == "big_superset"));
        assert!(
            hits.iter().any(|h| h == "half"),
            "0.5-containment domain should pass a 0.3 threshold: {hits:?}"
        );
    }

    #[test]
    fn partitions_are_size_ordered() {
        let (index, _) = build_demo();
        let bounds = index.partition_bounds();
        assert_eq!(bounds.len(), index.partition_count());
        for w in bounds.windows(2) {
            assert!(w[0].1 <= w[1].0 || w[0].1 <= w[1].1, "bounds: {bounds:?}");
        }
        for (lo, hi) in bounds {
            assert!(lo <= hi);
        }
    }

    #[test]
    fn empty_index_queries_cleanly() {
        let b = LshEnsembleBuilder::<String>::new(64, 1);
        let hasher = b.hasher().clone();
        let index = b.build(4);
        assert!(index.is_empty());
        let sig = hasher.signature(["x"]);
        assert!(index.query(&sig, 1, 0.5).is_empty());
    }

    #[test]
    fn builder_len_tracks_inserts() {
        let mut b = LshEnsembleBuilder::new(64, 1);
        assert!(b.is_empty());
        b.insert_tokens("a", ["1", "2"]);
        b.insert_signature("b", 3, MinHasher::new(64, 1).signature(["x", "y", "z"]));
        assert_eq!(b.len(), 2);
        let index = b.build(8);
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn results_are_deterministic() {
        let (i1, h1) = build_demo();
        let (i2, _) = build_demo();
        let q = toks("q", 0..50);
        let sig = h1.signature(q.iter().map(String::as_str));
        assert_eq!(i1.query(&sig, 50, 0.5), i2.query(&sig, 50, 0.5));
    }

    #[test]
    #[should_panic(expected = "signature length mismatch")]
    fn mismatched_query_signature_panics() {
        let (index, _) = build_demo();
        index.query(&Signature(vec![0; 32]), 10, 0.5);
    }

    #[test]
    fn removed_key_disappears_from_queries_immediately() {
        let (mut index, hasher) = build_demo();
        let q = toks("q", 0..50);
        let sig = hasher.signature(q.iter().map(String::as_str));
        assert!(index
            .query(&sig, q.len(), 0.5)
            .iter()
            .any(|h| h == "big_superset"));
        let n = index.len();
        assert!(index.remove(&"big_superset".to_string()));
        assert!(!index.remove(&"big_superset".to_string()), "already gone");
        assert_eq!(index.len(), n - 1);
        assert!(
            !index
                .query(&sig, q.len(), 0.5)
                .iter()
                .any(|h| h == "big_superset"),
            "tombstoned key must not surface"
        );
    }

    #[test]
    fn inserted_key_is_queryable_without_rebuild() {
        let (mut index, hasher) = build_demo();
        index.set_rebalance_threshold(f64::INFINITY); // isolate the staged path
        let fresh = toks("q", 0..50)
            .into_iter()
            .chain(toks("new", 0..80))
            .collect::<Vec<_>>();
        let sig = hasher.signature(fresh.iter().map(String::as_str));
        index.insert("fresh_superset".to_string(), fresh.len(), sig);
        assert!(index.staged_keys().any(|k| k == "fresh_superset"));
        assert_eq!(index.dirtiness(), 1);

        let q = toks("q", 0..50);
        let qsig = hasher.signature(q.iter().map(String::as_str));
        let hits = index.query(&qsig, q.len(), 0.5);
        assert!(
            hits.iter().any(|h| h == "fresh_superset"),
            "staged superset must be found: {hits:?}"
        );
    }

    #[test]
    fn rebalance_restores_canonical_layout_and_clears_dirtiness() {
        let (mut index, hasher) = build_demo();
        index.set_rebalance_threshold(f64::INFINITY);
        // Churn: drop two noise domains, add one new one.
        index.remove(&"noise0".to_string());
        index.remove(&"noise1".to_string());
        let newd = toks("nd", 0..40);
        index.insert(
            "newdom".to_string(),
            newd.len(),
            hasher.signature(newd.iter().map(String::as_str)),
        );
        assert_eq!(index.dirtiness(), 3);
        index.rebalance();
        assert_eq!(index.dirtiness(), 0);

        // Canonical form: identical to a fresh build over the same domains.
        let mut b = LshEnsembleBuilder::new(256, 17);
        let big = toks("q", 0..50)
            .into_iter()
            .chain(toks("extra", 0..150))
            .collect::<Vec<_>>();
        b.insert_tokens("big_superset".to_string(), big.iter().map(String::as_str));
        let half = toks("q", 0..25);
        b.insert_tokens("half".to_string(), half.iter().map(String::as_str));
        for i in 2..20 {
            let noise = toks(&format!("n{i}_"), 0..(10 + i * 17));
            b.insert_tokens(format!("noise{i}"), noise.iter().map(String::as_str));
        }
        b.insert_tokens("newdom".to_string(), newd.iter().map(String::as_str));
        let fresh = b.build(4);
        assert_eq!(index.partition_bounds(), fresh.partition_bounds());
        let q = toks("q", 0..50);
        let qsig = hasher.signature(q.iter().map(String::as_str));
        assert_eq!(
            index.query(&qsig, q.len(), 0.4),
            fresh.query(&qsig, q.len(), 0.4),
            "rebalanced index must answer like a fresh build"
        );
    }

    #[test]
    fn dirtiness_threshold_triggers_automatic_rebalance() {
        let (mut index, hasher) = build_demo();
        index.set_rebalance_threshold(0.1); // 22 domains → budget ⌈2.2⌉ = 3
        for i in 0..3 {
            let d = toks(&format!("auto{i}_"), 0..30);
            index.insert(
                format!("auto{i}"),
                d.len(),
                hasher.signature(d.iter().map(String::as_str)),
            );
        }
        assert!(
            index.dirtiness() <= 3,
            "4th dirty op must have rebalanced, dirtiness {}",
            index.dirtiness()
        );
    }

    #[test]
    fn replacing_a_key_keeps_one_live_copy() {
        let (mut index, hasher) = build_demo();
        index.set_rebalance_threshold(f64::INFINITY);
        let n = index.len();
        let d = toks("q", 0..50);
        index.insert(
            "half".to_string(),
            d.len(),
            hasher.signature(d.iter().map(String::as_str)),
        );
        assert_eq!(index.len(), n, "replace keeps the live count");
        let q = toks("q", 0..50);
        let qsig = hasher.signature(q.iter().map(String::as_str));
        let hits = index.query(&qsig, q.len(), 0.9);
        assert!(
            hits.iter().filter(|h| *h == "half").count() <= 1,
            "stale copy must not resurface: {hits:?}"
        );
        assert!(
            hits.iter().any(|h| h == "half"),
            "the replacement (now a full superset) should be found: {hits:?}"
        );
    }

    #[test]
    fn probe_plan_covers_every_partition_best_bound_first() {
        let (index, _) = build_demo();
        let plan = index.probe_plan(50);
        assert_eq!(plan.len(), index.partition_count());
        // Every partition appears exactly once.
        let mut seen: Vec<usize> = plan.iter().map(|p| p.partition).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..index.partition_count()).collect::<Vec<_>>());
        // Bounds are descending and consistent with min(1, upper/q).
        for w in plan.windows(2) {
            assert!(w[0].max_containment >= w[1].max_containment, "{plan:?}");
        }
        for p in &plan {
            let expect = (p.upper as f64 / 50.0).min(1.0);
            assert!((p.max_containment - expect).abs() < 1e-12, "{p:?}");
        }
    }

    #[test]
    fn partitionwise_probing_equals_probe_all_query() {
        let (mut index, hasher) = build_demo();
        index.set_rebalance_threshold(f64::INFINITY);
        // Add churn so tombstone filtering is exercised on both paths.
        index.remove(&"noise3".to_string());
        let fresh = toks("q", 0..50)
            .into_iter()
            .chain(toks("fp", 0..90))
            .collect::<Vec<_>>();
        index.insert(
            "churned".to_string(),
            fresh.len(),
            hasher.signature(fresh.iter().map(String::as_str)),
        );
        let q = toks("q", 0..50);
        let sig = hasher.signature(q.iter().map(String::as_str));
        for threshold in [0.3, 0.5, 0.8] {
            let mut union: Vec<String> = index
                .probe_plan(q.len())
                .iter()
                .flat_map(|p| index.query_partition(p.partition, &sig, q.len(), threshold))
                .collect();
            union.sort();
            union.dedup();
            assert_eq!(
                union,
                index.query(&sig, q.len(), threshold),
                "partitionwise union diverged at threshold {threshold}"
            );
        }
    }

    #[test]
    fn query_partition_out_of_range_is_empty() {
        let (index, hasher) = build_demo();
        let q = toks("q", 0..10);
        let sig = hasher.signature(q.iter().map(String::as_str));
        assert!(index.query_partition(999, &sig, q.len(), 0.5).is_empty());
    }

    #[test]
    fn insert_into_empty_index_bootstraps_a_partition() {
        let b = LshEnsembleBuilder::<String>::new(64, 5);
        let hasher = b.hasher().clone();
        let mut index = b.build(4);
        let d = toks("x", 0..20);
        index.insert(
            "only".to_string(),
            d.len(),
            hasher.signature(d.iter().map(String::as_str)),
        );
        assert_eq!(index.len(), 1);
        let qsig = hasher.signature(d.iter().map(String::as_str));
        assert_eq!(index.query(&qsig, d.len(), 0.5), vec!["only".to_string()]);
    }
}
