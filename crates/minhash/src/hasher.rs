//! MinHash signatures over string token sets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dialite_text::fnv1a64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Mersenne prime 2^61 − 1, the modulus of the universal hash family.
const MERSENNE_61: u64 = (1u64 << 61) - 1;

/// A seeded family of `num_perm` universal hash functions producing MinHash
/// signatures. Two `MinHasher`s with the same `num_perm` and `seed` are
/// interchangeable — signatures are only comparable within one family.
#[derive(Debug, Clone)]
pub struct MinHasher {
    a: Vec<u64>,
    b: Vec<u64>,
    // Signatures computed through this family, shared across clones —
    // the observable "sketch work" that warm-start recovery from durable
    // snapshots is meant to avoid (asserted by the recovery oracle).
    work: Arc<AtomicU64>,
}

/// A MinHash signature: the element-wise minimum of each hash function over
/// the input set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature(pub Vec<u64>);

impl MinHasher {
    /// Create a family of `num_perm` hash functions from a seed.
    pub fn new(num_perm: usize, seed: u64) -> MinHasher {
        assert!(num_perm > 0, "num_perm must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let a = (0..num_perm)
            .map(|_| rng.gen_range(1..MERSENNE_61))
            .collect();
        let b = (0..num_perm)
            .map(|_| rng.gen_range(0..MERSENNE_61))
            .collect();
        MinHasher {
            a,
            b,
            work: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of hash functions / signature length.
    pub fn num_perm(&self) -> usize {
        self.a.len()
    }

    /// How many signatures this family has computed so far, counted across
    /// all clones of the family (clones share the counter). Recovery tests
    /// use this to assert that warm-starting an index from persisted
    /// sketches does `O(events since snapshot)` hashing, not `O(lake)`.
    pub fn signatures_computed(&self) -> u64 {
        self.work.load(Ordering::Relaxed)
    }

    #[inline]
    fn perm(&self, i: usize, x: u64) -> u64 {
        // (a*x + b) mod p with p = 2^61-1 via 128-bit arithmetic.
        let v = (u128::from(self.a[i]) * u128::from(x) + u128::from(self.b[i]))
            % u128::from(MERSENNE_61);
        v as u64
    }

    /// Compute the signature of a set of string tokens.
    ///
    /// An empty set yields the all-`u64::MAX` signature, which estimates
    /// Jaccard 1.0 against another empty set and ~0 against anything else.
    pub fn signature<'a, I: IntoIterator<Item = &'a str>>(&self, tokens: I) -> Signature {
        self.work.fetch_add(1, Ordering::Relaxed);
        let mut mins = vec![u64::MAX; self.a.len()];
        for tok in tokens {
            let x = fnv1a64(tok.as_bytes());
            for (i, m) in mins.iter_mut().enumerate() {
                let h = self.perm(i, x);
                if h < *m {
                    *m = h;
                }
            }
        }
        Signature(mins)
    }
}

impl Signature {
    /// Unbiased estimate of the Jaccard similarity of the underlying sets:
    /// the fraction of agreeing signature slots.
    pub fn estimate_jaccard(&self, other: &Signature) -> f64 {
        assert_eq!(
            self.0.len(),
            other.0.len(),
            "signatures from different families are not comparable"
        );
        let agree = self
            .0
            .iter()
            .zip(other.0.iter())
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.0.len() as f64
    }

    /// Signature length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for a zero-length signature (never produced by [`MinHasher`]).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn sig_of(h: &MinHasher, items: &[&str]) -> Signature {
        h.signature(items.iter().copied())
    }

    #[test]
    fn identical_sets_have_identical_signatures() {
        let h = MinHasher::new(64, 42);
        let a = sig_of(&h, &["x", "y", "z"]);
        let b = sig_of(&h, &["z", "y", "x"]);
        assert_eq!(a, b);
        assert_eq!(a.estimate_jaccard(&b), 1.0);
    }

    #[test]
    fn signature_is_deterministic_across_instances() {
        let h1 = MinHasher::new(32, 7);
        let h2 = MinHasher::new(32, 7);
        assert_eq!(sig_of(&h1, &["a", "b"]), sig_of(&h2, &["a", "b"]));
    }

    #[test]
    fn different_seeds_give_different_families() {
        let h1 = MinHasher::new(32, 1);
        let h2 = MinHasher::new(32, 2);
        assert_ne!(sig_of(&h1, &["a", "b"]), sig_of(&h2, &["a", "b"]));
    }

    #[test]
    fn jaccard_estimate_tracks_true_jaccard() {
        let h = MinHasher::new(256, 13);
        // Two sets with known Jaccard 50/150 = 1/3.
        let a: Vec<String> = (0..100).map(|i| format!("tok{i}")).collect();
        let b: Vec<String> = (50..150).map(|i| format!("tok{i}")).collect();
        let sa = h.signature(a.iter().map(String::as_str));
        let sb = h.signature(b.iter().map(String::as_str));
        let est = sa.estimate_jaccard(&sb);
        let true_j = {
            let sa: HashSet<_> = a.iter().collect();
            let sb: HashSet<_> = b.iter().collect();
            sa.intersection(&sb).count() as f64 / sa.union(&sb).count() as f64
        };
        assert!(
            (est - true_j).abs() < 0.12,
            "estimate {est} too far from true {true_j}"
        );
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let h = MinHasher::new(256, 99);
        let a: Vec<String> = (0..80).map(|i| format!("a{i}")).collect();
        let b: Vec<String> = (0..80).map(|i| format!("b{i}")).collect();
        let sa = h.signature(a.iter().map(String::as_str));
        let sb = h.signature(b.iter().map(String::as_str));
        assert!(sa.estimate_jaccard(&sb) < 0.1);
    }

    #[test]
    fn empty_set_signature_is_max() {
        let h = MinHasher::new(8, 0);
        let s = h.signature([]);
        assert!(s.0.iter().all(|&m| m == u64::MAX));
    }

    #[test]
    fn work_counter_tracks_signatures_across_clones() {
        let h = MinHasher::new(8, 3);
        assert_eq!(h.signatures_computed(), 0);
        let _ = sig_of(&h, &["a"]);
        let clone = h.clone();
        let _ = sig_of(&clone, &["b"]);
        // Clones share one counter: both computations are visible on both.
        assert_eq!(h.signatures_computed(), 2);
        assert_eq!(clone.signatures_computed(), 2);
        // A fresh family starts its own ledger.
        assert_eq!(MinHasher::new(8, 3).signatures_computed(), 0);
    }

    #[test]
    #[should_panic(expected = "not comparable")]
    fn mismatched_lengths_panic() {
        let a = Signature(vec![1, 2]);
        let b = Signature(vec![1]);
        let _ = a.estimate_jaccard(&b);
    }

    #[test]
    #[should_panic(expected = "num_perm must be positive")]
    fn zero_perm_panics() {
        let _ = MinHasher::new(0, 1);
    }
}
