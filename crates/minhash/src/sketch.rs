//! Persisted MinHash sketch state, the exchange format between the
//! durable layer (which serializes it) and index warm-start (which
//! consumes it instead of re-hashing every token of every table).

use crate::hasher::Signature;

/// The MinHash sketch state of an indexed corpus as captured in a durable
/// snapshot: the hash-family identity plus one `(domain key, set size,
/// signature)` entry per indexed domain. Domain keys are `(slot, column)`
/// pairs — the structural addressing the discovery layer keys its state
/// by, so sketches survive table renames-by-replacement unambiguously.
///
/// A warm-starting index may consume the entries only when
/// [`matches_family`](SketchSnapshot::matches_family) holds for its own
/// configuration; signatures from a different family are incomparable and
/// the consumer must fall back to a full re-hash.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SketchSnapshot {
    /// Signature length of the family that produced the sketches.
    pub num_perm: usize,
    /// Seed of the family that produced the sketches.
    pub seed: u64,
    /// One `((slot, column), token-set size, signature)` per domain, in
    /// canonical `(size, key)` order.
    pub domains: Vec<((u32, u32), usize, Signature)>,
}

impl SketchSnapshot {
    /// Whether sketches from this snapshot are comparable with signatures
    /// minted by a `MinHasher::new(num_perm, seed)` family.
    pub fn matches_family(&self, num_perm: usize, seed: u64) -> bool {
        self.num_perm == num_perm && self.seed == seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_identity_gates_reuse() {
        let snap = SketchSnapshot {
            num_perm: 64,
            seed: 7,
            domains: Vec::new(),
        };
        assert!(snap.matches_family(64, 7));
        assert!(!snap.matches_family(64, 8));
        assert!(!snap.matches_family(32, 7));
    }
}
