//! # dialite-minhash
//!
//! MinHash signatures, banded Locality-Sensitive Hashing, and a from-scratch
//! implementation of the **LSH Ensemble** domain-search index
//! (Zhu, Nargesian, Pu, Miller — *LSH Ensemble: Internet-Scale Domain
//! Search*, VLDB 2016), which is the joinable-table discovery backend the
//! DIALITE demo exposes (paper §2.1; the authors used `ekzhu/datasketch`).
//!
//! Three layers:
//!
//! * [`MinHasher`] / [`Signature`] — fixed-length MinHash signatures over
//!   string token sets, using a seeded universal hash family modulo the
//!   Mersenne prime `2^61 - 1`. Signatures estimate Jaccard similarity.
//! * [`LshIndex`] — classic banded LSH for a fixed Jaccard threshold.
//! * [`LshEnsemble`] — the containment-search index: indexed domains are
//!   partitioned by set size; each partition keeps banding tables for every
//!   power-of-two row count, and at query time the containment threshold is
//!   converted to a per-partition Jaccard threshold for which (near-)optimal
//!   `(b, r)` parameters are chosen by minimizing the sum of false-positive
//!   and false-negative probability integrals — the same construction as the
//!   paper's optimal-parameter tuning.

#![deny(missing_docs)]

mod ensemble;
mod hasher;
mod lsh;
mod params;
mod sketch;

pub use ensemble::{LshEnsemble, LshEnsembleBuilder, PartitionProbe, DEFAULT_REBALANCE_THRESHOLD};
pub use hasher::{MinHasher, Signature};
pub use lsh::LshIndex;
pub use params::{containment_to_jaccard, optimal_params, optimal_params_restricted};
pub use sketch::SketchSnapshot;
