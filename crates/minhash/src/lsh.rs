//! Classic banded LSH over MinHash signatures, for a fixed Jaccard
//! threshold.

use std::collections::{HashMap, HashSet};

use dialite_text::fnv1a64;

use crate::hasher::Signature;
use crate::params::optimal_params;

/// Hash of one band (a contiguous slice of signature slots).
fn band_hash(band_idx: usize, slots: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(8 + slots.len() * 8);
    bytes.extend_from_slice(&(band_idx as u64).to_le_bytes());
    for s in slots {
        bytes.extend_from_slice(&s.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// A banded LSH index mapping string keys to MinHash signatures, tuned for
/// one Jaccard threshold at construction time.
#[derive(Debug, Clone)]
pub struct LshIndex {
    bands: usize,
    rows: usize,
    num_perm: usize,
    /// One hash table per band: band hash → internal key ids.
    tables: Vec<HashMap<u64, Vec<u32>>>,
    keys: Vec<String>,
}

impl LshIndex {
    /// Build an empty index for signatures of length `num_perm`, tuned for
    /// `threshold` (the `(b, r)` minimizing FP+FN area is chosen).
    pub fn new(threshold: f64, num_perm: usize) -> LshIndex {
        let (bands, rows) = optimal_params(threshold, num_perm);
        LshIndex {
            bands,
            rows,
            num_perm,
            tables: vec![HashMap::new(); bands],
            keys: Vec::new(),
        }
    }

    /// The chosen banding parameters `(b, r)`.
    pub fn params(&self) -> (usize, usize) {
        (self.bands, self.rows)
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Insert a key with its signature.
    ///
    /// # Panics
    /// If the signature length differs from the index's `num_perm`.
    pub fn insert(&mut self, key: &str, sig: &Signature) {
        assert_eq!(sig.len(), self.num_perm, "signature length mismatch");
        let id = self.keys.len() as u32;
        self.keys.push(key.to_string());
        for band in 0..self.bands {
            let lo = band * self.rows;
            let h = band_hash(band, &sig.0[lo..lo + self.rows]);
            self.tables[band].entry(h).or_default().push(id);
        }
    }

    /// All keys colliding with the query signature in at least one band.
    pub fn query(&self, sig: &Signature) -> Vec<String> {
        assert_eq!(sig.len(), self.num_perm, "signature length mismatch");
        let mut hits: HashSet<u32> = HashSet::new();
        for band in 0..self.bands {
            let lo = band * self.rows;
            let h = band_hash(band, &sig.0[lo..lo + self.rows]);
            if let Some(ids) = self.tables[band].get(&h) {
                hits.extend(ids.iter().copied());
            }
        }
        let mut out: Vec<String> = hits
            .into_iter()
            .map(|id| self.keys[id as usize].clone())
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hasher::MinHasher;

    fn tokens(prefix: &str, range: std::ops::Range<usize>) -> Vec<String> {
        range.map(|i| format!("{prefix}{i}")).collect()
    }

    #[test]
    fn finds_near_duplicates_and_skips_disjoint() {
        let hasher = MinHasher::new(128, 3);
        let mut index = LshIndex::new(0.6, 128);

        let base = tokens("v", 0..100);
        let near = tokens("v", 0..95); // jaccard 0.95
        let far = tokens("w", 0..100); // jaccard 0

        index.insert("near", &hasher.signature(near.iter().map(String::as_str)));
        index.insert("far", &hasher.signature(far.iter().map(String::as_str)));

        let hits = index.query(&hasher.signature(base.iter().map(String::as_str)));
        assert!(hits.contains(&"near".to_string()), "hits: {hits:?}");
        assert!(!hits.contains(&"far".to_string()), "hits: {hits:?}");
    }

    #[test]
    fn identical_signature_always_found() {
        let hasher = MinHasher::new(64, 5);
        let mut index = LshIndex::new(0.8, 64);
        let set = tokens("x", 0..30);
        let sig = hasher.signature(set.iter().map(String::as_str));
        index.insert("self", &sig);
        assert_eq!(index.query(&sig), vec!["self".to_string()]);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let hasher = MinHasher::new(64, 5);
        let index = LshIndex::new(0.5, 64);
        let sig = hasher.signature(["a"]);
        assert!(index.query(&sig).is_empty());
        assert!(index.is_empty());
    }

    #[test]
    fn len_counts_insertions() {
        let hasher = MinHasher::new(32, 5);
        let mut index = LshIndex::new(0.5, 32);
        for i in 0..5 {
            let set = tokens("k", i * 10..i * 10 + 10);
            index.insert(
                &format!("key{i}"),
                &hasher.signature(set.iter().map(String::as_str)),
            );
        }
        assert_eq!(index.len(), 5);
    }

    #[test]
    #[should_panic(expected = "signature length mismatch")]
    fn wrong_signature_length_panics() {
        let mut index = LshIndex::new(0.5, 64);
        index.insert("k", &Signature(vec![0; 32]));
    }

    #[test]
    fn duplicate_keys_both_returned() {
        // The index is multiset-like; deduplication is the caller's concern.
        let hasher = MinHasher::new(32, 5);
        let mut index = LshIndex::new(0.5, 32);
        let sig = hasher.signature(["a", "b", "c"]);
        index.insert("k", &sig);
        index.insert("k", &sig);
        let hits = index.query(&sig);
        assert_eq!(hits, vec!["k".to_string(), "k".to_string()]);
    }
}
