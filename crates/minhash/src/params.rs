//! Optimal banding-parameter search and the containment↔Jaccard conversion
//! from the LSH Ensemble paper.

/// Probability that a pair with Jaccard similarity `s` collides in at least
/// one of `b` bands of `r` rows: `1 - (1 - s^r)^b`.
fn collision_probability(s: f64, b: usize, r: usize) -> f64 {
    1.0 - (1.0 - s.powi(r as i32)).powi(b as i32)
}

/// False-positive area: ∫₀^t P(collide | s) ds, trapezoid rule.
fn false_positive_area(threshold: f64, b: usize, r: usize) -> f64 {
    integrate(0.0, threshold, |s| collision_probability(s, b, r))
}

/// False-negative area: ∫_t^1 (1 − P(collide | s)) ds, trapezoid rule.
fn false_negative_area(threshold: f64, b: usize, r: usize) -> f64 {
    integrate(threshold, 1.0, |s| 1.0 - collision_probability(s, b, r))
}

fn integrate(lo: f64, hi: f64, f: impl Fn(f64) -> f64) -> f64 {
    if hi <= lo {
        return 0.0;
    }
    const STEPS: usize = 64;
    let h = (hi - lo) / STEPS as f64;
    let mut acc = 0.5 * (f(lo) + f(hi));
    for i in 1..STEPS {
        acc += f(lo + h * i as f64);
    }
    acc * h
}

/// Find the `(b, r)` with `b * r ≤ num_perm` minimizing false-positive plus
/// false-negative area at the given Jaccard `threshold`.
pub fn optimal_params(threshold: f64, num_perm: usize) -> (usize, usize) {
    let mut best = (1usize, 1usize);
    let mut best_err = f64::INFINITY;
    for r in 1..=num_perm {
        let max_b = num_perm / r;
        if max_b == 0 {
            break;
        }
        for b in 1..=max_b {
            let err = false_positive_area(threshold, b, r) + false_negative_area(threshold, b, r);
            if err < best_err {
                best_err = err;
                best = (b, r);
            }
        }
    }
    best
}

/// Like [`optimal_params`] but restricted to row counts from `allowed_r`
/// (the ensemble only materializes banding tables for power-of-two `r`).
pub fn optimal_params_restricted(
    threshold: f64,
    num_perm: usize,
    allowed_r: &[usize],
) -> (usize, usize) {
    let mut best = (1usize, *allowed_r.first().unwrap_or(&1));
    let mut best_err = f64::INFINITY;
    for &r in allowed_r {
        if r == 0 || r > num_perm {
            continue;
        }
        let max_b = num_perm / r;
        for b in 1..=max_b {
            let err = false_positive_area(threshold, b, r) + false_negative_area(threshold, b, r);
            if err < best_err {
                best_err = err;
                best = (b, r);
            }
        }
    }
    best
}

/// Convert a containment threshold `t` for query-set size `q` against a
/// partition whose domains have size at most `u` into the equivalent
/// Jaccard threshold (LSH Ensemble, eq. 4):
/// `j = t·q / (q + u − t·q)`.
pub fn containment_to_jaccard(t: f64, q: usize, u: usize) -> f64 {
    if q == 0 {
        return 0.0;
    }
    let t = t.clamp(0.0, 1.0);
    let q = q as f64;
    let u = u.max(1) as f64;
    let denom = q + u - t * q;
    if denom <= 0.0 {
        1.0
    } else {
        (t * q / denom).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collision_probability_monotone_in_similarity() {
        let p1 = collision_probability(0.2, 8, 4);
        let p2 = collision_probability(0.6, 8, 4);
        let p3 = collision_probability(0.9, 8, 4);
        assert!(p1 < p2 && p2 < p3);
    }

    #[test]
    fn optimal_params_fit_budget() {
        for &t in &[0.1, 0.5, 0.9] {
            let (b, r) = optimal_params(t, 128);
            assert!(b * r <= 128, "b={b} r={r}");
            assert!(b >= 1 && r >= 1);
        }
    }

    #[test]
    fn higher_threshold_prefers_more_rows() {
        // High thresholds need steep S-curves → larger r.
        let (_, r_low) = optimal_params(0.2, 128);
        let (_, r_high) = optimal_params(0.9, 128);
        assert!(
            r_high >= r_low,
            "expected r({r_high}) at t=0.9 ≥ r({r_low}) at t=0.2"
        );
    }

    #[test]
    fn restricted_search_respects_allowed_r() {
        let allowed = [1usize, 2, 4, 8];
        let (b, r) = optimal_params_restricted(0.7, 64, &allowed);
        assert!(allowed.contains(&r));
        assert!(b * r <= 64);
    }

    #[test]
    fn containment_conversion_known_points() {
        // u == q and t = 1 → jaccard 1.
        assert!((containment_to_jaccard(1.0, 10, 10) - 1.0).abs() < 1e-12);
        // t = 0 → jaccard 0.
        assert_eq!(containment_to_jaccard(0.0, 10, 100), 0.0);
        // bigger domains dilute jaccard for the same containment.
        let j_small = containment_to_jaccard(0.5, 10, 10);
        let j_big = containment_to_jaccard(0.5, 10, 1000);
        assert!(j_big < j_small);
    }

    #[test]
    fn containment_conversion_is_bounded() {
        for q in [0usize, 1, 10, 1000] {
            for u in [1usize, 10, 100000] {
                for t in [0.0, 0.3, 0.7, 1.0] {
                    let j = containment_to_jaccard(t, q, u);
                    assert!((0.0..=1.0).contains(&j), "t={t} q={q} u={u} → {j}");
                }
            }
        }
    }
}
