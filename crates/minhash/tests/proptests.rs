//! Property-based tests: MinHash estimation quality and LSH recall for
//! guaranteed-identical signatures.

use std::collections::HashSet;

use dialite_minhash::{LshEnsembleBuilder, LshIndex, MinHasher};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With 256 permutations the standard error is ~1/√256 ≈ 0.0625; allow
    /// a generous 5σ band so the test is solid while still meaningful.
    #[test]
    fn estimate_within_5_sigma(
        a in prop::collection::hash_set(0u32..500, 10..80),
        b in prop::collection::hash_set(0u32..500, 10..80),
    ) {
        let hasher = MinHasher::new(256, 11);
        let ta: Vec<String> = a.iter().map(|i| format!("t{i}")).collect();
        let tb: Vec<String> = b.iter().map(|i| format!("t{i}")).collect();
        let sa = hasher.signature(ta.iter().map(String::as_str));
        let sb = hasher.signature(tb.iter().map(String::as_str));
        let inter = a.intersection(&b).count();
        let union = a.len() + b.len() - inter;
        let truth = inter as f64 / union as f64;
        let est = sa.estimate_jaccard(&sb);
        prop_assert!((est - truth).abs() < 5.0 * 0.0625, "est {est} vs truth {truth}");
    }

    #[test]
    fn signature_is_permutation_invariant(items in prop::collection::vec("[a-z]{1,8}", 1..40)) {
        let hasher = MinHasher::new(64, 5);
        let fwd = hasher.signature(items.iter().map(String::as_str));
        let mut rev = items.clone();
        rev.reverse();
        let bwd = hasher.signature(rev.iter().map(String::as_str));
        prop_assert_eq!(fwd, bwd);
    }

    #[test]
    fn lsh_always_finds_exact_duplicate(
        items in prop::collection::hash_set("[a-z0-9]{1,8}", 1..40),
        threshold in 0.1f64..0.95,
    ) {
        let hasher = MinHasher::new(64, 21);
        let mut index = LshIndex::new(threshold, 64);
        let v: Vec<&str> = items.iter().map(String::as_str).collect();
        let sig = hasher.signature(v.iter().copied());
        index.insert("dup", &sig);
        let hits = index.query(&sig);
        prop_assert!(hits.contains(&"dup".to_string()));
    }

    #[test]
    fn ensemble_always_finds_identical_domain(
        items in prop::collection::hash_set("[a-z0-9]{1,8}", 2..40),
        parts in 1usize..6,
    ) {
        let mut b = LshEnsembleBuilder::new(64, 3);
        let v: Vec<&str> = items.iter().map(String::as_str).collect();
        b.insert_tokens("self", v.iter().copied());
        // noise
        b.insert_tokens("noise", ["zzzz1", "zzzz2", "zzzz3"]);
        let hasher = b.hasher().clone();
        let index = b.build(parts);
        let sig = hasher.signature(v.iter().copied());
        let hits = index.query(&sig, items.len(), 0.9);
        prop_assert!(hits.contains(&"self"), "hits: {hits:?}");
    }

    #[test]
    fn ensemble_candidates_subset_of_indexed_keys(
        domains in prop::collection::vec(
            prop::collection::hash_set("[a-z]{1,6}", 1..20), 1..10),
    ) {
        let mut b = LshEnsembleBuilder::new(64, 9);
        let mut keys = HashSet::new();
        for (i, d) in domains.iter().enumerate() {
            let key = format!("d{i}");
            keys.insert(key.clone());
            b.insert_tokens(key, d.iter().map(String::as_str));
        }
        let hasher = b.hasher().clone();
        let index = b.build(3);
        let q: Vec<&str> = domains[0].iter().map(String::as_str).collect();
        let sig = hasher.signature(q.iter().copied());
        for hit in index.query(&sig, q.len(), 0.5) {
            prop_assert!(keys.contains(&hit));
        }
    }
}
