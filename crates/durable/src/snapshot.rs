//! Atomic on-disk snapshots: magic + checksum header, tmp + rename write.
//!
//! A snapshot captures the full lake state (occupied slots, free list in
//! reuse order, version stamp) and optionally the discovery index's
//! MinHash sketch export. Unlike the log, a snapshot is all-or-nothing:
//! it is written to a temporary file, fsync'd, then renamed over the live
//! name, so readers only ever observe a complete, checksummed image — a
//! crash mid-write leaves the previous snapshot (or none) in place.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

use dialite_minhash::SketchSnapshot;
use dialite_table::DataLake;
use dialite_text::fnv1a64;

use crate::codec::{self, Reader, SnapshotBody};

/// File magic: identifies a DIALITE lake snapshot, version 1.
const MAGIC: &[u8; 8] = b"DLSNAP01";

/// Write a snapshot of `lake` (and optionally the index sketches)
/// atomically to `path`.
pub(crate) fn write(
    path: &Path,
    lake: &DataLake,
    sketches: Option<&SketchSnapshot>,
) -> io::Result<()> {
    let mut body = Vec::new();
    codec::put_snapshot(&mut body, lake, sketches);
    let mut out = Vec::with_capacity(MAGIC.len() + 8 + body.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&fnv1a64(&body).to_le_bytes());
    out.extend_from_slice(&body);

    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&out)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    // Make the rename itself durable where the platform allows it.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_data();
        }
    }
    Ok(())
}

/// Read the snapshot at `path`. `Ok(None)` when no snapshot exists; a
/// present-but-invalid snapshot is a hard error (snapshots are written
/// atomically, so damage means the disk lied — recovery must not degrade
/// silently to an empty lake).
pub(crate) fn read(path: &Path) -> io::Result<Option<SnapshotBody>> {
    let mut f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    let invalid = |what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("snapshot {}: {what}", path.display()),
        )
    };
    if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(invalid("bad magic"));
    }
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&bytes[MAGIC.len()..MAGIC.len() + 8]);
    let body = &bytes[MAGIC.len() + 8..];
    if fnv1a64(body) != u64::from_le_bytes(sum) {
        return Err(invalid("checksum mismatch"));
    }
    codec::read_snapshot(&mut Reader::new(body))
        .map(Some)
        .map_err(|e| invalid(&e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::table;

    fn scratch(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!(
            "dialite_durable_snap_{}_{name}.bin",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn roundtrip_and_missing_file() {
        let path = scratch("roundtrip");
        assert!(read(&path).unwrap().is_none());
        let mut lake = DataLake::new();
        lake.add(table! { "a"; ["x"]; [1] }).unwrap();
        write(&path, &lake, None).unwrap();
        let body = read(&path).unwrap().unwrap();
        assert_eq!(body.version, lake.version());
        assert_eq!(body.entries.len(), 1);
        assert!(body.sketches.is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flipped_byte_is_a_hard_error() {
        let path = scratch("corrupt");
        let mut lake = DataLake::new();
        lake.add(table! { "a"; ["x"]; [1] }).unwrap();
        write(&path, &lake, None).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = read(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }
}
