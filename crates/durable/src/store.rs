//! The durable lake store: a directory holding `snapshot.bin` and
//! `events.log`, with open-time recovery and write-path append hooks.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dialite_minhash::SketchSnapshot;
use dialite_table::{bump_stamp_floor, DataLake};

use crate::log::EventLog;
use crate::snapshot;

/// Snapshot file name inside a durable data directory.
const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Event log file name inside a durable data directory.
const LOG_FILE: &str = "events.log";

/// Tuning for the durable store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableConfig {
    /// fsync the event log every this-many appended records. `1` (the
    /// default) makes every committed mutation durable before the write
    /// lock is released; larger values trade a bounded window of
    /// recent mutations for throughput; `0` defers entirely to explicit
    /// [`DurableLake::sync`] calls and snapshots.
    pub fsync_every: usize,
}

impl Default for DurableConfig {
    fn default() -> DurableConfig {
        DurableConfig { fsync_every: 1 }
    }
}

/// What [`DurableLake::open`] recovered from disk.
#[derive(Debug)]
pub struct Recovery {
    /// The lake as of the snapshot (empty, version 0, when none exists).
    /// Index warm-start builds against *this* state using
    /// [`Recovery::sketches`], then syncs forward to [`Recovery::lake`] —
    /// the same `events_since` replay a live index performs.
    pub snapshot: DataLake,
    /// The fully recovered lake: snapshot plus the replayed log tail.
    pub lake: DataLake,
    /// The index sketch export persisted with the snapshot, if any.
    pub sketches: Option<SketchSnapshot>,
    /// How many log records were replayed past the snapshot.
    pub replayed: usize,
}

/// An open durable store. Owns the event log; the live [`DataLake`] it
/// shadows is handed back from [`DurableLake::open`] and mutated by the
/// caller, who appends each mutation batch via
/// [`DurableLake::append_since`] *under the same lock that ordered the
/// mutation* — log order is serialization order.
#[derive(Debug)]
pub struct DurableLake {
    dir: PathBuf,
    log: EventLog,
}

impl DurableLake {
    /// Open (creating if needed) the durable store in `dir` and recover:
    /// restore the snapshot, replay the checksum-valid log tail through
    /// [`DataLake::apply_replayed`] (truncating any torn tail), and
    /// re-seed the process stamp source strictly past the maximum
    /// persisted stamp so post-restart mutations continue the same
    /// monotone history.
    pub fn open(dir: &Path, config: DurableConfig) -> io::Result<(DurableLake, Recovery)> {
        std::fs::create_dir_all(dir)?;
        let invalid = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);

        let (snapshot_lake, sketches) = match snapshot::read(&dir.join(SNAPSHOT_FILE))? {
            Some(body) => (
                DataLake::restore(body.entries, body.free, body.version)
                    .map_err(|e| invalid(e.to_string()))?,
                body.sketches,
            ),
            None => (DataLake::new(), None),
        };

        let (log, records) = EventLog::open(&dir.join(LOG_FILE), config.fsync_every)?;
        let mut lake = snapshot_lake.clone();
        let mut replayed = 0usize;
        for r in records {
            // Records at or below the snapshot stamp are the un-truncated
            // remains of a log the snapshot already covers (a crash
            // between snapshot rename and log truncation); skip them.
            if r.stamp <= snapshot_lake.version() {
                continue;
            }
            lake.apply_replayed(r.stamp, r.event, r.table.map(Arc::new))
                .map_err(|e| invalid(e.to_string()))?;
            replayed += 1;
        }

        bump_stamp_floor(lake.version());
        Ok((
            DurableLake {
                dir: dir.to_path_buf(),
                log,
            },
            Recovery {
                snapshot: snapshot_lake,
                lake,
                sketches,
                replayed,
            },
        ))
    }

    /// Append every event of `lake` newer than `since` — the batch a
    /// mutation closure just produced — with each slot's current content
    /// as the payload. Call under the same write lock that serialized the
    /// mutation, so the log records batches in serialization order.
    ///
    /// Fails with [`io::ErrorKind::InvalidInput`] when the lake can no
    /// longer serve the delta (the changelog truncated past `since`);
    /// the caller must write a fresh snapshot instead.
    pub fn append_since(&mut self, lake: &DataLake, since: u64) -> io::Result<usize> {
        let events = lake.events_since(since).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("changelog gap: delta since {since} unavailable; snapshot required"),
            )
        })?;
        for &(stamp, event) in &events {
            let table = lake.table_at(event.slot()).map(|t| t.as_ref());
            self.log.append(stamp, event, table)?;
        }
        Ok(events.len())
    }

    /// Durably capture `lake` (and optionally an index sketch export) as
    /// the new snapshot, then drop the now-redundant event log. Written
    /// atomically: a crash at any point leaves either the old snapshot +
    /// full log or the new snapshot (+ a log whose records the open-time
    /// replay skips as pre-snapshot).
    pub fn write_snapshot(
        &mut self,
        lake: &DataLake,
        sketches: Option<&SketchSnapshot>,
    ) -> io::Result<()> {
        snapshot::write(&self.dir.join(SNAPSHOT_FILE), lake, sketches)?;
        self.log.truncate()
    }

    /// Force any unsynced log appends to stable storage (for
    /// [`DurableConfig::fsync_every`] cadences other than 1).
    pub fn sync(&mut self) -> io::Result<()> {
        self.log.sync()
    }

    /// Number of records currently in the event log.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The data directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::{table, Value};

    fn scratch(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "dialite_durable_store_{}_{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn observable(lake: &DataLake) -> Vec<(u32, String, Vec<Vec<Value>>)> {
        lake.entries()
            .map(|(s, t)| {
                let rows: Vec<Vec<Value>> = t.rows().map(|r| r.to_vec()).collect();
                (s, t.name().to_string(), rows)
            })
            .collect()
    }

    #[test]
    fn open_empty_then_log_only_recovery() {
        let dir = scratch("log_only");
        let (mut durable, rec) = DurableLake::open(&dir, DurableConfig::default()).unwrap();
        assert!(rec.lake.is_empty() && rec.snapshot.is_empty());
        assert_eq!(rec.replayed, 0);

        let mut lake = rec.lake;
        let mut since = lake.version();
        lake.add(table! { "a"; ["x"]; [1] }).unwrap();
        lake.add(table! { "b"; ["x"]; [2] }).unwrap();
        durable.append_since(&lake, since).unwrap();
        since = lake.version();
        lake.remove("a").unwrap();
        lake.upsert(table! { "b"; ["x"]; [3], [4] });
        durable.append_since(&lake, since).unwrap();
        drop(durable);

        let (_, rec) = DurableLake::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(rec.replayed, 4);
        assert_eq!(rec.lake.version(), lake.version());
        assert_eq!(observable(&rec.lake), observable(&lake));
        assert_eq!(rec.lake.free_slots(), lake.free_slots());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_plus_tail_recovery_and_stamp_reseed() {
        let dir = scratch("snap_tail");
        let (mut durable, rec) = DurableLake::open(&dir, DurableConfig::default()).unwrap();
        let mut lake = rec.lake;
        let mut since = lake.version();
        for i in 0..5 {
            lake.add(table! { &format!("t{i}"); ["x"]; [i as i64] })
                .unwrap();
        }
        durable.append_since(&lake, since).unwrap();
        durable.write_snapshot(&lake, None).unwrap();
        assert_eq!(durable.log_len(), 0, "snapshot truncates the log");
        let snap_version = lake.version();

        since = lake.version();
        lake.remove("t1").unwrap();
        lake.upsert(table! { "t2"; ["x"]; [99] });
        durable.append_since(&lake, since).unwrap();
        drop(durable);

        let (_, rec) = DurableLake::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(rec.snapshot.version(), snap_version);
        assert_eq!(rec.snapshot.len(), 5);
        assert_eq!(rec.replayed, 2);
        assert_eq!(observable(&rec.lake), observable(&lake));
        assert_eq!(rec.lake.version(), lake.version());
        // Stamp source was re-seeded past the persisted maximum: the
        // recovered lake's next mutation continues the monotone history.
        let mut recovered = rec.lake;
        let before = recovered.version();
        recovered.upsert(table! { "t3"; ["x"]; [7] });
        assert!(recovered.version() > before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_between_snapshot_and_truncate_skips_covered_records() {
        let dir = scratch("crash_window");
        let (mut durable, rec) = DurableLake::open(&dir, DurableConfig::default()).unwrap();
        let mut lake = rec.lake;
        let since = lake.version();
        lake.add(table! { "a"; ["x"]; [1] }).unwrap();
        durable.append_since(&lake, since).unwrap();
        // Simulate the crash window: snapshot renamed, log NOT truncated.
        snapshot::write(&dir.join(SNAPSHOT_FILE), &lake, None).unwrap();
        drop(durable);

        let (_, rec) = DurableLake::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(rec.replayed, 0, "pre-snapshot records are skipped");
        assert_eq!(rec.lake.version(), lake.version());
        assert_eq!(observable(&rec.lake), observable(&lake));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn changelog_gap_demands_a_snapshot() {
        let dir = scratch("gap");
        let (mut durable, rec) = DurableLake::open(&dir, DurableConfig::default()).unwrap();
        let mut lake = rec.lake;
        // A stamp from a different lineage (never this lake's state).
        let mut other = DataLake::new();
        other.add(table! { "o"; ["x"]; [1] }).unwrap();
        lake.add(table! { "a"; ["x"]; [1] }).unwrap();
        let err = durable.append_since(&lake, other.version()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_captured_after_batch_still_converges() {
        // A mutation batch that adds then removes the same table logs an
        // Added record with no payload; replay must converge anyway.
        let dir = scratch("converge");
        let (mut durable, rec) = DurableLake::open(&dir, DurableConfig::default()).unwrap();
        let mut lake = rec.lake;
        let since = lake.version();
        lake.add(table! { "keep"; ["x"]; [1] }).unwrap();
        lake.add(table! { "ephemeral"; ["x"]; [2] }).unwrap();
        lake.remove("ephemeral").unwrap();
        durable.append_since(&lake, since).unwrap();
        drop(durable);

        let (_, rec) = DurableLake::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(rec.replayed, 3);
        assert_eq!(observable(&rec.lake), observable(&lake));
        assert_eq!(rec.lake.free_slots(), lake.free_slots());
        assert_eq!(rec.lake.version(), lake.version());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sketches_roundtrip_through_the_snapshot() {
        use dialite_minhash::Signature;
        let dir = scratch("sketches");
        let (mut durable, rec) = DurableLake::open(&dir, DurableConfig::default()).unwrap();
        let mut lake = rec.lake;
        let since = lake.version();
        lake.add(table! { "a"; ["x"]; [1] }).unwrap();
        durable.append_since(&lake, since).unwrap();
        let sketches = SketchSnapshot {
            num_perm: 2,
            seed: 5,
            domains: vec![((0, 0), 1, Signature(vec![10, 20]))],
        };
        durable.write_snapshot(&lake, Some(&sketches)).unwrap();
        drop(durable);
        let (_, rec) = DurableLake::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(rec.sketches, Some(sketches));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
