//! Bounds-checked binary encoding of the durable payloads: values,
//! tables, commitlog records and snapshots.
//!
//! Everything is little-endian and length-prefixed; decoding never
//! indexes past the buffer and never trusts a length prefix further than
//! the bytes actually present, so a torn or corrupted payload produces an
//! `Err` — which the log layer treats as the end of the valid prefix —
//! instead of a panic or a partial record. (There is no serde in this
//! offline workspace; like the JSON producers elsewhere in the repo, the
//! codec is hand-rolled.)

use std::sync::Arc;

use dialite_minhash::{Signature, SketchSnapshot};
use dialite_table::{ColumnMeta, ColumnType, DataLake, LakeEvent, NullKind, Schema, Table, Value};

/// Decoding failure: what was malformed. The log layer maps this to
/// "torn tail here"; the snapshot layer maps it to a hard I/O error.
pub(crate) type DecodeError = String;

type DecodeResult<T> = Result<T, DecodeError>;

// --- primitive writer ------------------------------------------------

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// --- primitive reader ------------------------------------------------

/// A cursor over a byte slice; every read is bounds-checked.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(format!("need {n} bytes, {} remain", self.remaining()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> DecodeResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> DecodeResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn str_(&mut self) -> DecodeResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid utf-8: {e}"))
    }

    /// A count prefix, refused when it could not possibly fit in the
    /// remaining bytes (each counted item occupies at least `min_item`
    /// bytes) — the guard that keeps a corrupted length from triggering
    /// a huge allocation.
    pub(crate) fn count(&mut self, min_item: usize) -> DecodeResult<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_item.max(1)) > self.remaining() {
            return Err(format!("count {n} exceeds remaining {}", self.remaining()));
        }
        Ok(n)
    }
}

// --- values ----------------------------------------------------------

const VAL_NULL_MISSING: u8 = 0;
const VAL_NULL_PRODUCED: u8 = 1;
const VAL_BOOL: u8 = 2;
const VAL_INT: u8 = 3;
const VAL_FLOAT: u8 = 4;
const VAL_TEXT: u8 = 5;

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null(NullKind::Missing) => put_u8(out, VAL_NULL_MISSING),
        Value::Null(NullKind::Produced) => put_u8(out, VAL_NULL_PRODUCED),
        Value::Bool(b) => {
            put_u8(out, VAL_BOOL);
            put_u8(out, u8::from(*b));
        }
        Value::Int(i) => {
            put_u8(out, VAL_INT);
            put_u64(out, *i as u64);
        }
        Value::Float(f) => {
            put_u8(out, VAL_FLOAT);
            put_u64(out, f.to_bits());
        }
        Value::Text(s) => {
            put_u8(out, VAL_TEXT);
            put_str(out, s);
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> DecodeResult<Value> {
    Ok(match r.u8()? {
        VAL_NULL_MISSING => Value::Null(NullKind::Missing),
        VAL_NULL_PRODUCED => Value::Null(NullKind::Produced),
        VAL_BOOL => Value::Bool(r.u8()? != 0),
        VAL_INT => Value::Int(r.u64()? as i64),
        VAL_FLOAT => Value::Float(f64::from_bits(r.u64()?)),
        VAL_TEXT => Value::Text(r.str_()?),
        tag => return Err(format!("unknown value tag {tag}")),
    })
}

// --- column types ----------------------------------------------------

fn ctype_tag(c: ColumnType) -> u8 {
    match c {
        ColumnType::Int => 0,
        ColumnType::Float => 1,
        ColumnType::Bool => 2,
        ColumnType::Text => 3,
        ColumnType::Mixed => 4,
        ColumnType::Unknown => 5,
    }
}

fn read_ctype(r: &mut Reader<'_>) -> DecodeResult<ColumnType> {
    Ok(match r.u8()? {
        0 => ColumnType::Int,
        1 => ColumnType::Float,
        2 => ColumnType::Bool,
        3 => ColumnType::Text,
        4 => ColumnType::Mixed,
        5 => ColumnType::Unknown,
        tag => return Err(format!("unknown column type tag {tag}")),
    })
}

// --- tables ----------------------------------------------------------

pub(crate) fn put_table(out: &mut Vec<u8>, t: &Table) {
    put_str(out, t.name());
    put_u32(out, t.schema().len() as u32);
    for c in t.schema().columns() {
        put_str(out, &c.name);
        put_u8(out, ctype_tag(c.ctype));
    }
    put_u32(out, t.row_count() as u32);
    for row in t.rows() {
        for v in row {
            put_value(out, v);
        }
    }
}

/// Rebuild a table exactly as persisted: the schema's column types are
/// restored verbatim (no re-inference), so the round trip is the
/// identity even for schemas that did not come from inference.
pub(crate) fn read_table(r: &mut Reader<'_>) -> DecodeResult<Table> {
    let name = r.str_()?;
    let ncols = r.count(5)?;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let cname = r.str_()?;
        let ctype = read_ctype(r)?;
        columns.push(ColumnMeta { name: cname, ctype });
    }
    let schema = Schema::from_columns(&name, columns).map_err(|e| e.to_string())?;
    let mut table = Table::with_schema(&name, schema);
    let nrows = r.count(ncols)?;
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(read_value(r)?);
        }
        table.push_row(row).map_err(|e| e.to_string())?;
    }
    Ok(table)
}

// --- commitlog records -----------------------------------------------

const EVT_ADDED: u8 = 0;
const EVT_REMOVED: u8 = 1;
const EVT_REPLACED: u8 = 2;

/// Encode one commitlog record payload: `(stamp, event)` plus the table
/// payload captured for `Added`/`Replaced` (absent when the slot had
/// already been emptied again by the time the record was appended).
pub(crate) fn put_record(out: &mut Vec<u8>, stamp: u64, event: LakeEvent, table: Option<&Table>) {
    let kind = match event {
        LakeEvent::Added(_) => EVT_ADDED,
        LakeEvent::Removed(_) => EVT_REMOVED,
        LakeEvent::Replaced(_) => EVT_REPLACED,
    };
    put_u8(out, kind);
    put_u64(out, stamp);
    put_u32(out, event.slot());
    match table {
        Some(t) => {
            put_u8(out, 1);
            put_table(out, t);
        }
        None => put_u8(out, 0),
    }
}

pub(crate) fn read_record(r: &mut Reader<'_>) -> DecodeResult<(u64, LakeEvent, Option<Table>)> {
    let kind = r.u8()?;
    let stamp = r.u64()?;
    let slot = r.u32()?;
    let event = match kind {
        EVT_ADDED => LakeEvent::Added(slot),
        EVT_REMOVED => LakeEvent::Removed(slot),
        EVT_REPLACED => LakeEvent::Replaced(slot),
        tag => return Err(format!("unknown event tag {tag}")),
    };
    let table = match r.u8()? {
        0 => None,
        1 => Some(read_table(r)?),
        tag => return Err(format!("unknown payload marker {tag}")),
    };
    if !r.is_done() {
        return Err(format!("{} trailing bytes after record", r.remaining()));
    }
    Ok((stamp, event, table))
}

// --- snapshots -------------------------------------------------------

/// Encode the snapshot body: lake state plus the optional sketch export.
pub(crate) fn put_snapshot(out: &mut Vec<u8>, lake: &DataLake, sketches: Option<&SketchSnapshot>) {
    put_u64(out, lake.version());
    put_u32(out, lake.len() as u32);
    for (slot, table) in lake.entries() {
        put_u32(out, slot);
        put_table(out, table);
    }
    put_u32(out, lake.free_slots().len() as u32);
    for &slot in lake.free_slots() {
        put_u32(out, slot);
    }
    match sketches {
        Some(s) => {
            put_u8(out, 1);
            put_u32(out, s.num_perm as u32);
            put_u64(out, s.seed);
            put_u32(out, s.domains.len() as u32);
            for ((slot, col), size, sig) in &s.domains {
                put_u32(out, *slot);
                put_u32(out, *col);
                put_u64(out, *size as u64);
                for &m in &sig.0 {
                    put_u64(out, m);
                }
            }
        }
        None => put_u8(out, 0),
    }
}

#[derive(Debug)]
pub(crate) struct SnapshotBody {
    pub(crate) version: u64,
    pub(crate) entries: Vec<(u32, Arc<Table>)>,
    pub(crate) free: Vec<u32>,
    pub(crate) sketches: Option<SketchSnapshot>,
}

pub(crate) fn read_snapshot(r: &mut Reader<'_>) -> DecodeResult<SnapshotBody> {
    let version = r.u64()?;
    let nentries = r.count(5)?;
    let mut entries = Vec::with_capacity(nentries);
    for _ in 0..nentries {
        let slot = r.u32()?;
        entries.push((slot, Arc::new(read_table(r)?)));
    }
    let nfree = r.count(4)?;
    let mut free = Vec::with_capacity(nfree);
    for _ in 0..nfree {
        free.push(r.u32()?);
    }
    let sketches = match r.u8()? {
        0 => None,
        1 => {
            let num_perm = r.u32()? as usize;
            let seed = r.u64()?;
            let ndomains = r.count(16 + num_perm.saturating_mul(8))?;
            let mut domains = Vec::with_capacity(ndomains);
            for _ in 0..ndomains {
                let slot = r.u32()?;
                let col = r.u32()?;
                let size = r.u64()? as usize;
                let mut sig = Vec::with_capacity(num_perm);
                for _ in 0..num_perm {
                    sig.push(r.u64()?);
                }
                domains.push(((slot, col), size, Signature(sig)));
            }
            Some(SketchSnapshot {
                num_perm,
                seed,
                domains,
            })
        }
        tag => return Err(format!("unknown sketch marker {tag}")),
    };
    if !r.is_done() {
        return Err(format!("{} trailing bytes after snapshot", r.remaining()));
    }
    Ok(SnapshotBody {
        version,
        entries,
        free,
        sketches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::table;

    fn roundtrip_table(t: &Table) -> Table {
        let mut buf = Vec::new();
        put_table(&mut buf, t);
        read_table(&mut Reader::new(&buf)).unwrap()
    }

    #[test]
    fn table_roundtrip_is_identity() {
        let mut t = table! { "mix"; ["i", "f", "s", "b"]; };
        t.push_row(vec![
            Value::Int(-3),
            Value::Float(1.5),
            Value::Text("héllo".into()),
            Value::Bool(true),
        ])
        .unwrap();
        t.push_row(vec![
            Value::Null(NullKind::Missing),
            Value::Null(NullKind::Produced),
            Value::Text(String::new()),
            Value::Bool(false),
        ])
        .unwrap();
        assert_eq!(roundtrip_table(&t), t);
    }

    #[test]
    fn schema_types_survive_without_reinference() {
        // A schema whose declared types differ from what inference over
        // the (empty) rows would produce must come back verbatim.
        let schema = Schema::from_columns(
            "typed",
            vec![
                ColumnMeta {
                    name: "a".into(),
                    ctype: ColumnType::Float,
                },
                ColumnMeta {
                    name: "b".into(),
                    ctype: ColumnType::Mixed,
                },
            ],
        )
        .unwrap();
        let t = Table::with_schema("typed", schema);
        let back = roundtrip_table(&t);
        assert_eq!(back.schema().columns()[0].ctype, ColumnType::Float);
        assert_eq!(back.schema().columns()[1].ctype, ColumnType::Mixed);
        assert_eq!(back, t);
    }

    #[test]
    fn record_roundtrip_with_and_without_payload() {
        let t = table! { "t"; ["x"]; [1], [2] };
        let mut buf = Vec::new();
        put_record(&mut buf, 42, LakeEvent::Replaced(7), Some(&t));
        let (stamp, event, table) = read_record(&mut Reader::new(&buf)).unwrap();
        assert_eq!((stamp, event), (42, LakeEvent::Replaced(7)));
        assert_eq!(table.unwrap(), t);

        let mut buf = Vec::new();
        put_record(&mut buf, 43, LakeEvent::Removed(7), None);
        let (stamp, event, table) = read_record(&mut Reader::new(&buf)).unwrap();
        assert_eq!((stamp, event), (43, LakeEvent::Removed(7)));
        assert!(table.is_none());
    }

    #[test]
    fn truncated_and_mangled_payloads_error_instead_of_panicking() {
        let t = table! { "t"; ["x"]; [1] };
        let mut buf = Vec::new();
        put_record(&mut buf, 1, LakeEvent::Added(0), Some(&t));
        // Every strict prefix must fail cleanly.
        for cut in 0..buf.len() {
            assert!(
                read_record(&mut Reader::new(&buf[..cut])).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // A length prefix pointing past the buffer must not allocate or
        // panic either.
        let mut huge = Vec::new();
        put_u8(&mut huge, EVT_ADDED);
        put_u64(&mut huge, 1);
        put_u32(&mut huge, 0);
        put_u8(&mut huge, 1);
        put_u32(&mut huge, u32::MAX); // "table name is 4 GiB long"
        assert!(read_record(&mut Reader::new(&huge)).is_err());
    }

    #[test]
    fn snapshot_roundtrip_restores_the_lake() {
        let mut lake = DataLake::new();
        lake.add(table! { "a"; ["x"]; [1] }).unwrap();
        lake.add(table! { "b"; ["y"]; [2], [3] }).unwrap();
        lake.remove("a").unwrap();
        let sketches = SketchSnapshot {
            num_perm: 4,
            seed: 9,
            domains: vec![((1, 0), 2, Signature(vec![1, 2, 3, 4]))],
        };
        let mut buf = Vec::new();
        put_snapshot(&mut buf, &lake, Some(&sketches));
        let body = read_snapshot(&mut Reader::new(&buf)).unwrap();
        assert_eq!(body.version, lake.version());
        assert_eq!(body.free, lake.free_slots());
        assert_eq!(body.sketches.as_ref(), Some(&sketches));
        let restored = DataLake::restore(body.entries, body.free, body.version).unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(
            restored.get("b").unwrap().as_ref(),
            lake.get("b").unwrap().as_ref()
        );
    }
}
