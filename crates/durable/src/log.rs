//! The append-only event log: checksummed framing and torn-tail recovery.
//!
//! On disk the log is a plain sequence of frames, no file header:
//!
//! ```text
//! ┌─────────────┬────────────────────┬──────────────┐
//! │ len: u32 LE │ fnv1a64(payload)   │ payload…     │  × N
//! └─────────────┴────────────────────┴──────────────┘
//! ```
//!
//! Recovery walks the frames from the start and stops at the first one
//! that is short, fails its checksum, or does not decode as a record —
//! everything after that point is a torn tail from a crash mid-append and
//! is truncated off, so a partial record can never be served. Appends are
//! buffered by the OS and fsync'd every [`fsync_every`] records (`1` =
//! every append; `0` = only on explicit [`EventLog::sync`] / snapshot).
//!
//! [`fsync_every`]: crate::DurableConfig::fsync_every

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use dialite_table::{LakeEvent, Table};
use dialite_text::fnv1a64;

use crate::codec;

/// Frame header size: `u32` payload length + `u64` payload checksum.
const FRAME_HEADER: usize = 12;

/// One recovered commitlog record: the persisted stamp, the event, and
/// the table payload captured for `Added`/`Replaced` records (absent when
/// the slot had been emptied again by the time the record was appended).
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// The version stamp the event was recorded under.
    pub stamp: u64,
    /// The lake event itself.
    pub event: LakeEvent,
    /// The slot's content right after the mutation batch, if any.
    pub table: Option<Table>,
}

/// The open, writable event log. Created via [`EventLog::open`], which
/// also performs torn-tail recovery.
#[derive(Debug)]
pub struct EventLog {
    file: File,
    fsync_every: usize,
    unsynced: usize,
    records: usize,
}

impl EventLog {
    /// Open (or create) the log at `path`, recover every checksum-valid
    /// record from the start, and truncate whatever torn tail follows.
    /// The returned log is positioned for appending.
    pub fn open(path: &Path, fsync_every: usize) -> io::Result<(EventLog, Vec<LogRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid_len) = recover(&bytes);
        if valid_len < bytes.len() {
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))?;
        let n = records.len();
        Ok((
            EventLog {
                file,
                fsync_every,
                unsynced: 0,
                records: n,
            },
            records,
        ))
    }

    /// Append one framed record and fsync if the cadence says so.
    pub fn append(
        &mut self,
        stamp: u64,
        event: LakeEvent,
        table: Option<&Table>,
    ) -> io::Result<()> {
        let mut payload = Vec::new();
        codec::put_record(&mut payload, stamp, event, table);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        codec::put_u32(&mut frame, payload.len() as u32);
        codec::put_u64(&mut frame, fnv1a64(&payload));
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.records += 1;
        self.unsynced += 1;
        if self.fsync_every > 0 && self.unsynced >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Drop every record — called right after a snapshot has durably
    /// captured the state the log was protecting.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.records = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// Number of records currently in the log (recovered + appended).
    pub fn len(&self) -> usize {
        self.records
    }

    /// `true` when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }
}

/// Walk the frames of `bytes`, returning every fully valid record and the
/// byte length of that valid prefix. Never panics on any input.
fn recover(bytes: &[u8]) -> (Vec<LogRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= FRAME_HEADER {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let Some(end) = pos
            .checked_add(FRAME_HEADER)
            .and_then(|p| p.checked_add(len))
        else {
            break;
        };
        if end > bytes.len() {
            break; // torn: the frame promises more bytes than exist
        }
        let checksum = u64::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
            bytes[pos + 8],
            bytes[pos + 9],
            bytes[pos + 10],
            bytes[pos + 11],
        ]);
        let payload = &bytes[pos + FRAME_HEADER..end];
        if fnv1a64(payload) != checksum {
            break; // torn or corrupted: never serve a partial record
        }
        let Ok((stamp, event, table)) = codec::read_record(&mut codec::Reader::new(payload)) else {
            break;
        };
        records.push(LogRecord {
            stamp,
            event,
            table,
        });
        pos = end;
    }
    (records, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::table;

    fn scratch(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!(
            "dialite_durable_log_{}_{name}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample_records(n: u64) -> Vec<(u64, LakeEvent, Option<Table>)> {
        (1..=n)
            .map(|i| {
                let t = table! { &format!("t{i}"); ["x"]; [i as i64] };
                (i, LakeEvent::Added((i % 5) as u32), Some(t))
            })
            .collect()
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let path = scratch("roundtrip");
        let (mut log, recovered) = EventLog::open(&path, 1).unwrap();
        assert!(recovered.is_empty() && log.is_empty());
        for (stamp, event, table) in sample_records(7) {
            log.append(stamp, event, table.as_ref()).unwrap();
        }
        assert_eq!(log.len(), 7);
        drop(log);
        let (log, recovered) = EventLog::open(&path, 1).unwrap();
        assert_eq!(log.len(), 7);
        assert_eq!(recovered.len(), 7);
        for (r, (stamp, event, table)) in recovered.iter().zip(sample_records(7)) {
            assert_eq!(
                (r.stamp, r.event, r.table.as_ref()),
                (stamp, event, table.as_ref())
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_continues() {
        let path = scratch("torn");
        let (mut log, _) = EventLog::open(&path, 1).unwrap();
        for (stamp, event, table) in sample_records(3) {
            log.append(stamp, event, table.as_ref()).unwrap();
        }
        drop(log);
        // Tear the last record: chop 5 bytes off the file.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (mut log, recovered) = EventLog::open(&path, 1).unwrap();
        assert_eq!(recovered.len(), 2, "torn third record must be dropped");
        // The torn bytes are gone from disk, and the log accepts appends.
        assert!(std::fs::metadata(&path).unwrap().len() < bytes.len() as u64);
        log.append(9, LakeEvent::Removed(0), None).unwrap();
        drop(log);
        let (_, recovered) = EventLog::open(&path, 1).unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(recovered[2].stamp, 9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_cadence_defers_fsync_to_explicit_sync() {
        let path = scratch("cadence");
        let (mut log, _) = EventLog::open(&path, 0).unwrap();
        for (stamp, event, table) in sample_records(4) {
            log.append(stamp, event, table.as_ref()).unwrap();
        }
        log.sync().unwrap();
        drop(log);
        let (_, recovered) = EventLog::open(&path, 0).unwrap();
        assert_eq!(recovered.len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = scratch("truncate");
        let (mut log, _) = EventLog::open(&path, 1).unwrap();
        for (stamp, event, table) in sample_records(3) {
            log.append(stamp, event, table.as_ref()).unwrap();
        }
        log.truncate().unwrap();
        assert!(log.is_empty());
        log.append(50, LakeEvent::Added(0), None).unwrap();
        drop(log);
        let (_, recovered) = EventLog::open(&path, 1).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].stamp, 50);
        let _ = std::fs::remove_file(&path);
    }
}
