//! # dialite-durable
//!
//! Snapshot + commitlog durability underneath the live [`DataLake`]
//! (ROADMAP open item 1: the SpacetimeDB-style persistence split). The
//! lake already *is* a commitlog system in RAM — monotone version stamps,
//! a bounded `events_since` changelog — and this crate gives those two
//! structures an on-disk shadow:
//!
//! * an **append-only event log** (`events.log`): one length+checksum
//!   framed record per [`dialite_table::LakeEvent`], carrying the stamp
//!   and, for `Added`/`Replaced`, the slot's table payload; fsync'd on a
//!   configurable cadence ([`DurableConfig::fsync_every`]);
//! * **atomic snapshots** (`snapshot.bin`, written tmp + rename): the
//!   occupied slots, the free list in reuse order, the version stamp, and
//!   optionally the index's MinHash [`SketchSnapshot`] so discovery can
//!   warm-start without re-hashing the corpus.
//!
//! [`DurableLake::open`] recovers by restoring the snapshot, replaying
//! the log tail through [`DataLake::apply_replayed`] (stamps come from
//! disk, never minted), truncating a torn tail at the first frame whose
//! checksum or framing fails, and re-seeding the process stamp source
//! strictly past the maximum persisted stamp via
//! [`dialite_table::bump_stamp_floor`] — without which a restarted
//! process would mint stamps colliding with its own persisted history.
//!
//! The recovery contract, pinned by this crate's tests and the core
//! recovery oracle: *(snapshot at any prefix + replay of the log tail)*
//! is byte-for-byte the never-restarted lake, and never serves a partial
//! record.

#![deny(missing_docs)]

mod codec;
mod log;
mod snapshot;
mod store;

pub use log::{EventLog, LogRecord};
pub use store::{DurableConfig, DurableLake, Recovery};

pub use dialite_minhash::SketchSnapshot;
pub use dialite_table::DataLake;
