//! Torn-tail property tests for the commitlog: truncating or corrupting
//! the log file at **any** byte position must recover exactly the longest
//! checksum-valid record prefix — never panic, never serve a partial
//! record — and the recovered log must accept appends again.
//!
//! Runs with the standard `PROPTEST_CASES` knob; CI's scheduled deep job
//! raises it to 1024.

use std::path::PathBuf;

use dialite_durable::EventLog;
use dialite_table::{table, LakeEvent, Table};
use proptest::prelude::*;

fn scratch(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "dialite_torn_tail_{}_{tag}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Deterministic sample records with non-trivial payloads.
fn records(n: usize) -> Vec<(u64, LakeEvent, Option<Table>)> {
    (0..n)
        .map(|i| {
            let stamp = (i as u64) * 3 + 1;
            match i % 3 {
                0 => {
                    let name = format!("t{i}");
                    let tok = format!("tok{i}");
                    let t = table! { &name; ["k", "v"]; [tok.as_str(), i as i64] };
                    (stamp, LakeEvent::Added((i % 4) as u32), Some(t))
                }
                1 => (stamp, LakeEvent::Removed((i % 4) as u32), None),
                _ => {
                    let name = format!("r{i}");
                    let t = table! { &name; ["k"]; [i as i64] };
                    (stamp, LakeEvent::Replaced((i % 4) as u32), Some(t))
                }
            }
        })
        .collect()
}

/// Write `n` records, returning the file length after each append — the
/// frame boundaries a recovery must respect.
fn build_log(path: &PathBuf, n: usize) -> Vec<u64> {
    let (mut log, recovered) = EventLog::open(path, 1).expect("fresh log");
    assert!(recovered.is_empty());
    let mut bounds = vec![0u64];
    for (stamp, event, table) in records(n) {
        log.append(stamp, event, table.as_ref()).expect("append");
        bounds.push(std::fs::metadata(path).expect("log file").len());
    }
    bounds
}

proptest! {
    /// Chop the log at an arbitrary byte offset: recovery returns exactly
    /// the records whose frames fit entirely inside the kept prefix, the
    /// file is truncated to that valid prefix, and appending continues.
    #[test]
    fn truncation_at_any_offset_recovers_the_frame_prefix(n in 1usize..9, frac in 0.0f64..1.0) {
        let path = scratch(&format!("cut_{n}"));
        let bounds = build_log(&path, n);
        let total = *bounds.last().unwrap();
        let cut = (total as f64 * frac) as u64;
        let bytes = std::fs::read(&path).expect("log bytes");
        std::fs::write(&path, &bytes[..cut as usize]).expect("chop");

        let want = bounds.iter().filter(|&&b| b > 0 && b <= cut).count();
        let (mut log, recovered) = EventLog::open(&path, 1).expect("recovery never fails");
        prop_assert_eq!(recovered.len(), want, "cut at {} of {}", cut, total);
        prop_assert_eq!(std::fs::metadata(&path).expect("log file").len(), bounds[want]);
        let expected = records(n);
        for (r, (stamp, event, table)) in recovered.iter().zip(&expected) {
            prop_assert_eq!(&r.stamp, stamp);
            prop_assert_eq!(&r.event, event);
            prop_assert_eq!(&r.table, table);
        }

        // The recovered log accepts appends and serves them back.
        log.append(10_000, LakeEvent::Removed(0), None).expect("append after tear");
        drop(log);
        let (_, recovered) = EventLog::open(&path, 1).expect("reopen");
        prop_assert_eq!(recovered.len(), want + 1);
        prop_assert_eq!(recovered.last().expect("appended record").stamp, 10_000);
        let _ = std::fs::remove_file(&path);
    }

    /// Flip one byte anywhere in the log: recovery stops at the record
    /// containing the flipped byte (its checksum can no longer hold) and
    /// serves every record before it intact.
    #[test]
    fn byte_flip_at_any_offset_recovers_the_preceding_records(n in 1usize..9, frac in 0.0f64..1.0) {
        let path = scratch(&format!("flip_{n}"));
        let bounds = build_log(&path, n);
        let total = *bounds.last().unwrap();
        let mut bytes = std::fs::read(&path).expect("log bytes");
        let pos = ((total - 1) as f64 * frac) as usize;
        bytes[pos] ^= 0x5a;
        std::fs::write(&path, &bytes).expect("flip");

        // The flipped byte lives in record `hit` (0-based): everything
        // before it must survive, nothing at or after it may.
        let hit = bounds.iter().skip(1).filter(|&&b| b <= pos as u64).count();
        let (_, recovered) = EventLog::open(&path, 1).expect("recovery never fails");
        prop_assert_eq!(recovered.len(), hit, "flip at {} of {}", pos, total);
        let expected = records(n);
        for (r, (stamp, event, table)) in recovered.iter().zip(&expected) {
            prop_assert_eq!(&r.stamp, stamp);
            prop_assert_eq!(&r.event, event);
            prop_assert_eq!(&r.table, table);
        }
        let _ = std::fs::remove_file(&path);
    }
}
