//! Dictionary encoding for [`Value`]s.
//!
//! The integration hot path (ALITE's complementation fixpoint and
//! subsumption pass) compares, hashes and indexes the *same* cell values
//! thousands of times per run. A [`ValueInterner`] assigns each distinct
//! non-null value a dense `u32` id once at ingest, so everything downstream
//! — consistency checks, merges, inverted indexes, content dedup — becomes
//! integer arithmetic with no clones, the classic dictionary-encoding move
//! of columnar systems.
//!
//! Two ids are reserved below [`ValueInterner::FIRST_VALUE_ID`] for the two
//! null kinds, keeping the `±`/`⊥` provenance distinction of the paper
//! (Figs. 2–3) representable in id space while letting callers test
//! null-ness with a single comparison:
//!
//! * [`ValueInterner::NULL_PRODUCED`] (`0`) — a produced null (`⊥`);
//! * [`ValueInterner::NULL_MISSING`] (`1`) — a missing null (`±`).
//!
//! The ordering is deliberate: merging two nulls must let a *missing* null
//! dominate a *produced* one (paper Fig. 3), which over these ids is just
//! `max`. Value ids are **content ids**: interning respects [`Value`]
//! equality (all NaNs are one id, `-0.0` is `0.0`), so two ids are equal iff
//! the values have the same content.

use std::collections::HashMap;

use crate::value::{NullKind, Value};

/// Bidirectional `Value ↔ u32` dictionary. See the module docs.
///
/// Each distinct non-null value is held twice (once per direction of the
/// map) — a deliberate simplicity/memory tradeoff. The dictionary holds
/// *distinct* values only, so even then it is far smaller than the row
/// data it encodes; revisit with a shared-allocation scheme if
/// distinct-heavy lakes ever make it the resident-set driver.
#[derive(Debug, Clone)]
pub struct ValueInterner {
    /// `id → value`; slots 0 and 1 hold the two null kinds.
    values: Vec<Value>,
    /// `value → id` for non-null values only (nulls resolve by kind).
    ids: HashMap<Value, u32>,
}

impl ValueInterner {
    /// Id of the produced null (`⊥`).
    pub const NULL_PRODUCED: u32 = 0;
    /// Id of the missing null (`±`).
    pub const NULL_MISSING: u32 = 1;
    /// First id handed out to a non-null value.
    pub const FIRST_VALUE_ID: u32 = 2;

    /// An interner holding only the two reserved null ids.
    pub fn new() -> ValueInterner {
        ValueInterner {
            values: vec![Value::null_produced(), Value::null_missing()],
            ids: HashMap::new(),
        }
    }

    /// `true` iff `id` denotes either null kind.
    #[inline]
    pub fn is_null_id(id: u32) -> bool {
        id < Self::FIRST_VALUE_ID
    }

    /// Intern a value, cloning it only the first time it is seen.
    pub fn intern(&mut self, v: &Value) -> u32 {
        match v {
            Value::Null(NullKind::Produced) => Self::NULL_PRODUCED,
            Value::Null(NullKind::Missing) => Self::NULL_MISSING,
            _ => match self.ids.get(v) {
                Some(&id) => id,
                None => {
                    let id = u32::try_from(self.values.len()).expect("interner id space");
                    self.ids.insert(v.clone(), id);
                    self.values.push(v.clone());
                    id
                }
            },
        }
    }

    /// Id of an already-interned value, if any. Nulls always resolve.
    pub fn get(&self, v: &Value) -> Option<u32> {
        match v {
            Value::Null(NullKind::Produced) => Some(Self::NULL_PRODUCED),
            Value::Null(NullKind::Missing) => Some(Self::NULL_MISSING),
            _ => self.ids.get(v).copied(),
        }
    }

    /// The value behind an id.
    ///
    /// # Panics
    /// If `id` was not produced by this interner.
    #[inline]
    pub fn resolve(&self, id: u32) -> &Value {
        &self.values[id as usize]
    }

    /// Number of ids handed out, including the two reserved null ids.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no non-null value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.len() == Self::FIRST_VALUE_ID as usize
    }
}

impl Default for ValueInterner {
    fn default() -> Self {
        ValueInterner::new()
    }
}

// Merging two nulls is `max(a, b)` in the integrate crate; that is only
// correct while produced < missing < every value id.
const _: () = assert!(
    ValueInterner::NULL_PRODUCED < ValueInterner::NULL_MISSING
        && ValueInterner::NULL_MISSING < ValueInterner::FIRST_VALUE_ID
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_ids_are_reserved_by_kind() {
        let mut i = ValueInterner::new();
        assert_eq!(
            i.intern(&Value::null_produced()),
            ValueInterner::NULL_PRODUCED
        );
        assert_eq!(
            i.intern(&Value::null_missing()),
            ValueInterner::NULL_MISSING
        );
        assert!(ValueInterner::is_null_id(0));
        assert!(ValueInterner::is_null_id(1));
        assert!(!ValueInterner::is_null_id(2));
        assert!(matches!(
            i.resolve(ValueInterner::NULL_MISSING),
            Value::Null(NullKind::Missing)
        ));
        assert!(matches!(
            i.resolve(ValueInterner::NULL_PRODUCED),
            Value::Null(NullKind::Produced)
        ));
    }

    #[test]
    fn interning_is_idempotent_and_round_trips() {
        let mut i = ValueInterner::new();
        let a = i.intern(&Value::Text("Berlin".into()));
        let b = i.intern(&Value::Text("Berlin".into()));
        let c = i.intern(&Value::Int(7));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.resolve(a), &Value::Text("Berlin".into()));
        assert_eq!(i.resolve(c), &Value::Int(7));
        assert_eq!(i.len(), 4, "two nulls + two values");
    }

    #[test]
    fn ids_respect_value_content_equality() {
        let mut i = ValueInterner::new();
        // All NaNs share content equality, hence one id; same for -0.0/0.0.
        assert_eq!(
            i.intern(&Value::Float(f64::NAN)),
            i.intern(&Value::Float(-f64::NAN))
        );
        assert_eq!(i.intern(&Value::Float(0.0)), i.intern(&Value::Float(-0.0)));
        // Cross-type values stay distinct.
        assert_ne!(i.intern(&Value::Int(3)), i.intern(&Value::Float(3.0)));
        assert_ne!(i.intern(&Value::Text("3".into())), i.intern(&Value::Int(3)));
    }

    #[test]
    fn get_resolves_without_inserting() {
        let mut i = ValueInterner::new();
        assert_eq!(i.get(&Value::Int(1)), None);
        assert_eq!(
            i.get(&Value::null_missing()),
            Some(ValueInterner::NULL_MISSING)
        );
        let id = i.intern(&Value::Int(1));
        assert_eq!(i.get(&Value::Int(1)), Some(id));
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn empty_tracks_non_null_values_only() {
        let mut i = ValueInterner::new();
        assert!(i.is_empty());
        i.intern(&Value::null_missing());
        assert!(i.is_empty());
        i.intern(&Value::Bool(true));
        assert!(!i.is_empty());
    }
}
