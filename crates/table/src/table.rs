use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TableError;
use crate::schema::{ColumnType, Schema};
use crate::value::Value;

/// A tuple identifier: `(table index, row index)` within a fixed list of
/// tables (an *integration set*). Integration carries sets of `Tid`s as
/// provenance — the `{t1, t7}` annotations of paper Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tid {
    /// Index of the source table in the integration set.
    pub table: u32,
    /// Row index within that table.
    pub row: u32,
}

impl Tid {
    /// Construct a tuple id.
    pub fn new(table: u32, row: u32) -> Tid {
        Tid { table, row }
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.table, self.row)
    }
}

/// A named relational table: a [`Schema`] plus row-major tuples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Create an empty table with the given column names.
    pub fn new<S: AsRef<str>>(name: &str, columns: &[S]) -> Result<Table, TableError> {
        Ok(Table {
            name: name.to_string(),
            schema: Schema::new(name, columns)?,
            rows: Vec::new(),
        })
    }

    /// Create a table from rows, checking arity and inferring column types.
    pub fn from_rows<S: AsRef<str>>(
        name: &str,
        columns: &[S],
        rows: Vec<Vec<Value>>,
    ) -> Result<Table, TableError> {
        let mut t = Table::new(name, columns)?;
        for row in rows {
            t.push_row(row)?;
        }
        t.infer_types();
        Ok(t)
    }

    /// Create a table from an existing schema (used by integration engines
    /// that assemble schemas out of integration IDs).
    pub fn with_schema(name: &str, schema: Schema) -> Table {
        Table {
            name: name.to_string(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename, returning `self` for chaining.
    pub fn renamed(mut self, name: &str) -> Table {
        self.name = name.to_string();
        self
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.schema.len()
    }

    /// Append a row; fails if the arity does not match the schema.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), TableError> {
        if row.len() != self.schema.len() {
            return Err(TableError::ArityMismatch {
                table: self.name.clone(),
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Borrow a row.
    pub fn row(&self, idx: usize) -> Result<&[Value], TableError> {
        self.rows
            .get(idx)
            .map(|r| r.as_slice())
            .ok_or(TableError::RowOutOfBounds {
                table: self.name.clone(),
                row: idx,
            })
    }

    /// Iterate all rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// Position of a column by header name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema.index_of(name)
    }

    /// Iterate the values of one column.
    pub fn column_values(&self, idx: usize) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(move |r| &r[idx])
    }

    /// Normalized non-null value tokens of one column, as a set — the
    /// "domain" that joinable-table search and value-overlap matching use.
    pub fn column_token_set(&self, idx: usize) -> HashSet<String> {
        self.column_values(idx)
            .filter_map(Value::overlap_token)
            .collect()
    }

    /// Re-infer all column types from current contents.
    pub fn infer_types(&mut self) {
        for c in 0..self.schema.len() {
            let t = ColumnType::infer(self.rows.iter().map(|r| &r[c]));
            self.schema.set_type(c, t);
        }
    }

    /// Project onto a subset of columns (by index), in the given order.
    pub fn project(&self, indices: &[usize], name: &str) -> Result<Table, TableError> {
        for &i in indices {
            if i >= self.schema.len() {
                return Err(TableError::UnknownColumn {
                    table: self.name.clone(),
                    column: format!("#{i}"),
                });
            }
        }
        let names: Vec<&str> = indices
            .iter()
            .map(|&i| self.schema.column(i).name.as_str())
            .collect();
        let rows = self
            .rows
            .iter()
            .map(|r| indices.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Table::from_rows(name, &names, rows)
    }

    /// Keep only rows matching a predicate.
    pub fn filter<F: FnMut(&[Value]) -> bool>(&self, name: &str, mut pred: F) -> Table {
        let mut t = Table::with_schema(name, self.schema.clone());
        t.rows = self
            .rows
            .iter()
            .filter(|r| pred(r.as_slice()))
            .cloned()
            .collect();
        t
    }

    /// Remove duplicate rows (content equality, so `±` and `⊥` coincide),
    /// preserving first occurrence order.
    pub fn distinct(&self) -> Table {
        let mut seen: HashSet<&[Value]> = HashSet::with_capacity(self.rows.len());
        let mut t = Table::with_schema(&self.name, self.schema.clone());
        for row in &self.rows {
            if seen.insert(row.as_slice()) {
                t.rows.push(row.clone());
            }
        }
        t
    }

    /// Total number of null cells.
    pub fn null_count(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().filter(|v| v.is_null()).count())
            .sum()
    }

    /// Fraction of cells that are null (0 for an empty table).
    pub fn null_rate(&self) -> f64 {
        let cells = self.rows.len() * self.schema.len();
        if cells == 0 {
            0.0
        } else {
            self.null_count() as f64 / cells as f64
        }
    }

    /// A copy with rows sorted in the total [`Value`] order — a canonical
    /// form so two tables can be compared regardless of row order.
    pub fn sorted(&self) -> Table {
        let mut t = self.clone();
        t.rows.sort();
        t
    }

    /// `true` if both tables have the same column names (in order) and the
    /// same multiset of rows. This is the equality used by the experiment
    /// harness to check reproduced figures.
    pub fn same_content(&self, other: &Table) -> bool {
        if self.schema.len() != other.schema.len() {
            return false;
        }
        if !self.schema.names().eq(other.schema.names()) {
            return false;
        }
        let mut a = self.rows.clone();
        let mut b = other.rows.clone();
        a.sort();
        b.sort();
        a == b
    }

    /// Consume the table, yielding its rows.
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        self.rows
    }
}

impl fmt::Display for Table {
    /// Pretty-print with aligned columns, in the style of the paper figures.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self.schema.names().map(str::to_string).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        writeln!(f, "# {} ({} rows)", self.name, self.rows.len())?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                write!(f, " {}{} |", cell, " ".repeat(pad))?;
            }
            writeln!(f)
        };
        line(f, &headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &sep)?;
        for row in &rendered {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table;

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::new("t", &["a", "b"]).unwrap();
        let err = t.push_row(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            TableError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn macro_builds_and_infers_types() {
        let t = table! {
            "mix"; ["city", "pop", "rate"];
            ["Berlin", 3_600_000, 0.63],
            ["Boston", 690_000, 0.62],
        };
        assert_eq!(t.schema().column(0).ctype, ColumnType::Text);
        assert_eq!(t.schema().column(1).ctype, ColumnType::Int);
        assert_eq!(t.schema().column(2).ctype, ColumnType::Float);
    }

    #[test]
    fn int_and_float_mix_infers_float() {
        let t = Table::from_rows(
            "n",
            &["x"],
            vec![vec![Value::Int(1)], vec![Value::Float(2.5)]],
        )
        .unwrap();
        assert_eq!(t.schema().column(0).ctype, ColumnType::Float);
    }

    #[test]
    fn project_reorders_columns() {
        let t = table! { "t"; ["a", "b", "c"]; [1, 2, 3], [4, 5, 6] };
        let p = t.project(&[2, 0], "p").unwrap();
        let names: Vec<_> = p.schema().names().collect();
        assert_eq!(names, vec!["c", "a"]);
        assert_eq!(p.row(0).unwrap(), &[Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn project_out_of_range_errors() {
        let t = table! { "t"; ["a"]; [1] };
        assert!(t.project(&[3], "p").is_err());
    }

    #[test]
    fn distinct_uses_content_equality_across_null_kinds() {
        let t = Table::from_rows(
            "t",
            &["a", "b"],
            vec![
                vec![Value::Int(1), Value::null_missing()],
                vec![Value::Int(1), Value::null_produced()],
                vec![Value::Int(2), Value::null_missing()],
            ],
        )
        .unwrap();
        assert_eq!(t.distinct().row_count(), 2);
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let t = table! { "t"; ["x"]; [1], [2], [3] };
        let f = t.filter("f", |r| r[0].as_int().unwrap() >= 2);
        assert_eq!(f.row_count(), 2);
    }

    #[test]
    fn same_content_ignores_row_order() {
        let a = table! { "a"; ["x", "y"]; [1, "p"], [2, "q"] };
        let b = table! { "b"; ["x", "y"]; [2, "q"], [1, "p"] };
        assert!(a.same_content(&b));
        let c = table! { "c"; ["x", "y"]; [2, "q"], [2, "q"] };
        assert!(!a.same_content(&c));
        let d = table! { "d"; ["x", "z"]; [1, "p"], [2, "q"] };
        assert!(!a.same_content(&d));
    }

    #[test]
    fn null_statistics() {
        let t = Table::from_rows(
            "t",
            &["a", "b"],
            vec![
                vec![Value::Int(1), Value::null_missing()],
                vec![Value::null_produced(), Value::Int(2)],
            ],
        )
        .unwrap();
        assert_eq!(t.null_count(), 2);
        assert!((t.null_rate() - 0.5).abs() < 1e-12);
        let empty = Table::new("e", &["a"]).unwrap();
        assert_eq!(empty.null_rate(), 0.0);
    }

    #[test]
    fn column_token_set_skips_nulls_and_normalizes() {
        let t = Table::from_rows(
            "t",
            &["city"],
            vec![
                vec![Value::Text("Berlin".into())],
                vec![Value::Text(" BERLIN ".into())],
                vec![Value::null_missing()],
                vec![Value::Text("Boston".into())],
            ],
        )
        .unwrap();
        let set = t.column_token_set(0);
        assert_eq!(set.len(), 2);
        assert!(set.contains("berlin"));
        assert!(set.contains("boston"));
    }

    #[test]
    fn display_contains_headers_and_null_glyphs() {
        let t = Table::from_rows(
            "t",
            &["city", "rate"],
            vec![vec![Value::Text("Berlin".into()), Value::null_produced()]],
        )
        .unwrap();
        let s = t.to_string();
        assert!(s.contains("city"));
        assert!(s.contains("⊥"));
    }

    #[test]
    fn tid_display_and_order() {
        let a = Tid::new(0, 1);
        let b = Tid::new(1, 0);
        assert!(a < b);
        assert_eq!(a.to_string(), "t0.1");
    }

    #[test]
    fn row_out_of_bounds_is_error() {
        let t = table! { "t"; ["x"]; [1] };
        assert!(t.row(0).is_ok());
        assert!(matches!(
            t.row(5),
            Err(TableError::RowOutOfBounds { row: 5, .. })
        ));
    }
}
