//! Shared demo fixtures: the paper's Fig. 2 / Fig. 7 tables and the small
//! demo lake built from them.
//!
//! These used to be duplicated between `dialite-integrate`'s test helpers
//! and `dialite-core`'s demo module (and re-typed in integration tests);
//! they live here — the bottom of the crate DAG — so that every layer,
//! including the workspace-root integration tests, consumes one copy.

use crate::{table, DataLake, Table, Value};

/// Paper Fig. 2, T1 — the query table (COVID vaccination rates).
pub fn fig2_query() -> Table {
    table! {
        "T1"; ["Country", "City", "Vaccination Rate"];
        ["Germany", "Berlin", 0.63],
        ["England", "Manchester", 0.78],
        ["Spain", "Barcelona", 0.82],
    }
}

/// Paper Fig. 2, T2 — the unionable table in the lake.
pub fn fig2_unionable() -> Table {
    table! {
        "T2"; ["Country", "City", "Vaccination Rate"];
        ["Canada", "Toronto", 0.83],
        ["Mexico", "Mexico City", Value::null_missing()],
        ["USA", "Boston", 0.62],
    }
}

/// Paper Fig. 2, T3 — the joinable table in the lake.
pub fn fig2_joinable() -> Table {
    table! {
        "T3"; ["City", "Total Cases", "Death Rate"];
        ["Berlin", 1_400_000, 147],
        ["Barcelona", 2_680_000, 275],
        ["Boston", 263_000, 335],
        ["New Delhi", 2_000_000, 158],
    }
}

/// Paper Fig. 2: the COVID tables `(T1 query, T2 unionable, T3 joinable)`.
pub fn fig2_tables() -> (Table, Table, Table) {
    (fig2_query(), fig2_unionable(), fig2_joinable())
}

/// The expected integrated table of paper Fig. 3 (content; row order free).
pub fn fig3_expected() -> Table {
    table! {
        "FD(T1, T2, T3)";
        ["Country", "City", "Vaccination Rate", "Total Cases", "Death Rate"];
        ["Germany", "Berlin", 0.63, 1_400_000, 147],
        ["England", "Manchester", 0.78, Value::null_produced(), Value::null_produced()],
        ["Spain", "Barcelona", 0.82, 2_680_000, 275],
        ["Canada", "Toronto", 0.83, Value::null_produced(), Value::null_produced()],
        ["Mexico", "Mexico City", Value::null_missing(), Value::null_produced(), Value::null_produced()],
        ["USA", "Boston", 0.62, 263_000, 335],
        [Value::null_produced(), "New Delhi", Value::null_produced(), 2_000_000, 158],
    }
}

/// Paper Fig. 7 — the vaccine integration set `(T4, T5, T6)`.
pub fn fig7_tables() -> (Table, Table, Table) {
    let t4 = table! {
        "T4"; ["Vaccine", "Approver"];
        ["Pfizer", "FDA"],
        ["JnJ", Value::null_missing()],
    };
    let t5 = table! {
        "T5"; ["Country", "Approver"];
        ["United States", "FDA"],
        ["USA", Value::null_missing()],
    };
    let t6 = table! {
        "T6"; ["Vaccine", "Country"];
        ["J&J", "United States"],
        ["JnJ", "USA"],
    };
    (t4, t5, t6)
}

/// The demo lake: T2, T3, the vaccine tables and two distractors. The query
/// table T1 is *not* in the lake — it is uploaded by the user (paper §3.1).
pub fn covid_lake() -> DataLake {
    let (t4, t5, t6) = fig7_tables();
    let gdp = table! {
        "gdp"; ["economy", "gdp_musd"];
        ["Germany", 4_200_000], ["Spain", 1_400_000], ["Canada", 2_100_000],
    };
    let animals = table! {
        "animals"; ["species", "legs"];
        ["cat", 4], ["emu", 2], ["ant", 6],
    };
    DataLake::from_tables([fig2_unionable(), fig2_joinable(), t4, t5, t6, gdp, animals])
        .expect("demo table names are unique")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shapes_match_the_paper() {
        let (t1, t2, t3) = fig2_tables();
        assert_eq!((t1.row_count(), t1.column_count()), (3, 3));
        assert_eq!((t2.row_count(), t2.column_count()), (3, 3));
        assert_eq!((t3.row_count(), t3.column_count()), (4, 3));
    }

    #[test]
    fn fig7_tables_are_two_by_two() {
        let (t4, t5, t6) = fig7_tables();
        for t in [&t4, &t5, &t6] {
            assert_eq!((t.row_count(), t.column_count()), (2, 2));
        }
    }

    #[test]
    fn covid_lake_holds_demo_tables_but_not_the_query() {
        let lake = covid_lake();
        for name in ["T2", "T3", "T4", "T5", "T6", "gdp", "animals"] {
            assert!(lake.get(name).is_some(), "{name} missing");
        }
        assert!(lake.get("T1").is_none());
    }
}
