//! A dependency-free RFC-4180-style CSV reader/writer.
//!
//! Supports quoted fields, doubled-quote escapes, embedded newlines and
//! configurable delimiters — enough to ingest real open-data CSVs, which is
//! the input format the DIALITE demo accepts (§3.1).
//!
//! Caveat (inherent to CSV, same as pandas' `na_values`): a text field whose
//! content spells a null (`na`, `null`, …), boolean or number is
//! indistinguishable from that typed value after a round trip — the reader
//! re-infers types from the raw strings.

use std::path::Path;

use crate::error::TableError;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first record is a header row (default `true`).
    /// When `false`, columns are named `col_0`, `col_1`, ….
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
        }
    }
}

/// Terminate the current record, skipping records that are a single empty
/// field (blank lines). A record whose only field was *quoted* (`""` on a
/// line of its own) is real data, not a blank line, and is kept.
fn end_record(
    records: &mut Vec<Vec<String>>,
    record: &mut Vec<String>,
    field: &mut String,
    saw_quote: &mut bool,
) {
    record.push(std::mem::take(field));
    if *saw_quote || !(record.len() == 1 && record[0].is_empty()) {
        records.push(std::mem::take(record));
    } else {
        record.clear();
    }
    *saw_quote = false;
}

/// Parse CSV text into raw string records.
///
/// Record terminators are `\n`, `\r\n`, and (classic-Mac style) a lone
/// `\r`; inside quoted fields all three are preserved verbatim.
pub fn parse_csv(input: &str, opts: &CsvOptions) -> Result<Vec<Vec<String>>, TableError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    // Whether the current record contained any quoted field, to tell an
    // explicit `""` row apart from a skippable blank line.
    let mut saw_quote = false;
    let mut line = 1usize;
    let mut chars = input.chars().peekable();

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if !field.is_empty() {
                    return Err(TableError::Csv {
                        line,
                        message: "quote inside unquoted field".into(),
                    });
                }
                in_quotes = true;
                saw_quote = true;
            }
            '\r' => {
                // Only swallow a \r that starts a \r\n pair (the \n branch
                // then ends the record). A lone \r is itself a record
                // terminator — previously it was dropped unconditionally,
                // silently corrupting `a\rb` to `ab` and collapsing
                // \r-terminated files into one record.
                if chars.peek() != Some(&'\n') {
                    line += 1;
                    end_record(&mut records, &mut record, &mut field, &mut saw_quote);
                }
            }
            '\n' => {
                line += 1;
                end_record(&mut records, &mut record, &mut field, &mut saw_quote);
            }
            d if d == opts.delimiter => {
                record.push(std::mem::take(&mut field));
            }
            _ => field.push(c),
        }
    }
    if in_quotes {
        return Err(TableError::Csv {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if !field.is_empty() || !record.is_empty() || saw_quote {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Parse CSV text into a typed [`Table`], inferring column types and
/// deduplicating repeated headers.
pub fn read_csv_str(name: &str, input: &str, opts: &CsvOptions) -> Result<Table, TableError> {
    let records = parse_csv(input, opts)?;
    let mut iter = records.into_iter();
    let (schema, first_data): (Schema, Option<Vec<String>>) = if opts.has_header {
        match iter.next() {
            Some(h) => (Schema::new_deduped(&h), None),
            None => (Schema::new_deduped::<String>(&[]), None),
        }
    } else {
        match iter.next() {
            Some(first) => {
                let names: Vec<String> = (0..first.len()).map(|i| format!("col_{i}")).collect();
                (Schema::new_deduped(&names), Some(first))
            }
            None => (Schema::new_deduped::<String>(&[]), None),
        }
    };

    let mut table = Table::with_schema(name, schema);
    let parse_record =
        |rec: Vec<String>| -> Vec<Value> { rec.iter().map(|s| Value::parse_str(s)).collect() };
    if let Some(first) = first_data {
        table.push_row(parse_record(first))?;
    }
    for rec in iter {
        table.push_row(parse_record(rec))?;
    }
    table.infer_types();
    Ok(table)
}

fn needs_quoting(s: &str, delimiter: char) -> bool {
    s.contains(delimiter) || s.contains('"') || s.contains('\n') || s.contains('\r')
}

fn quote(s: &str, delimiter: char) -> String {
    if needs_quoting(s, delimiter) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serialize a table to CSV text (header + rows). Nulls serialize to their
/// paper glyphs (`±` / `⊥`) so a round trip preserves null provenance.
pub fn table_to_csv(table: &Table) -> String {
    let delimiter = ',';
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .names()
        .map(|n| quote(n, delimiter))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in table.rows() {
        let cells: Vec<String> = row
            .iter()
            .map(|v| quote(&v.to_string(), delimiter))
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Write a table to a CSV file.
pub fn write_csv_path(table: &Table, path: &Path) -> Result<(), TableError> {
    std::fs::write(path, table_to_csv(table)).map_err(|e| TableError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    #[test]
    fn parses_simple_records() {
        let recs = parse_csv("a,b\n1,2\n3,4\n", &CsvOptions::default()).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[1], vec!["1", "2"]);
    }

    #[test]
    fn parses_quotes_and_embedded_delimiters() {
        let recs = parse_csv(
            "name,notes\n\"Smith, J\",\"said \"\"hi\"\"\"\n",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(recs[1][0], "Smith, J");
        assert_eq!(recs[1][1], "said \"hi\"");
    }

    #[test]
    fn parses_embedded_newline() {
        let recs = parse_csv("a\n\"line1\nline2\"\n", &CsvOptions::default()).unwrap();
        assert_eq!(recs[1][0], "line1\nline2");
    }

    #[test]
    fn handles_crlf_and_missing_trailing_newline() {
        let recs = parse_csv("a,b\r\n1,2\r\n3,4", &CsvOptions::default()).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[2], vec!["3", "4"]);
    }

    #[test]
    fn lone_cr_terminates_records_classic_mac_style() {
        let recs = parse_csv("a,b\r1,2\r3,4\r", &CsvOptions::default()).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], vec!["a", "b"]);
        assert_eq!(recs[2], vec!["3", "4"]);
    }

    #[test]
    fn bare_cr_in_unquoted_field_is_not_swallowed() {
        // `a\rb` must not corrupt to one field "ab": the \r ends the record.
        let recs = parse_csv("a\rb\n", &CsvOptions::default()).unwrap();
        assert_eq!(recs, vec![vec!["a"], vec!["b"]]);
    }

    #[test]
    fn quoted_cr_is_preserved() {
        let recs = parse_csv("a\n\"x\ry\",2\n", &CsvOptions::default()).unwrap();
        assert_eq!(recs[1][0], "x\ry");
        assert_eq!(recs[1][1], "2");
        // CRLF inside quotes is also literal field content.
        let recs = parse_csv("a\n\"x\r\ny\"\n", &CsvOptions::default()).unwrap();
        assert_eq!(recs[1][0], "x\r\ny");
    }

    #[test]
    fn quoted_empty_field_is_a_record_not_a_blank_line() {
        // `""` on a line of its own is an explicit empty field; only truly
        // blank lines are skipped.
        let recs = parse_csv("a\n\"\"\nx\n", &CsvOptions::default()).unwrap();
        assert_eq!(recs, vec![vec!["a"], vec![""], vec!["x"]]);
        // …including at EOF without a trailing newline.
        let recs = parse_csv("a\n\"\"", &CsvOptions::default()).unwrap();
        assert_eq!(recs, vec![vec!["a"], vec![""]]);
    }

    #[test]
    fn blank_cr_lines_are_skipped() {
        let recs = parse_csv("a,b\r\r1,2\r\n\r", &CsvOptions::default()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], vec!["1", "2"]);
    }

    #[test]
    fn round_trip_preserves_cr_in_text() {
        let t = Table::from_rows(
            "t",
            &["note"],
            vec![vec![Value::Text("line1\rline2".into())]],
        )
        .unwrap();
        let back = read_csv_str("t", &table_to_csv(&t), &CsvOptions::default()).unwrap();
        assert!(t.same_content(&back));
    }

    #[test]
    fn unterminated_quote_is_error() {
        let err = parse_csv("a\n\"oops\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, TableError::Csv { .. }));
    }

    #[test]
    fn quote_inside_unquoted_field_is_error() {
        let err = parse_csv("a\nx\"y\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, TableError::Csv { .. }));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let recs = parse_csv("a,b\n\n1,2\n\n", &CsvOptions::default()).unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn read_infers_types_and_nulls() {
        let t = read_csv_str(
            "covid",
            "city,rate,cases\nBerlin,0.63,1400000\nManchester,,\n",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.schema().column(1).ctype, ColumnType::Float);
        assert_eq!(t.schema().column(2).ctype, ColumnType::Int);
        assert!(t.row(1).unwrap()[1].is_null());
    }

    #[test]
    fn headerless_mode_names_columns() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let t = read_csv_str("t", "1,2\n3,4\n", &opts).unwrap();
        let names: Vec<_> = t.schema().names().collect();
        assert_eq!(names, vec!["col_0", "col_1"]);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn custom_delimiter() {
        let opts = CsvOptions {
            delimiter: ';',
            ..CsvOptions::default()
        };
        let t = read_csv_str("t", "a;b\n1;2\n", &opts).unwrap();
        assert_eq!(t.row(0).unwrap()[1], Value::Int(2));
    }

    #[test]
    fn round_trip_preserves_content_and_null_kinds() {
        let t = Table::from_rows(
            "t",
            &["city", "note"],
            vec![
                vec![Value::Text("Boston, MA".into()), Value::null_missing()],
                vec![Value::Text("said \"hi\"".into()), Value::null_produced()],
                vec![Value::Int(5), Value::Float(2.5)],
            ],
        )
        .unwrap();
        let csv = table_to_csv(&t);
        let back = read_csv_str("t", &csv, &CsvOptions::default()).unwrap();
        assert!(t.same_content(&back));
        // null kinds survive, not just null-ness
        assert_eq!(back.row(0).unwrap()[1], Value::null_missing());
        assert!(matches!(
            back.row(1).unwrap()[1],
            Value::Null(crate::NullKind::Produced)
        ));
    }

    #[test]
    fn empty_input_yields_empty_table() {
        let t = read_csv_str("t", "", &CsvOptions::default()).unwrap();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.column_count(), 0);
    }
}
