use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TableError;
use crate::value::Value;

/// Inferred type of a column.
///
/// Data-lake tables carry no reliable type metadata, so types are inferred
/// from the values actually present. Nulls are transparent for inference:
/// a column of `{1, ±, 3}` is `Int`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// All non-null values are integers.
    Int,
    /// All non-null values are numeric and at least one is a float.
    Float,
    /// All non-null values are booleans.
    Bool,
    /// All non-null values are text.
    Text,
    /// Non-null values of more than one incompatible type.
    Mixed,
    /// No non-null values observed.
    Unknown,
}

impl ColumnType {
    /// The type of a single value (`Unknown` for nulls).
    pub fn of(v: &Value) -> ColumnType {
        match v {
            Value::Null(_) => ColumnType::Unknown,
            Value::Bool(_) => ColumnType::Bool,
            Value::Int(_) => ColumnType::Int,
            Value::Float(_) => ColumnType::Float,
            Value::Text(_) => ColumnType::Text,
        }
    }

    /// Combine the evidence of two observations.
    /// `Int ⊔ Float = Float`; any other mixture of distinct concrete types is `Mixed`.
    pub fn merge(self, other: ColumnType) -> ColumnType {
        use ColumnType::*;
        match (self, other) {
            (Unknown, t) | (t, Unknown) => t,
            (a, b) if a == b => a,
            (Int, Float) | (Float, Int) => Float,
            _ => Mixed,
        }
    }

    /// Whether the column is numeric (int or float).
    pub fn is_numeric(self) -> bool {
        matches!(self, ColumnType::Int | ColumnType::Float)
    }

    /// Infer the type of a column from an iterator of values.
    pub fn infer<'a>(values: impl IntoIterator<Item = &'a Value>) -> ColumnType {
        values
            .into_iter()
            .fold(ColumnType::Unknown, |acc, v| acc.merge(ColumnType::of(v)))
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Bool => "bool",
            ColumnType::Text => "text",
            ColumnType::Mixed => "mixed",
            ColumnType::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// Name and inferred type of one column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Column header. Data-lake headers are unreliable; discovery and
    /// alignment never *depend* on them, but they are kept for display.
    pub name: String,
    /// Inferred value type.
    pub ctype: ColumnType,
}

/// An ordered list of uniquely named columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnMeta>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema from column names. Fails on duplicates.
    pub fn new<S: AsRef<str>>(table: &str, names: &[S]) -> Result<Schema, TableError> {
        let mut columns = Vec::with_capacity(names.len());
        let mut by_name = HashMap::with_capacity(names.len());
        for (i, n) in names.iter().enumerate() {
            let name = n.as_ref().to_string();
            if by_name.insert(name.clone(), i).is_some() {
                return Err(TableError::DuplicateColumn {
                    table: table.to_string(),
                    column: name,
                });
            }
            columns.push(ColumnMeta {
                name,
                ctype: ColumnType::Unknown,
            });
        }
        Ok(Schema { columns, by_name })
    }

    /// Build a schema from fully specified columns — names *and* types —
    /// the way persisted durable state carries them. Unlike the inference
    /// path, the given types are kept verbatim, so a table restored from
    /// a snapshot or commitlog record is byte-for-byte the table that was
    /// persisted even when its schema did not come from inference.
    /// Fails on duplicate names.
    pub fn from_columns(table: &str, columns: Vec<ColumnMeta>) -> Result<Schema, TableError> {
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if by_name.insert(c.name.clone(), i).is_some() {
                return Err(TableError::DuplicateColumn {
                    table: table.to_string(),
                    column: c.name.clone(),
                });
            }
        }
        Ok(Schema { columns, by_name })
    }

    /// Build a schema deduplicating repeated headers by suffixing `_2`, `_3`, …
    /// (real open-data CSVs do repeat headers).
    pub fn new_deduped<S: AsRef<str>>(names: &[S]) -> Schema {
        let mut seen: HashMap<String, usize> = HashMap::new();
        let mut columns = Vec::with_capacity(names.len());
        let mut by_name = HashMap::with_capacity(names.len());
        for n in names {
            let base = n.as_ref().to_string();
            let count = seen.entry(base.clone()).or_insert(0);
            *count += 1;
            let mut name = if *count == 1 {
                base.clone()
            } else {
                format!("{base}_{count}")
            };
            // Guard against a pre-existing column literally named `base_2`.
            while by_name.contains_key(&name) {
                *count += 1;
                name = format!("{base}_{count}");
            }
            by_name.insert(name.clone(), columns.len());
            columns.push(ColumnMeta {
                name,
                ctype: ColumnType::Unknown,
            });
        }
        Schema { columns, by_name }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Column metadata at a position.
    pub fn column(&self, idx: usize) -> &ColumnMeta {
        &self.columns[idx]
    }

    /// All column metadata in order.
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    /// All column names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name.as_str())
    }

    /// Set the inferred type of a column.
    pub(crate) fn set_type(&mut self, idx: usize, t: ColumnType) {
        self.columns[idx].ctype = t;
    }

    /// Rebuild the name index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new("t", &["a", "b", "a"]).unwrap_err();
        assert_eq!(
            err,
            TableError::DuplicateColumn {
                table: "t".into(),
                column: "a".into()
            }
        );
    }

    #[test]
    fn dedup_suffixes_repeats() {
        let s = Schema::new_deduped(&["a", "b", "a", "a"]);
        let names: Vec<_> = s.names().collect();
        assert_eq!(names, vec!["a", "b", "a_2", "a_3"]);
        assert_eq!(s.index_of("a_3"), Some(3));
    }

    #[test]
    fn dedup_avoids_preexisting_collision() {
        let s = Schema::new_deduped(&["a_2", "a", "a"]);
        let names: Vec<_> = s.names().collect();
        assert_eq!(names.len(), 3);
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), 3, "{names:?}");
    }

    #[test]
    fn type_merge_lattice() {
        use ColumnType::*;
        assert_eq!(Int.merge(Float), Float);
        assert_eq!(Float.merge(Int), Float);
        assert_eq!(Int.merge(Int), Int);
        assert_eq!(Unknown.merge(Text), Text);
        assert_eq!(Text.merge(Int), Mixed);
        assert_eq!(Mixed.merge(Int), Mixed);
        assert_eq!(Bool.merge(Text), Mixed);
    }

    #[test]
    fn infer_ignores_nulls() {
        let vals = vec![Value::Int(1), Value::null_missing(), Value::Int(2)];
        assert_eq!(ColumnType::infer(&vals), ColumnType::Int);
        let empty: Vec<Value> = vec![];
        assert_eq!(ColumnType::infer(&empty), ColumnType::Unknown);
        let nulls = vec![Value::null_missing(), Value::null_produced()];
        assert_eq!(ColumnType::infer(&nulls), ColumnType::Unknown);
    }

    #[test]
    fn index_of_finds_columns() {
        let s = Schema::new("t", &["country", "city"]).unwrap();
        assert_eq!(s.index_of("city"), Some(1));
        assert_eq!(s.index_of("state"), None);
        assert_eq!(s.len(), 2);
    }
}
