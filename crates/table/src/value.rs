use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

/// The two flavours of null distinguished by the DIALITE paper.
///
/// * [`NullKind::Missing`] (`±`) — a null that was already present in the
///   source table ("missing nulls", Fig. 2 of the paper).
/// * [`NullKind::Produced`] (`⊥`) — a null introduced by an integration
///   operator because the source table did not have the attribute at all
///   ("produced nulls", Fig. 3).
///
/// The distinction is *presentational and provenance-related only*: for
/// equality, hashing and all integration semantics the two kinds are
/// interchangeable wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NullKind {
    /// `±` — null present in the input data.
    Missing,
    /// `⊥` — null created during integration.
    Produced,
}

/// A dynamically typed cell value.
///
/// Equality is *content equality*: any null equals any other null (regardless
/// of [`NullKind`]), floats compare by total order with `NaN == NaN`, and
/// values of different non-null types are never equal. This is exactly the
/// notion of "same content" used when full disjunction deduplicates its
/// output (paper Fig. 8(b), where `{t16}` and the merge of `{t12, t16}` are
/// the same tuple).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// A null; see [`NullKind`].
    Null(NullKind),
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// A null that was present in the source data (`±`).
    pub const fn null_missing() -> Self {
        Value::Null(NullKind::Missing)
    }

    /// A null produced by integration (`⊥`).
    pub const fn null_produced() -> Self {
        Value::Null(NullKind::Produced)
    }

    /// Returns `true` for either flavour of null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Numeric view: `Int` and `Float` coerce to `f64`; everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Text view (only for `Text` values).
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Integer view (only for `Int` values).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view (only for `Bool` values).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A short tag naming the value's type, used in error messages and stats.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null(_) => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Text(_) => "text",
        }
    }

    /// Canonical token for set-based similarity: lower-cased trimmed text,
    /// numbers rendered canonically, nulls yield `None` (nulls never
    /// contribute to value overlap, per the join semantics of the paper).
    pub fn overlap_token(&self) -> Option<String> {
        match self {
            Value::Null(_) => None,
            Value::Bool(b) => Some(b.to_string()),
            Value::Int(i) => Some(i.to_string()),
            Value::Float(f) => Some(canonical_float(*f)),
            Value::Text(s) => {
                let t = s.trim();
                if t.is_empty() {
                    None
                } else {
                    Some(t.to_lowercase())
                }
            }
        }
    }

    /// Parse a raw text field (e.g. from CSV) into the most specific value.
    ///
    /// Empty strings and the conventional null spellings (`null`, `na`,
    /// `n/a`, `nan`, `±`) become *missing* nulls; `⊥` becomes a *produced*
    /// null (so integrated tables survive a CSV round-trip).
    pub fn parse_str(raw: &str) -> Value {
        let s = raw.trim();
        if s.is_empty() {
            return Value::null_missing();
        }
        match s.to_ascii_lowercase().as_str() {
            "null" | "na" | "n/a" | "nan" | "none" | "±" => return Value::null_missing(),
            "⊥" => return Value::null_produced(),
            "true" => return Value::Bool(true),
            "false" => return Value::Bool(false),
            _ => {}
        }
        if s == "±" {
            return Value::null_missing();
        }
        if s == "⊥" {
            return Value::null_produced();
        }
        if let Ok(i) = s.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = s.parse::<f64>() {
            return Value::Float(f);
        }
        Value::Text(s.to_string())
    }

    /// Content equality treating *any* null as equal to any other null.
    /// This is the same relation as `==`; the alias exists to make call
    /// sites in the integration engines self-documenting.
    #[inline]
    pub fn content_eq(&self, other: &Value) -> bool {
        self == other
    }

    /// Equality for *join purposes*: nulls never join with anything,
    /// including other nulls (null-rejecting equality, paper §3.2).
    #[inline]
    pub fn join_eq(&self, other: &Value) -> bool {
        !self.is_null() && !other.is_null() && self == other
    }
}

fn canonical_float(f: f64) -> String {
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{}", f as i64)
    } else {
        format!("{f}")
    }
}

/// Normalized bit pattern for float hashing/equality: all NaNs collapse to
/// one pattern and `-0.0` collapses to `0.0`.
fn float_bits(f: f64) -> u64 {
    if f.is_nan() {
        f64::NAN.to_bits()
    } else if f == 0.0 {
        0u64
    } else {
        f.to_bits()
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null(_), Value::Null(_)) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => float_bits(*a) == float_bits(*b),
            (Value::Text(a), Value::Text(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null(_) => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                3u8.hash(state);
                float_bits(*f).hash(state);
            }
            Value::Text(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used for deterministic output: nulls sort first, then
    /// bools, ints, floats (by `total_cmp`), then text lexicographically.
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null(_) => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 3,
                Value::Text(_) => 4,
            }
        }
        match (self, other) {
            (Value::Null(_), Value::Null(_)) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null(NullKind::Missing) => write!(f, "±"),
            Value::Null(NullKind::Produced) => write!(f, "⊥"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            // `{:?}` keeps a decimal point on integral floats ("2.0"), so a
            // displayed float never reparses as an integer.
            Value::Float(x) => write!(f, "{x:?}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Float(f64::from(f))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<NullKind> for Value {
    fn from(k: NullKind) -> Self {
        Value::Null(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn nulls_of_both_kinds_are_content_equal() {
        assert_eq!(Value::null_missing(), Value::null_produced());
        assert_eq!(
            hash_of(&Value::null_missing()),
            hash_of(&Value::null_produced())
        );
    }

    #[test]
    fn nulls_never_join() {
        assert!(!Value::null_missing().join_eq(&Value::null_missing()));
        assert!(!Value::null_missing().join_eq(&Value::Int(1)));
        assert!(!Value::Int(1).join_eq(&Value::null_produced()));
        assert!(Value::Int(1).join_eq(&Value::Int(1)));
    }

    #[test]
    fn cross_type_values_are_not_equal() {
        assert_ne!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Text("3".into()), Value::Int(3));
        assert_ne!(Value::Bool(true), Value::Int(1));
    }

    #[test]
    fn float_equality_is_total() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(
            hash_of(&Value::Float(f64::NAN)),
            hash_of(&Value::Float(-f64::NAN))
        );
    }

    #[test]
    fn parse_recognizes_null_spellings() {
        for s in ["", "  ", "null", "NA", "n/a", "NaN", "none", "±"] {
            assert_eq!(Value::parse_str(s), Value::null_missing(), "input {s:?}");
        }
        assert!(matches!(
            Value::parse_str("⊥"),
            Value::Null(NullKind::Produced)
        ));
    }

    #[test]
    fn parse_infers_types() {
        assert_eq!(Value::parse_str("42"), Value::Int(42));
        assert_eq!(Value::parse_str("-17"), Value::Int(-17));
        assert_eq!(Value::parse_str("3.5"), Value::Float(3.5));
        assert_eq!(Value::parse_str("1e3"), Value::Float(1000.0));
        assert_eq!(Value::parse_str("true"), Value::Bool(true));
        assert_eq!(Value::parse_str("FALSE"), Value::Bool(false));
        assert_eq!(Value::parse_str(" Berlin "), Value::Text("Berlin".into()));
    }

    #[test]
    fn display_round_trips_through_parse() {
        for v in [
            Value::Int(7),
            Value::Float(2.5),
            Value::Bool(true),
            Value::Text("Boston".into()),
            Value::null_missing(),
            Value::null_produced(),
        ] {
            let shown = v.to_string();
            let reparsed = Value::parse_str(&shown);
            assert_eq!(v, reparsed, "value {v:?} via {shown:?}");
        }
    }

    #[test]
    fn display_uses_paper_null_glyphs() {
        assert_eq!(Value::null_missing().to_string(), "±");
        assert_eq!(Value::null_produced().to_string(), "⊥");
    }

    #[test]
    fn ordering_is_total_and_ranks_types() {
        let mut vals = [
            Value::Text("a".into()),
            Value::Int(1),
            Value::null_produced(),
            Value::Float(0.5),
            Value::Bool(false),
        ];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(false));
        assert_eq!(vals[2], Value::Int(1));
        assert_eq!(vals[3], Value::Float(0.5));
        assert_eq!(vals[4], Value::Text("a".into()));
    }

    #[test]
    fn overlap_token_normalizes() {
        assert_eq!(
            Value::Text(" Berlin ".into()).overlap_token().unwrap(),
            "berlin"
        );
        assert_eq!(Value::Int(5).overlap_token().unwrap(), "5");
        assert_eq!(Value::Float(5.0).overlap_token().unwrap(), "5");
        assert_eq!(Value::Float(5.5).overlap_token().unwrap(), "5.5");
        assert!(Value::null_missing().overlap_token().is_none());
        assert!(Value::Text("   ".into()).overlap_token().is_none());
    }

    #[test]
    fn as_f64_coerces_ints() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
        assert_eq!(Value::null_missing().as_f64(), None);
    }

    #[test]
    fn from_impls_cover_common_literals() {
        assert_eq!(Value::from("x"), Value::Text("x".into()));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(0.5f64), Value::Float(0.5));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
