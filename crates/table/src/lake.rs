//! The mutable, versioned data lake.
//!
//! Open-data lakes churn: tables are published, corrected and withdrawn
//! daily, while discovery indexes want to stay warm across queries. The
//! lake therefore exposes a *versioned mutation API* — every
//! [`DataLake::add_table`] / [`DataLake::replace_table`] /
//! [`DataLake::remove_table`] bumps a globally monotone [`DataLake::version`]
//! stamp and appends a [`LakeEvent`] to a bounded changelog — so index
//! structures (see `dialite_discovery::LakeIndex`) can catch up with
//! `O(changed tables)` work via [`DataLake::events_since`] instead of
//! rebuilding from scratch.
//!
//! Tables live in *slots*: a table's slot index (`u32`) is stable for its
//! whole lifetime, which lets indexes key per-table state structurally
//! instead of by (reallocating) name strings. Freed slots are reused, and
//! the changelog's ordering makes reuse unambiguous to consumers.

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::csv::{read_csv_str, CsvOptions};
use crate::error::TableError;
use crate::table::Table;

/// Source of globally unique, monotone version stamps. Shared by every
/// lake in the process so that clones which diverge can never reuse each
/// other's stamps: equal versions imply an identical mutation history.
static STAMP: AtomicU64 = AtomicU64::new(1);

fn next_stamp() -> u64 {
    STAMP.fetch_add(1, Ordering::Relaxed)
}

/// Number of changelog entries a lake retains. Consumers further behind
/// than this get `None` from [`DataLake::events_since`] and must rebuild.
const MAX_LOG: usize = 4096;

/// One entry of the lake changelog. The slot index identifies *where*
/// something changed; consumers read the slot's current content (which may
/// reflect later events too — applying the log in order converges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LakeEvent {
    /// A table was registered into the slot.
    Added(u32),
    /// The table occupying the slot was removed.
    Removed(u32),
    /// The table occupying the slot was replaced in place (same name).
    Replaced(u32),
}

impl LakeEvent {
    /// The slot index the event concerns.
    pub fn slot(&self) -> u32 {
        match *self {
            LakeEvent::Added(i) | LakeEvent::Removed(i) | LakeEvent::Replaced(i) => i,
        }
    }
}

/// An in-memory data lake: the table repository `D` that discovery searches
/// over (paper §2.1), mutable and versioned.
///
/// Tables are shared via `Arc` so that discovery indexes, pipelines and
/// benchmarks can hold references without copying data. Name lookup is an
/// O(1) hash probe through the name→slot map.
#[derive(Debug, Clone, Default)]
pub struct DataLake {
    /// Slot-indexed storage; `None` marks a freed slot awaiting reuse.
    slots: Vec<Option<Arc<Table>>>,
    /// O(1) name → slot index.
    by_name: HashMap<String, u32>,
    /// Freed slot indices, reused LIFO.
    free: Vec<u32>,
    /// Version stamp of the latest mutation (0 for a never-mutated lake).
    version: u64,
    /// Bounded changelog of `(version stamp, event)`.
    log: VecDeque<(u64, LakeEvent)>,
    /// Stamp of the newest *discarded* log entry; consumers synced before
    /// this point have a gap and must rebuild.
    log_floor: u64,
}

impl DataLake {
    /// An empty lake.
    pub fn new() -> DataLake {
        DataLake::default()
    }

    /// Build a lake from an iterator of tables; duplicate names fail.
    pub fn from_tables(tables: impl IntoIterator<Item = Table>) -> Result<DataLake, TableError> {
        let mut lake = DataLake::new();
        for t in tables {
            lake.add_table(t)?;
        }
        Ok(lake)
    }

    fn record(&mut self, event: LakeEvent) {
        self.version = next_stamp();
        if self.log.len() == MAX_LOG {
            if let Some((stamp, _)) = self.log.pop_front() {
                self.log_floor = stamp;
            }
        }
        self.log.push_back((self.version, event));
    }

    fn claim_slot(&mut self, table: Arc<Table>) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Some(table);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("lake slot space");
                self.slots.push(Some(table));
                idx
            }
        }
    }

    /// Register a table, returning its stable slot index; fails if a table
    /// with the same name exists.
    pub fn add_table(&mut self, table: Table) -> Result<u32, TableError> {
        let name = table.name().to_string();
        if self.by_name.contains_key(&name) {
            return Err(TableError::DuplicateTable { table: name });
        }
        let idx = self.claim_slot(Arc::new(table));
        self.by_name.insert(name, idx);
        self.record(LakeEvent::Added(idx));
        Ok(idx)
    }

    /// Register or replace a table, returning its slot index. A replaced
    /// table keeps its slot, so indexes see it as an in-place update.
    pub fn replace_table(&mut self, table: Table) -> u32 {
        match self.by_name.get(table.name()).copied() {
            Some(idx) => {
                self.slots[idx as usize] = Some(Arc::new(table));
                self.record(LakeEvent::Replaced(idx));
                idx
            }
            None => {
                let name = table.name().to_string();
                let idx = self.claim_slot(Arc::new(table));
                self.by_name.insert(name, idx);
                self.record(LakeEvent::Added(idx));
                idx
            }
        }
    }

    /// Remove a table by name, returning its slot index and the table.
    pub fn remove_table(&mut self, name: &str) -> Option<(u32, Arc<Table>)> {
        let idx = self.by_name.remove(name)?;
        let table = self.slots[idx as usize]
            .take()
            .expect("mapped slot is live");
        self.free.push(idx);
        self.record(LakeEvent::Removed(idx));
        Some((idx, table))
    }

    /// Register a table; fails if a table with the same name exists.
    pub fn add(&mut self, table: Table) -> Result<(), TableError> {
        self.add_table(table).map(|_| ())
    }

    /// Register or replace a table.
    pub fn upsert(&mut self, table: Table) {
        self.replace_table(table);
    }

    /// Remove a table, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Arc<Table>> {
        self.remove_table(name).map(|(_, t)| t)
    }

    /// Version stamp of the latest mutation. Stamps are globally unique and
    /// monotone across all lakes in the process: an index synced at version
    /// `v` is current iff the lake still reports `v`.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// `true` iff `version` is a state *this lake's own history* produced:
    /// its current version, a stamp still in (or just truncated off) its
    /// changelog, or the pristine state while the full log is retained.
    /// Stamps are globally unique, so a clone that diverged after a fork
    /// can never pass this check with the other lineage's stamps — the
    /// guard that keeps [`DataLake::events_since`] from serving another
    /// lineage a plausible-looking but wrong delta.
    fn has_version(&self, version: u64) -> bool {
        if version == self.version || version == self.log_floor {
            return true;
        }
        if version == 0 {
            // Replaying from scratch is valid while nothing was truncated.
            return self.log_floor == 0;
        }
        // Log stamps are ascending; binary-search for an exact hit.
        self.log
            .binary_search_by(|(stamp, _)| stamp.cmp(&version))
            .is_ok()
    }

    /// The changelog entries strictly newer than `version`, oldest first.
    /// Returns `None` when the delta cannot be served: the span has been
    /// truncated away, or `version` was never a state of this lake (a
    /// diverged clone's stamp, or a stamp from the future) — consumers
    /// must rebuild in either case.
    pub fn events_since(&self, version: u64) -> Option<Vec<(u64, LakeEvent)>> {
        if !self.has_version(version) {
            return None;
        }
        Some(
            self.log
                .iter()
                .filter(|(stamp, _)| *stamp > version)
                .copied()
                .collect(),
        )
    }

    /// Slot index of a table, by name — an O(1) probe.
    pub fn table_idx(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The table occupying a slot, if any.
    pub fn table_at(&self, idx: u32) -> Option<&Arc<Table>> {
        self.slots.get(idx as usize)?.as_ref()
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        self.table_at(self.table_idx(name)?).cloned()
    }

    /// Look up a table or fail with [`TableError::UnknownTable`].
    pub fn require(&self, name: &str) -> Result<Arc<Table>, TableError> {
        self.get(name).ok_or_else(|| TableError::UnknownTable {
            table: name.to_string(),
        })
    }

    /// Table names in deterministic (sorted) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        let mut names: Vec<&str> = self.by_name.keys().map(String::as_str).collect();
        names.sort_unstable();
        names.into_iter()
    }

    /// All tables in deterministic (name-sorted) order.
    pub fn tables(&self) -> impl Iterator<Item = &Arc<Table>> {
        self.entries().map(|(_, t)| t)
    }

    /// All `(slot index, table)` pairs in deterministic (name-sorted) order.
    pub fn entries(&self) -> impl Iterator<Item = (u32, &Arc<Table>)> {
        let mut entries: Vec<(u32, &Arc<Table>)> = self
            .by_name
            .values()
            .map(|&idx| (idx, self.slots[idx as usize].as_ref().expect("live slot")))
            .collect();
        entries.sort_unstable_by(|a, b| a.1.name().cmp(b.1.name()));
        entries.into_iter()
    }

    /// The `(slot index, table)` pairs owned by one slot-striped shard, in
    /// deterministic (name-sorted) order.
    ///
    /// Routing is a pure function of the slot: shard `shard` of `of` owns
    /// exactly the slots with `slot % of == shard`. Because slots are
    /// stable for a table's whole residency (and [`LakeEvent::Removed`]
    /// carries only the slot), the same rule routes both live entries and
    /// changelog events, so a per-shard index can replay
    /// [`events_since`](DataLake::events_since) filtered to its own stripe.
    /// The stripes partition [`entries`](DataLake::entries) exactly:
    /// every entry appears in precisely one stripe, and `of == 1` yields
    /// all of them.
    ///
    /// # Panics
    ///
    /// Panics if `of == 0` or `shard >= of`.
    pub fn entries_routed(&self, shard: u32, of: u32) -> impl Iterator<Item = (u32, &Arc<Table>)> {
        assert!(of > 0, "shard count must be at least 1");
        assert!(shard < of, "shard {shard} out of range for {of} shards");
        self.entries().filter(move |(slot, _)| slot % of == shard)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// `true` when the lake holds no tables.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables().map(|t| t.row_count()).sum()
    }

    /// Load every `*.csv` file in a directory as a table named after the
    /// file stem. Non-CSV files are ignored; subdirectories are not
    /// descended into.
    pub fn load_dir(&mut self, dir: &Path) -> Result<usize, TableError> {
        let entries = std::fs::read_dir(dir).map_err(|e| TableError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let mut loaded = 0usize;
        let mut paths: Vec<_> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| TableError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("csv") {
                paths.push(path);
            }
        }
        paths.sort();
        for path in paths {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("table")
                .to_string();
            let text = std::fs::read_to_string(&path).map_err(|e| TableError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            let table = read_csv_str(&name, &text, &CsvOptions::default())?;
            self.add(table)?;
            loaded += 1;
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table;

    #[test]
    fn add_and_get() {
        let mut lake = DataLake::new();
        lake.add(table! { "a"; ["x"]; [1] }).unwrap();
        assert_eq!(lake.len(), 1);
        assert_eq!(lake.get("a").unwrap().row_count(), 1);
        assert!(lake.get("b").is_none());
    }

    #[test]
    fn duplicate_add_fails_but_upsert_replaces() {
        let mut lake = DataLake::new();
        lake.add(table! { "a"; ["x"]; [1] }).unwrap();
        assert!(matches!(
            lake.add(table! { "a"; ["x"]; [2] }),
            Err(TableError::DuplicateTable { .. })
        ));
        lake.upsert(table! { "a"; ["x"]; [2], [3] });
        assert_eq!(lake.get("a").unwrap().row_count(), 2);
    }

    #[test]
    fn duplicate_name_reports_table_and_leaves_lake_unchanged() {
        let mut lake = DataLake::new();
        let idx = lake.add_table(table! { "dup"; ["x"]; [1] }).unwrap();
        let err = lake.add_table(table! { "dup"; ["y"]; [9] }).unwrap_err();
        assert_eq!(
            err,
            TableError::DuplicateTable {
                table: "dup".into()
            }
        );
        // The original survives untouched, under the same slot.
        assert_eq!(lake.table_idx("dup"), Some(idx));
        assert_eq!(lake.get("dup").unwrap().column_index("x"), Some(0));
        assert_eq!(lake.len(), 1);
    }

    #[test]
    fn require_reports_unknown() {
        let lake = DataLake::new();
        assert!(matches!(
            lake.require("missing"),
            Err(TableError::UnknownTable { .. })
        ));
    }

    #[test]
    fn names_are_sorted() {
        let mut lake = DataLake::new();
        lake.add(table! { "zeta"; ["x"]; [1] }).unwrap();
        lake.add(table! { "alpha"; ["x"]; [1] }).unwrap();
        let names: Vec<_> = lake.names().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn totals() {
        let mut lake = DataLake::new();
        lake.add(table! { "a"; ["x"]; [1], [2] }).unwrap();
        lake.add(table! { "b"; ["x"]; [3] }).unwrap();
        assert_eq!(lake.total_rows(), 3);
        assert!(!lake.is_empty());
    }

    #[test]
    fn version_is_monotone_and_bumped_by_every_mutation() {
        let mut lake = DataLake::new();
        assert_eq!(lake.version(), 0);
        lake.add(table! { "a"; ["x"]; [1] }).unwrap();
        let v1 = lake.version();
        assert!(v1 > 0);
        lake.upsert(table! { "a"; ["x"]; [2] });
        let v2 = lake.version();
        assert!(v2 > v1);
        lake.remove("a").unwrap();
        assert!(lake.version() > v2);
        // Reads do not bump the version.
        let v = lake.version();
        let _ = lake.get("a");
        let _: Vec<_> = lake.names().collect();
        assert_eq!(lake.version(), v);
    }

    #[test]
    fn versions_are_unique_across_lakes() {
        let mut a = DataLake::new();
        let mut b = DataLake::new();
        a.add(table! { "t"; ["x"]; [1] }).unwrap();
        b.add(table! { "t"; ["x"]; [1] }).unwrap();
        assert_ne!(a.version(), b.version());
    }

    #[test]
    fn slots_are_stable_and_reused_after_removal() {
        let mut lake = DataLake::new();
        let a = lake.add_table(table! { "a"; ["x"]; [1] }).unwrap();
        let b = lake.add_table(table! { "b"; ["x"]; [1] }).unwrap();
        assert_ne!(a, b);
        // Replacing keeps the slot.
        assert_eq!(lake.replace_table(table! { "a"; ["x"]; [2] }), a);
        // Removing frees the slot; the next add reuses it.
        let (removed_idx, t) = lake.remove_table("a").unwrap();
        assert_eq!(removed_idx, a);
        assert_eq!(t.name(), "a");
        assert!(lake.table_at(a).is_none());
        let c = lake.add_table(table! { "c"; ["x"]; [3] }).unwrap();
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(lake.table_at(c).unwrap().name(), "c");
        assert_eq!(lake.table_idx("c"), Some(c));
    }

    #[test]
    fn events_since_replays_the_churn() {
        let mut lake = DataLake::new();
        let v0 = lake.version();
        let a = lake.add_table(table! { "a"; ["x"]; [1] }).unwrap();
        let b = lake.add_table(table! { "b"; ["x"]; [1] }).unwrap();
        let mid = lake.version();
        lake.replace_table(table! { "b"; ["x"]; [2] });
        lake.remove_table("a").unwrap();
        let events: Vec<LakeEvent> = lake
            .events_since(v0)
            .unwrap()
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        assert_eq!(
            events,
            vec![
                LakeEvent::Added(a),
                LakeEvent::Added(b),
                LakeEvent::Replaced(b),
                LakeEvent::Removed(a),
            ]
        );
        // A consumer synced mid-way only sees the tail.
        let tail = lake.events_since(mid).unwrap();
        assert_eq!(tail.len(), 2);
        // A fully synced consumer sees nothing.
        assert!(lake.events_since(lake.version()).unwrap().is_empty());
    }

    #[test]
    fn events_since_rejects_stamps_from_another_lineage() {
        let mut a = DataLake::new();
        a.add(table! { "t"; ["x"]; [1] }).unwrap();
        let fork = a.version();
        let mut b = a.clone();
        a.upsert(table! { "t"; ["x"]; [2] }); // a-only stamp
        b.upsert(table! { "t"; ["x"]; [3] }); // b-only stamp
                                              // Each lineage serves its own history…
        assert!(a.events_since(fork).is_some());
        assert!(b.events_since(fork).is_some());
        assert!(a.events_since(a.version()).unwrap().is_empty());
        // …but refuses the other's post-fork stamp, in both directions,
        // regardless of which stamp is numerically newer.
        assert!(b.events_since(a.version()).is_none());
        assert!(a.events_since(b.version()).is_none());
        // Replaying from scratch stays valid while nothing was truncated.
        assert_eq!(b.events_since(0).unwrap().len(), 2);
    }

    #[test]
    fn event_log_truncation_reports_a_gap() {
        let mut lake = DataLake::new();
        let v0 = lake.version();
        lake.add(table! { "t"; ["x"]; [1] }).unwrap();
        let v1 = lake.version();
        for i in 0..MAX_LOG {
            lake.upsert(table! { "t"; ["x"]; [i as i64] });
        }
        // v1's successor events still fit exactly; v0 has fallen off.
        assert!(lake.events_since(v0).is_none(), "truncated span");
        assert_eq!(lake.events_since(v1).unwrap().len(), MAX_LOG);
    }

    #[test]
    fn entries_pair_sorted_names_with_slots() {
        let mut lake = DataLake::new();
        let z = lake.add_table(table! { "z"; ["x"]; [1] }).unwrap();
        let a = lake.add_table(table! { "a"; ["x"]; [1] }).unwrap();
        let got: Vec<(u32, &str)> = lake.entries().map(|(i, t)| (i, t.name())).collect();
        assert_eq!(got, vec![(a, "a"), (z, "z")]);
    }

    #[test]
    fn entries_routed_partitions_entries_exactly() {
        let mut lake = DataLake::new();
        for i in 0..9 {
            lake.add(table! { &format!("t{i}"); ["x"]; [1] }).unwrap();
        }
        lake.remove("t3").unwrap(); // leave a hole in the slot space
        for of in [1u32, 2, 3, 4] {
            let mut striped: Vec<(u32, &str)> = Vec::new();
            for shard in 0..of {
                for (slot, t) in lake.entries_routed(shard, of) {
                    assert_eq!(slot % of, shard, "entry routed to the wrong stripe");
                    striped.push((slot, t.name()));
                }
            }
            striped.sort_unstable();
            let mut all: Vec<(u32, &str)> =
                lake.entries().map(|(slot, t)| (slot, t.name())).collect();
            all.sort_unstable();
            assert_eq!(striped, all, "stripes must partition entries for of={of}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn entries_routed_rejects_out_of_range_shard() {
        let lake = DataLake::new();
        let _ = lake.entries_routed(2, 2).count();
    }

    #[test]
    fn load_dir_reads_csvs() {
        let dir = std::env::temp_dir().join(format!("dialite_lake_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("one.csv"), "a,b\n1,2\n").unwrap();
        std::fs::write(dir.join("two.csv"), "c\nx\n").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a table").unwrap();
        let mut lake = DataLake::new();
        let n = lake.load_dir(&dir).unwrap();
        assert_eq!(n, 2);
        assert!(lake.get("one").is_some());
        assert!(lake.get("two").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
