use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use crate::csv::{read_csv_str, CsvOptions};
use crate::error::TableError;
use crate::table::Table;

/// An in-memory data lake: the table repository `D` that discovery searches
/// over (paper §2.1).
///
/// Tables are keyed by name and shared via `Arc` so that discovery indexes,
/// pipelines and benchmarks can hold references without copying data.
#[derive(Debug, Clone, Default)]
pub struct DataLake {
    tables: BTreeMap<String, Arc<Table>>,
}

impl DataLake {
    /// An empty lake.
    pub fn new() -> DataLake {
        DataLake::default()
    }

    /// Build a lake from an iterator of tables; duplicate names fail.
    pub fn from_tables(tables: impl IntoIterator<Item = Table>) -> Result<DataLake, TableError> {
        let mut lake = DataLake::new();
        for t in tables {
            lake.add(t)?;
        }
        Ok(lake)
    }

    /// Register a table; fails if a table with the same name exists.
    pub fn add(&mut self, table: Table) -> Result<(), TableError> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(TableError::DuplicateTable { table: name });
        }
        self.tables.insert(name, Arc::new(table));
        Ok(())
    }

    /// Register or replace a table.
    pub fn upsert(&mut self, table: Table) {
        self.tables
            .insert(table.name().to_string(), Arc::new(table));
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.get(name).cloned()
    }

    /// Look up a table or fail with [`TableError::UnknownTable`].
    pub fn require(&self, name: &str) -> Result<Arc<Table>, TableError> {
        self.get(name).ok_or_else(|| TableError::UnknownTable {
            table: name.to_string(),
        })
    }

    /// Remove a table, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Arc<Table>> {
        self.tables.remove(name)
    }

    /// Table names in deterministic (sorted) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// All tables in deterministic (name-sorted) order.
    pub fn tables(&self) -> impl Iterator<Item = &Arc<Table>> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when the lake holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.row_count()).sum()
    }

    /// Load every `*.csv` file in a directory as a table named after the
    /// file stem. Non-CSV files are ignored; subdirectories are not
    /// descended into.
    pub fn load_dir(&mut self, dir: &Path) -> Result<usize, TableError> {
        let entries = std::fs::read_dir(dir).map_err(|e| TableError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let mut loaded = 0usize;
        let mut paths: Vec<_> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| TableError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("csv") {
                paths.push(path);
            }
        }
        paths.sort();
        for path in paths {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("table")
                .to_string();
            let text = std::fs::read_to_string(&path).map_err(|e| TableError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            let table = read_csv_str(&name, &text, &CsvOptions::default())?;
            self.add(table)?;
            loaded += 1;
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table;

    #[test]
    fn add_and_get() {
        let mut lake = DataLake::new();
        lake.add(table! { "a"; ["x"]; [1] }).unwrap();
        assert_eq!(lake.len(), 1);
        assert_eq!(lake.get("a").unwrap().row_count(), 1);
        assert!(lake.get("b").is_none());
    }

    #[test]
    fn duplicate_add_fails_but_upsert_replaces() {
        let mut lake = DataLake::new();
        lake.add(table! { "a"; ["x"]; [1] }).unwrap();
        assert!(lake.add(table! { "a"; ["x"]; [2] }).is_err());
        lake.upsert(table! { "a"; ["x"]; [2], [3] });
        assert_eq!(lake.get("a").unwrap().row_count(), 2);
    }

    #[test]
    fn require_reports_unknown() {
        let lake = DataLake::new();
        assert!(matches!(
            lake.require("missing"),
            Err(TableError::UnknownTable { .. })
        ));
    }

    #[test]
    fn names_are_sorted() {
        let mut lake = DataLake::new();
        lake.add(table! { "zeta"; ["x"]; [1] }).unwrap();
        lake.add(table! { "alpha"; ["x"]; [1] }).unwrap();
        let names: Vec<_> = lake.names().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn totals() {
        let mut lake = DataLake::new();
        lake.add(table! { "a"; ["x"]; [1], [2] }).unwrap();
        lake.add(table! { "b"; ["x"]; [3] }).unwrap();
        assert_eq!(lake.total_rows(), 3);
        assert!(!lake.is_empty());
    }

    #[test]
    fn load_dir_reads_csvs() {
        let dir = std::env::temp_dir().join(format!("dialite_lake_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("one.csv"), "a,b\n1,2\n").unwrap();
        std::fs::write(dir.join("two.csv"), "c\nx\n").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a table").unwrap();
        let mut lake = DataLake::new();
        let n = lake.load_dir(&dir).unwrap();
        assert_eq!(n, 2);
        assert!(lake.get("one").is_some());
        assert!(lake.get("two").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
