//! The mutable, versioned data lake.
//!
//! Open-data lakes churn: tables are published, corrected and withdrawn
//! daily, while discovery indexes want to stay warm across queries. The
//! lake therefore exposes a *versioned mutation API* — every
//! [`DataLake::add_table`] / [`DataLake::replace_table`] /
//! [`DataLake::remove_table`] bumps a globally monotone [`DataLake::version`]
//! stamp and appends a [`LakeEvent`] to a bounded changelog — so index
//! structures (see `dialite_discovery::LakeIndex`) can catch up with
//! `O(changed tables)` work via [`DataLake::events_since`] instead of
//! rebuilding from scratch.
//!
//! Tables live in *slots*: a table's slot index (`u32`) is stable for its
//! whole lifetime, which lets indexes key per-table state structurally
//! instead of by (reallocating) name strings. Freed slots are reused, and
//! the changelog's ordering makes reuse unambiguous to consumers.

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::csv::{read_csv_str, CsvOptions};
use crate::error::TableError;
use crate::table::Table;

/// Source of globally unique, monotone version stamps. Shared by every
/// lake in the process so that clones which diverge can never reuse each
/// other's stamps: equal versions imply an identical mutation history.
static STAMP: AtomicU64 = AtomicU64::new(1);

fn next_stamp() -> u64 {
    STAMP.fetch_add(1, Ordering::Relaxed)
}

/// Raise the process-wide stamp source so every stamp minted from now on
/// is strictly greater than `floor` — `max(current, floor + 1)` on the
/// source, monotone and race-safe under concurrent minting.
///
/// The source starts at 1 on every process launch, so any state that
/// outlives the process (a durable snapshot + commitlog) comes back
/// holding stamps the fresh source would mint *again*; equal stamps from
/// different lineages would defeat the [`DataLake::events_since`] lineage
/// guard. Whoever reopens persisted state must call this with the maximum
/// persisted stamp before mutating anything.
pub fn bump_stamp_floor(floor: u64) {
    STAMP.fetch_max(floor.saturating_add(1), Ordering::Relaxed);
}

/// Number of changelog entries a lake retains. Consumers further behind
/// than this get `None` from [`DataLake::events_since`] and must rebuild.
const MAX_LOG: usize = 4096;

/// One entry of the lake changelog. The slot index identifies *where*
/// something changed; consumers read the slot's current content (which may
/// reflect later events too — applying the log in order converges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LakeEvent {
    /// A table was registered into the slot.
    Added(u32),
    /// The table occupying the slot was removed.
    Removed(u32),
    /// The table occupying the slot was replaced in place (same name).
    Replaced(u32),
}

impl LakeEvent {
    /// The slot index the event concerns.
    pub fn slot(&self) -> u32 {
        match *self {
            LakeEvent::Added(i) | LakeEvent::Removed(i) | LakeEvent::Replaced(i) => i,
        }
    }
}

/// An in-memory data lake: the table repository `D` that discovery searches
/// over (paper §2.1), mutable and versioned.
///
/// Tables are shared via `Arc` so that discovery indexes, pipelines and
/// benchmarks can hold references without copying data. Name lookup is an
/// O(1) hash probe through the name→slot map.
#[derive(Debug, Clone, Default)]
pub struct DataLake {
    /// Slot-indexed storage; `None` marks a freed slot awaiting reuse.
    slots: Vec<Option<Arc<Table>>>,
    /// O(1) name → slot index.
    by_name: HashMap<String, u32>,
    /// Freed slot indices, reused LIFO.
    free: Vec<u32>,
    /// Version stamp of the latest mutation (0 for a never-mutated lake).
    version: u64,
    /// Bounded changelog of `(version stamp, event)`.
    log: VecDeque<(u64, LakeEvent)>,
    /// Stamp of the newest *discarded* log entry; consumers synced before
    /// this point have a gap and must rebuild.
    log_floor: u64,
}

impl DataLake {
    /// An empty lake.
    pub fn new() -> DataLake {
        DataLake::default()
    }

    /// Build a lake from an iterator of tables; duplicate names fail.
    pub fn from_tables(tables: impl IntoIterator<Item = Table>) -> Result<DataLake, TableError> {
        let mut lake = DataLake::new();
        for t in tables {
            lake.add_table(t)?;
        }
        Ok(lake)
    }

    fn record(&mut self, event: LakeEvent) {
        self.version = next_stamp();
        if self.log.len() == MAX_LOG {
            if let Some((stamp, _)) = self.log.pop_front() {
                self.log_floor = stamp;
            }
        }
        self.log.push_back((self.version, event));
    }

    fn claim_slot(&mut self, table: Arc<Table>) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Some(table);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("lake slot space");
                self.slots.push(Some(table));
                idx
            }
        }
    }

    /// Register a table, returning its stable slot index; fails if a table
    /// with the same name exists.
    pub fn add_table(&mut self, table: Table) -> Result<u32, TableError> {
        let name = table.name().to_string();
        if self.by_name.contains_key(&name) {
            return Err(TableError::DuplicateTable { table: name });
        }
        let idx = self.claim_slot(Arc::new(table));
        self.by_name.insert(name, idx);
        self.record(LakeEvent::Added(idx));
        Ok(idx)
    }

    /// Register or replace a table, returning its slot index. A replaced
    /// table keeps its slot, so indexes see it as an in-place update.
    pub fn replace_table(&mut self, table: Table) -> u32 {
        match self.by_name.get(table.name()).copied() {
            Some(idx) => {
                self.slots[idx as usize] = Some(Arc::new(table));
                self.record(LakeEvent::Replaced(idx));
                idx
            }
            None => {
                let name = table.name().to_string();
                let idx = self.claim_slot(Arc::new(table));
                self.by_name.insert(name, idx);
                self.record(LakeEvent::Added(idx));
                idx
            }
        }
    }

    /// Remove a table by name, returning its slot index and the table.
    pub fn remove_table(&mut self, name: &str) -> Option<(u32, Arc<Table>)> {
        let idx = self.by_name.remove(name)?;
        let table = self.slots[idx as usize]
            .take()
            .expect("mapped slot is live");
        self.free.push(idx);
        self.record(LakeEvent::Removed(idx));
        Some((idx, table))
    }

    /// Register a table; fails if a table with the same name exists.
    pub fn add(&mut self, table: Table) -> Result<(), TableError> {
        self.add_table(table).map(|_| ())
    }

    /// Register or replace a table.
    pub fn upsert(&mut self, table: Table) {
        self.replace_table(table);
    }

    /// Remove a table, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Arc<Table>> {
        self.remove_table(name).map(|(_, t)| t)
    }

    /// Version stamp of the latest mutation. Stamps are globally unique and
    /// monotone across all lakes in the process: an index synced at version
    /// `v` is current iff the lake still reports `v`.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// `true` iff `version` is a state *this lake's own history* produced:
    /// its current version, a stamp still in (or just truncated off) its
    /// changelog, or the pristine state while the full log is retained.
    /// Stamps are globally unique, so a clone that diverged after a fork
    /// can never pass this check with the other lineage's stamps — the
    /// guard that keeps [`DataLake::events_since`] from serving another
    /// lineage a plausible-looking but wrong delta.
    fn has_version(&self, version: u64) -> bool {
        if version == self.version || version == self.log_floor {
            return true;
        }
        if version == 0 {
            // Replaying from scratch is valid while nothing was truncated.
            return self.log_floor == 0;
        }
        // Log stamps are ascending; binary-search for an exact hit.
        self.log
            .binary_search_by(|(stamp, _)| stamp.cmp(&version))
            .is_ok()
    }

    /// The changelog entries strictly newer than `version`, oldest first.
    /// Returns `None` when the delta cannot be served: the span has been
    /// truncated away, or `version` was never a state of this lake (a
    /// diverged clone's stamp, or a stamp from the future) — consumers
    /// must rebuild in either case.
    pub fn events_since(&self, version: u64) -> Option<Vec<(u64, LakeEvent)>> {
        if !self.has_version(version) {
            return None;
        }
        Some(
            self.log
                .iter()
                .filter(|(stamp, _)| *stamp > version)
                .copied()
                .collect(),
        )
    }

    /// Slot index of a table, by name — an O(1) probe.
    pub fn table_idx(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The table occupying a slot, if any.
    pub fn table_at(&self, idx: u32) -> Option<&Arc<Table>> {
        self.slots.get(idx as usize)?.as_ref()
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        self.table_at(self.table_idx(name)?).cloned()
    }

    /// Look up a table or fail with [`TableError::UnknownTable`].
    pub fn require(&self, name: &str) -> Result<Arc<Table>, TableError> {
        self.get(name).ok_or_else(|| TableError::UnknownTable {
            table: name.to_string(),
        })
    }

    /// Table names in deterministic (sorted) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        let mut names: Vec<&str> = self.by_name.keys().map(String::as_str).collect();
        names.sort_unstable();
        names.into_iter()
    }

    /// All tables in deterministic (name-sorted) order.
    pub fn tables(&self) -> impl Iterator<Item = &Arc<Table>> {
        self.entries().map(|(_, t)| t)
    }

    /// All `(slot index, table)` pairs in deterministic (name-sorted) order.
    pub fn entries(&self) -> impl Iterator<Item = (u32, &Arc<Table>)> {
        let mut entries: Vec<(u32, &Arc<Table>)> = self
            .by_name
            .values()
            .map(|&idx| (idx, self.slots[idx as usize].as_ref().expect("live slot")))
            .collect();
        entries.sort_unstable_by(|a, b| a.1.name().cmp(b.1.name()));
        entries.into_iter()
    }

    /// The `(slot index, table)` pairs owned by one slot-striped shard, in
    /// deterministic (name-sorted) order.
    ///
    /// Routing is a pure function of the slot: shard `shard` of `of` owns
    /// exactly the slots with `slot % of == shard`. Because slots are
    /// stable for a table's whole residency (and [`LakeEvent::Removed`]
    /// carries only the slot), the same rule routes both live entries and
    /// changelog events, so a per-shard index can replay
    /// [`events_since`](DataLake::events_since) filtered to its own stripe.
    /// The stripes partition [`entries`](DataLake::entries) exactly:
    /// every entry appears in precisely one stripe, and `of == 1` yields
    /// all of them.
    ///
    /// # Panics
    ///
    /// Panics if `of == 0` or `shard >= of`.
    pub fn entries_routed(&self, shard: u32, of: u32) -> impl Iterator<Item = (u32, &Arc<Table>)> {
        assert!(of > 0, "shard count must be at least 1");
        assert!(shard < of, "shard {shard} out of range for {of} shards");
        self.entries().filter(move |(slot, _)| slot % of == shard)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// `true` when the lake holds no tables.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables().map(|t| t.row_count()).sum()
    }

    /// Load every `*.csv` file in a directory as a table named after the
    /// file stem. Non-CSV files are ignored; subdirectories are not
    /// descended into.
    pub fn load_dir(&mut self, dir: &Path) -> Result<usize, TableError> {
        let entries = std::fs::read_dir(dir).map_err(|e| TableError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let mut loaded = 0usize;
        let mut paths: Vec<_> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| TableError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("csv") {
                paths.push(path);
            }
        }
        paths.sort();
        for path in paths {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("table")
                .to_string();
            let text = std::fs::read_to_string(&path).map_err(|e| TableError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            let table = read_csv_str(&name, &text, &CsvOptions::default())?;
            self.add(table)?;
            loaded += 1;
        }
        Ok(loaded)
    }

    // --- durability: snapshot restore and commitlog replay -------------
    //
    // These APIs exist for `dialite_durable`: they rebuild a lake from
    // persisted state without minting fresh stamps, so the recovered
    // lake's history is byte-for-byte the persisted one. Stamps re-enter
    // the process from disk here; callers must re-seed the stamp source
    // via [`bump_stamp_floor`] once the maximum persisted stamp is known.

    /// The freed slot indices in reuse order (the last entry is claimed
    /// first). Persisting this order is what lets a restored lake assign
    /// the same slots to future tables as the lake it was snapshotted
    /// from would have.
    pub fn free_slots(&self) -> &[u32] {
        &self.free
    }

    /// Reassemble a lake from persisted snapshot state: the occupied
    /// `(slot, table)` entries, the free list in reuse order, and the
    /// version stamp the snapshot was taken at.
    ///
    /// The restored lake has an empty changelog with its floor at
    /// `version`, exactly like a live lake whose log was fully truncated
    /// at the snapshot point: `events_since(version)` serves the (empty)
    /// delta and every older stamp reports a gap. No stamps are minted.
    pub fn restore(
        entries: Vec<(u32, Arc<Table>)>,
        free: Vec<u32>,
        version: u64,
    ) -> Result<DataLake, TableError> {
        let corrupt = |message: String| TableError::Io {
            path: "<snapshot>".to_string(),
            message,
        };
        let slot_count = entries.len() + free.len();
        let mut slots: Vec<Option<Arc<Table>>> = vec![None; slot_count];
        let mut by_name = HashMap::with_capacity(entries.len());
        for (slot, table) in entries {
            let cell = slots
                .get_mut(slot as usize)
                .ok_or_else(|| corrupt(format!("slot {slot} out of range {slot_count}")))?;
            if cell.is_some() {
                return Err(corrupt(format!("slot {slot} occupied twice")));
            }
            if by_name.insert(table.name().to_string(), slot).is_some() {
                return Err(TableError::DuplicateTable {
                    table: table.name().to_string(),
                });
            }
            *cell = Some(table);
        }
        for &slot in &free {
            match slots.get(slot as usize) {
                None => return Err(corrupt(format!("free slot {slot} out of range"))),
                Some(Some(_)) => {
                    return Err(corrupt(format!("free slot {slot} is occupied")));
                }
                Some(None) => {}
            }
        }
        let mut seen = free.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != free.len() {
            return Err(corrupt("free list repeats a slot".to_string()));
        }
        Ok(DataLake {
            slots,
            by_name,
            free,
            version,
            log: VecDeque::new(),
            log_floor: version,
        })
    }

    /// Apply one persisted changelog record — `(stamp, event)` plus the
    /// table payload logged for [`LakeEvent::Added`]/[`LakeEvent::Replaced`]
    /// — without minting a stamp: the lake's version becomes `stamp` and
    /// the record joins the bounded changelog verbatim, so a consumer
    /// synced at the snapshot version replays the recovered lake exactly
    /// like a live one.
    ///
    /// Payloads carry the slot's content *at append time*, which (as with
    /// `sync` consumers of [`DataLake::events_since`]) may already reflect
    /// later events in the same batch; applying the records in order
    /// converges on the exact persisted state. A missing payload means the
    /// slot had already been emptied again when the record was appended.
    ///
    /// Stamps must ascend strictly; a non-monotone record is rejected as
    /// corrupt so a mangled log can never smuggle in a fork.
    pub fn apply_replayed(
        &mut self,
        stamp: u64,
        event: LakeEvent,
        table: Option<Arc<Table>>,
    ) -> Result<(), TableError> {
        let corrupt = |message: String| TableError::Io {
            path: "<commitlog>".to_string(),
            message,
        };
        if stamp <= self.version {
            return Err(corrupt(format!(
                "stamp {stamp} does not ascend past version {}",
                self.version
            )));
        }
        let slot = event.slot();
        while self.slots.len() <= slot as usize {
            self.slots.push(None);
        }
        // Mirror the live mutation's slot bookkeeping, then converge the
        // content to the payload — the same rule `LakeIndex::sync` uses.
        if matches!(event, LakeEvent::Added(_) | LakeEvent::Replaced(_)) {
            // A (re)occupied slot is never on the free list.
            if let Some(pos) = self.free.iter().position(|&f| f == slot) {
                self.free.remove(pos);
            }
        }
        if let Some(old) = self.slots[slot as usize].take() {
            self.by_name.remove(old.name());
        }
        match (&event, table) {
            (LakeEvent::Added(_) | LakeEvent::Replaced(_), Some(table)) => {
                if let Some(&other) = self.by_name.get(table.name()) {
                    if other != slot {
                        return Err(corrupt(format!(
                            "table '{}' claimed by slots {other} and {slot}",
                            table.name()
                        )));
                    }
                }
                self.by_name.insert(table.name().to_string(), slot);
                self.slots[slot as usize] = Some(table);
            }
            _ => {
                // Removal, or an Added/Replaced whose slot was emptied
                // again before the record was appended. The matching
                // Removed record handles the free-list push.
                if matches!(event, LakeEvent::Removed(_)) && !self.free.contains(&slot) {
                    self.free.push(slot);
                }
            }
        }
        self.version = stamp;
        if self.log.len() == MAX_LOG {
            if let Some((floor, _)) = self.log.pop_front() {
                self.log_floor = floor;
            }
        }
        self.log.push_back((stamp, event));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table;
    use crate::value::Value;

    #[test]
    fn add_and_get() {
        let mut lake = DataLake::new();
        lake.add(table! { "a"; ["x"]; [1] }).unwrap();
        assert_eq!(lake.len(), 1);
        assert_eq!(lake.get("a").unwrap().row_count(), 1);
        assert!(lake.get("b").is_none());
    }

    #[test]
    fn duplicate_add_fails_but_upsert_replaces() {
        let mut lake = DataLake::new();
        lake.add(table! { "a"; ["x"]; [1] }).unwrap();
        assert!(matches!(
            lake.add(table! { "a"; ["x"]; [2] }),
            Err(TableError::DuplicateTable { .. })
        ));
        lake.upsert(table! { "a"; ["x"]; [2], [3] });
        assert_eq!(lake.get("a").unwrap().row_count(), 2);
    }

    #[test]
    fn duplicate_name_reports_table_and_leaves_lake_unchanged() {
        let mut lake = DataLake::new();
        let idx = lake.add_table(table! { "dup"; ["x"]; [1] }).unwrap();
        let err = lake.add_table(table! { "dup"; ["y"]; [9] }).unwrap_err();
        assert_eq!(
            err,
            TableError::DuplicateTable {
                table: "dup".into()
            }
        );
        // The original survives untouched, under the same slot.
        assert_eq!(lake.table_idx("dup"), Some(idx));
        assert_eq!(lake.get("dup").unwrap().column_index("x"), Some(0));
        assert_eq!(lake.len(), 1);
    }

    #[test]
    fn require_reports_unknown() {
        let lake = DataLake::new();
        assert!(matches!(
            lake.require("missing"),
            Err(TableError::UnknownTable { .. })
        ));
    }

    #[test]
    fn names_are_sorted() {
        let mut lake = DataLake::new();
        lake.add(table! { "zeta"; ["x"]; [1] }).unwrap();
        lake.add(table! { "alpha"; ["x"]; [1] }).unwrap();
        let names: Vec<_> = lake.names().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn totals() {
        let mut lake = DataLake::new();
        lake.add(table! { "a"; ["x"]; [1], [2] }).unwrap();
        lake.add(table! { "b"; ["x"]; [3] }).unwrap();
        assert_eq!(lake.total_rows(), 3);
        assert!(!lake.is_empty());
    }

    #[test]
    fn version_is_monotone_and_bumped_by_every_mutation() {
        let mut lake = DataLake::new();
        assert_eq!(lake.version(), 0);
        lake.add(table! { "a"; ["x"]; [1] }).unwrap();
        let v1 = lake.version();
        assert!(v1 > 0);
        lake.upsert(table! { "a"; ["x"]; [2] });
        let v2 = lake.version();
        assert!(v2 > v1);
        lake.remove("a").unwrap();
        assert!(lake.version() > v2);
        // Reads do not bump the version.
        let v = lake.version();
        let _ = lake.get("a");
        let _: Vec<_> = lake.names().collect();
        assert_eq!(lake.version(), v);
    }

    #[test]
    fn versions_are_unique_across_lakes() {
        let mut a = DataLake::new();
        let mut b = DataLake::new();
        a.add(table! { "t"; ["x"]; [1] }).unwrap();
        b.add(table! { "t"; ["x"]; [1] }).unwrap();
        assert_ne!(a.version(), b.version());
    }

    #[test]
    fn slots_are_stable_and_reused_after_removal() {
        let mut lake = DataLake::new();
        let a = lake.add_table(table! { "a"; ["x"]; [1] }).unwrap();
        let b = lake.add_table(table! { "b"; ["x"]; [1] }).unwrap();
        assert_ne!(a, b);
        // Replacing keeps the slot.
        assert_eq!(lake.replace_table(table! { "a"; ["x"]; [2] }), a);
        // Removing frees the slot; the next add reuses it.
        let (removed_idx, t) = lake.remove_table("a").unwrap();
        assert_eq!(removed_idx, a);
        assert_eq!(t.name(), "a");
        assert!(lake.table_at(a).is_none());
        let c = lake.add_table(table! { "c"; ["x"]; [3] }).unwrap();
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(lake.table_at(c).unwrap().name(), "c");
        assert_eq!(lake.table_idx("c"), Some(c));
    }

    #[test]
    fn events_since_replays_the_churn() {
        let mut lake = DataLake::new();
        let v0 = lake.version();
        let a = lake.add_table(table! { "a"; ["x"]; [1] }).unwrap();
        let b = lake.add_table(table! { "b"; ["x"]; [1] }).unwrap();
        let mid = lake.version();
        lake.replace_table(table! { "b"; ["x"]; [2] });
        lake.remove_table("a").unwrap();
        let events: Vec<LakeEvent> = lake
            .events_since(v0)
            .unwrap()
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        assert_eq!(
            events,
            vec![
                LakeEvent::Added(a),
                LakeEvent::Added(b),
                LakeEvent::Replaced(b),
                LakeEvent::Removed(a),
            ]
        );
        // A consumer synced mid-way only sees the tail.
        let tail = lake.events_since(mid).unwrap();
        assert_eq!(tail.len(), 2);
        // A fully synced consumer sees nothing.
        assert!(lake.events_since(lake.version()).unwrap().is_empty());
    }

    #[test]
    fn events_since_rejects_stamps_from_another_lineage() {
        let mut a = DataLake::new();
        a.add(table! { "t"; ["x"]; [1] }).unwrap();
        let fork = a.version();
        let mut b = a.clone();
        a.upsert(table! { "t"; ["x"]; [2] }); // a-only stamp
        b.upsert(table! { "t"; ["x"]; [3] }); // b-only stamp
                                              // Each lineage serves its own history…
        assert!(a.events_since(fork).is_some());
        assert!(b.events_since(fork).is_some());
        assert!(a.events_since(a.version()).unwrap().is_empty());
        // …but refuses the other's post-fork stamp, in both directions,
        // regardless of which stamp is numerically newer.
        assert!(b.events_since(a.version()).is_none());
        assert!(a.events_since(b.version()).is_none());
        // Replaying from scratch stays valid while nothing was truncated.
        assert_eq!(b.events_since(0).unwrap().len(), 2);
    }

    #[test]
    fn event_log_truncation_reports_a_gap() {
        let mut lake = DataLake::new();
        let v0 = lake.version();
        lake.add(table! { "t"; ["x"]; [1] }).unwrap();
        let v1 = lake.version();
        for i in 0..MAX_LOG {
            lake.upsert(table! { "t"; ["x"]; [i as i64] });
        }
        // v1's successor events still fit exactly; v0 has fallen off.
        assert!(lake.events_since(v0).is_none(), "truncated span");
        assert_eq!(lake.events_since(v1).unwrap().len(), MAX_LOG);
    }

    #[test]
    fn entries_pair_sorted_names_with_slots() {
        let mut lake = DataLake::new();
        let z = lake.add_table(table! { "z"; ["x"]; [1] }).unwrap();
        let a = lake.add_table(table! { "a"; ["x"]; [1] }).unwrap();
        let got: Vec<(u32, &str)> = lake.entries().map(|(i, t)| (i, t.name())).collect();
        assert_eq!(got, vec![(a, "a"), (z, "z")]);
    }

    #[test]
    fn entries_routed_partitions_entries_exactly() {
        let mut lake = DataLake::new();
        for i in 0..9 {
            lake.add(table! { &format!("t{i}"); ["x"]; [1] }).unwrap();
        }
        lake.remove("t3").unwrap(); // leave a hole in the slot space
        for of in [1u32, 2, 3, 4] {
            let mut striped: Vec<(u32, &str)> = Vec::new();
            for shard in 0..of {
                for (slot, t) in lake.entries_routed(shard, of) {
                    assert_eq!(slot % of, shard, "entry routed to the wrong stripe");
                    striped.push((slot, t.name()));
                }
            }
            striped.sort_unstable();
            let mut all: Vec<(u32, &str)> =
                lake.entries().map(|(slot, t)| (slot, t.name())).collect();
            all.sort_unstable();
            assert_eq!(striped, all, "stripes must partition entries for of={of}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn entries_routed_rejects_out_of_range_shard() {
        let lake = DataLake::new();
        let _ = lake.entries_routed(2, 2).count();
    }

    #[test]
    fn restore_rebuilds_slots_free_list_and_version() {
        let mut live = DataLake::new();
        live.add(table! { "a"; ["x"]; [1] }).unwrap();
        live.add(table! { "b"; ["x"]; [2] }).unwrap();
        live.add(table! { "c"; ["x"]; [3] }).unwrap();
        live.remove("b").unwrap();
        let entries: Vec<(u32, Arc<Table>)> =
            live.entries().map(|(s, t)| (s, Arc::clone(t))).collect();
        let restored =
            DataLake::restore(entries, live.free_slots().to_vec(), live.version()).unwrap();
        assert_eq!(restored.version(), live.version());
        assert_eq!(
            restored.entries().map(|(s, _)| s).collect::<Vec<_>>(),
            live.entries().map(|(s, _)| s).collect::<Vec<_>>()
        );
        assert_eq!(restored.free_slots(), live.free_slots());
        // The restored log is empty with its floor at the snapshot point…
        assert!(restored
            .events_since(restored.version())
            .unwrap()
            .is_empty());
        assert!(restored.events_since(0).is_none(), "pre-snapshot gap");
        // …and future adds reuse the same freed slot the live lake would.
        let mut live2 = live.clone();
        let mut restored2 = restored.clone();
        let slot_live = live2.add_table(table! { "d"; ["x"]; [4] }).unwrap();
        let slot_restored = restored2.add_table(table! { "d"; ["x"]; [4] }).unwrap();
        assert_eq!(slot_live, slot_restored);
    }

    #[test]
    fn restore_rejects_inconsistent_state() {
        let t = |n: &str| Arc::new(table! { n; ["x"]; [1] });
        assert!(DataLake::restore(vec![(5, t("a"))], vec![], 1).is_err());
        assert!(DataLake::restore(vec![(0, t("a")), (0, t("b"))], vec![1], 1).is_err());
        assert!(DataLake::restore(vec![(0, t("a")), (1, t("a"))], vec![], 1).is_err());
        assert!(DataLake::restore(vec![(0, t("a"))], vec![0], 1).is_err());
        assert!(DataLake::restore(vec![(0, t("a"))], vec![1, 1], 1).is_err());
    }

    #[test]
    fn apply_replayed_reproduces_the_live_history() {
        // Drive a live lake through churn, capturing each event with the
        // payload visible right after the mutation — what the commitlog
        // stores — then replay the records into a restored copy of the
        // starting state and compare everything observable.
        let mut live = DataLake::new();
        live.add(table! { "base"; ["x"]; [0] }).unwrap();
        let snap_entries: Vec<(u32, Arc<Table>)> =
            live.entries().map(|(s, t)| (s, Arc::clone(t))).collect();
        let snap_free = live.free_slots().to_vec();
        let snap_version = live.version();

        let mut records: Vec<(u64, LakeEvent, Option<Arc<Table>>)> = Vec::new();
        let mut log_tail = |lake: &DataLake, since: u64| {
            for (stamp, event) in lake.events_since(since).unwrap() {
                let payload = lake.table_at(event.slot()).cloned();
                records.push((stamp, event, payload));
            }
        };
        let mut v = live.version();
        live.add(table! { "a"; ["x"]; [1] }).unwrap();
        log_tail(&live, v);
        v = live.version();
        live.upsert(table! { "a"; ["x"]; [2], [3] });
        log_tail(&live, v);
        v = live.version();
        live.remove("base").unwrap();
        log_tail(&live, v);
        v = live.version();
        live.add(table! { "c"; ["x"]; [4] }).unwrap(); // reuses base's slot
        log_tail(&live, v);

        let mut restored = DataLake::restore(snap_entries, snap_free, snap_version).unwrap();
        for (stamp, event, payload) in records {
            restored.apply_replayed(stamp, event, payload).unwrap();
        }
        assert_eq!(restored.version(), live.version());
        assert_eq!(restored.free_slots(), live.free_slots());
        let obs = |lake: &DataLake| {
            lake.entries()
                .map(|(s, t)| {
                    let rows: Vec<Vec<Value>> = t.rows().map(|r| r.to_vec()).collect();
                    (s, t.name().to_string(), rows)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(obs(&restored), obs(&live));
        // The replayed changelog serves the same deltas as the live one.
        assert_eq!(
            restored.events_since(snap_version).unwrap(),
            live.events_since(snap_version).unwrap()
        );
    }

    #[test]
    fn apply_replayed_rejects_non_monotone_stamps() {
        let mut lake = DataLake::restore(Vec::new(), Vec::new(), 10).unwrap();
        let t = Arc::new(table! { "t"; ["x"]; [1] });
        lake.apply_replayed(11, LakeEvent::Added(0), Some(Arc::clone(&t)))
            .unwrap();
        assert!(lake
            .apply_replayed(11, LakeEvent::Replaced(0), Some(Arc::clone(&t)))
            .is_err());
        assert!(lake
            .apply_replayed(5, LakeEvent::Replaced(0), Some(t))
            .is_err());
    }

    /// Satellite bugfix pin: the stamp source resets to 1 on process
    /// restart, so a reopened lake's persisted history collides with
    /// stamps the fresh process mints — unless the opener re-seeds via
    /// [`bump_stamp_floor`]. Simulated here by restoring a lake whose
    /// persisted stamps sit *ahead* of the live source, exactly the shape
    /// a real restart produces (disk: stamps 1..=N; fresh process: 1..).
    #[test]
    fn stamp_reseed_blocks_cross_restart_collisions() {
        // A live lineage in this process mints a stamp…
        let mut fresh = DataLake::new();
        fresh.add(table! { "fresh"; ["x"]; [1] }).unwrap();
        let s = fresh.version();

        // …and a previous process life, whose source also started at 1,
        // persisted that *same* stamp value before dying. Reopening that
        // disk image replays the stamp without minting:
        let payload = Arc::new(table! { "t"; ["x"]; [1] });
        let mut reopened = DataLake::restore(Vec::new(), Vec::new(), s - 1).unwrap();
        reopened
            .apply_replayed(s, LakeEvent::Added(0), Some(Arc::clone(&payload)))
            .unwrap();

        // BUG: both lineages now hold stamp `s`, so the reopened lake
        // vouches for the fresh lineage's stamp and would serve it a
        // delta from a history it never had.
        assert!(
            reopened.events_since(fresh.version()).is_some(),
            "collision: reopened lake accepts a foreign lineage's stamp"
        );

        // Also pre-reseed: a reopened lake whose persisted stamps run
        // ahead of the live source mints *backwards*, making its own
        // newest mutation invisible to a synced consumer.
        let far = s + 10_000_000; // far past anything this test run mints
        let mut ahead = DataLake::restore(Vec::new(), Vec::new(), far).unwrap();
        ahead
            .apply_replayed(far + 1, LakeEvent::Added(0), Some(payload))
            .unwrap();
        let mut unfixed = ahead.clone();
        let before = unfixed.version();
        unfixed.upsert(table! { "t2"; ["x"]; [2] });
        assert!(unfixed.version() < before, "version moved backwards");
        let delta = unfixed.events_since(before);
        assert!(
            delta.is_none() || delta.as_deref() == Some(&[][..]),
            "the post-restart mutation must have vanished from the delta \
             (a correct lake would serve exactly one event): {delta:?}"
        );

        // FIX: re-seed the source past the maximum persisted stamp — what
        // `dialite_durable` does on open. Monotonicity resumes and the
        // lineages can never share a stamp again.
        bump_stamp_floor(ahead.version());
        let persisted_max = ahead.version();
        ahead.upsert(table! { "t2"; ["x"]; [2] });
        assert!(ahead.version() > persisted_max, "monotone after reseed");
        fresh.upsert(table! { "fresh"; ["x"]; [2] });
        assert!(fresh.version() > persisted_max);
        assert!(
            ahead.events_since(fresh.version()).is_none(),
            "foreign stamps are refused again"
        );
    }

    #[test]
    fn load_dir_reads_csvs() {
        let dir = std::env::temp_dir().join(format!("dialite_lake_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("one.csv"), "a,b\n1,2\n").unwrap();
        std::fs::write(dir.join("two.csv"), "c\nx\n").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a table").unwrap();
        let mut lake = DataLake::new();
        let n = lake.load_dir(&dir).unwrap();
        assert_eq!(n, 2);
        assert!(lake.get("one").is_some());
        assert!(lake.get("two").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
