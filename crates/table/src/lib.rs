//! # dialite-table
//!
//! The relational substrate for `dialite-rs`: a typed, null-aware table model
//! together with CSV I/O and an in-memory data-lake store.
//!
//! The model follows the semantics pinned down by the DIALITE paper
//! (SIGMOD-Companion 2023) and its ALITE backend (PVLDB 16(4)):
//!
//! * Cell values are dynamically typed ([`Value`]): integers, floats, text,
//!   booleans and **two kinds of nulls** — *missing* nulls (`±`, present in
//!   the source data) and *produced* nulls (`⊥`, introduced by integration).
//!   Both kinds behave identically for comparison and hashing (any null
//!   equals any other null as *content*), but they are distinguished for
//!   display and provenance, exactly as in the paper's Figures 2 and 3.
//! * A [`Table`] is a named schema plus row-major tuples; every row carries
//!   an implicit tuple identifier ([`Tid`]) used for provenance through
//!   integration (the `{t1, t7}` sets of Figure 3).
//! * A [`DataLake`] is a named collection of tables — the repository `D` that
//!   discovery searches over. It is *mutable and versioned*: every
//!   `add_table` / `replace_table` / `remove_table` bumps a monotone
//!   [`DataLake::version`] stamp and appends a [`LakeEvent`] to a bounded
//!   changelog, so discovery indexes can follow churn incrementally.
//!
//! ```
//! use dialite_table::{Table, Value};
//!
//! let t = Table::from_rows(
//!     "cities",
//!     &["country", "city", "rate"],
//!     vec![
//!         vec!["Germany".into(), "Berlin".into(), Value::Float(0.63)],
//!         vec!["Spain".into(), "Barcelona".into(), Value::Float(0.82)],
//!     ],
//! )
//! .unwrap();
//! assert_eq!(t.row_count(), 2);
//! assert_eq!(t.column_index("city"), Some(1));
//! ```

#![deny(missing_docs)]

mod csv;
mod error;
pub mod fixtures;
mod intern;
mod lake;
mod schema;
mod table;
mod value;

pub use csv::{parse_csv, read_csv_str, table_to_csv, write_csv_path, CsvOptions};
pub use error::TableError;
pub use intern::ValueInterner;
pub use lake::{bump_stamp_floor, DataLake, LakeEvent};
pub use schema::{ColumnMeta, ColumnType, Schema};
pub use table::{Table, Tid};
pub use value::{NullKind, Value};

/// Convenience macro for constructing tables in tests and examples.
///
/// ```
/// use dialite_table::{table, Value};
/// let t = table! {
///     "t1"; ["country", "city"];
///     ["Germany", "Berlin"],
///     ["Spain", "Barcelona"],
/// };
/// assert_eq!(t.row_count(), 2);
/// ```
#[macro_export]
macro_rules! table {
    ($name:expr; [$($col:expr),* $(,)?]; $([$($cell:expr),* $(,)?]),* $(,)?) => {{
        $crate::Table::from_rows(
            $name,
            &[$($col),*],
            vec![$(vec![$($crate::Value::from($cell)),*]),*],
        )
        .expect("table! literal must be well-formed")
    }};
}
