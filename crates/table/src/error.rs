//! Error type shared by the table substrate.

use std::fmt;

/// Errors produced by the table substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A row had a different arity than the table schema.
    ArityMismatch {
        /// Table being constructed or mutated.
        table: String,
        /// The schema's column count.
        expected: usize,
        /// The offending row's cell count.
        got: usize,
    },
    /// A column name was referenced that the schema does not contain.
    UnknownColumn {
        /// Table that was probed.
        table: String,
        /// The unresolved column name.
        column: String,
    },
    /// Two columns in one schema share a name.
    DuplicateColumn {
        /// Table whose schema is ill-formed.
        table: String,
        /// The repeated column name.
        column: String,
    },
    /// A table name was referenced that the lake does not contain.
    UnknownTable {
        /// The unresolved table name.
        table: String,
    },
    /// A table with this name is already registered in the lake.
    DuplicateTable {
        /// The clashing table name.
        table: String,
    },
    /// Malformed CSV input.
    Csv {
        /// 1-based line where parsing failed.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// An I/O failure while reading or writing table files.
    Io {
        /// Path of the file or directory involved.
        path: String,
        /// The underlying I/O error, stringified.
        message: String,
    },
    /// A row index out of bounds.
    RowOutOfBounds {
        /// Table that was indexed.
        table: String,
        /// The out-of-range row index.
        row: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "table '{table}': row arity {got} does not match schema arity {expected}"
            ),
            TableError::UnknownColumn { table, column } => {
                write!(f, "table '{table}': unknown column '{column}'")
            }
            TableError::DuplicateColumn { table, column } => {
                write!(f, "table '{table}': duplicate column '{column}'")
            }
            TableError::UnknownTable { table } => write!(f, "unknown table '{table}'"),
            TableError::DuplicateTable { table } => {
                write!(f, "table '{table}' is already registered")
            }
            TableError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            TableError::Io { path, message } => write!(f, "io error on '{path}': {message}"),
            TableError::RowOutOfBounds { table, row } => {
                write!(f, "table '{table}': row index {row} out of bounds")
            }
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TableError::ArityMismatch {
            table: "t".into(),
            expected: 3,
            got: 2,
        };
        let s = e.to_string();
        assert!(s.contains("t"));
        assert!(s.contains('3'));
        assert!(s.contains('2'));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> =
            Box::new(TableError::UnknownTable { table: "x".into() });
        assert!(e.to_string().contains('x'));
    }
}
