//! Property-based tests for the table substrate: CSV round-trips, value
//! ordering laws and canonical-form invariants.

use dialite_table::{
    parse_csv, read_csv_str, table_to_csv, CsvOptions, NullKind, Table, Value, ValueInterner,
};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::null_missing()),
        Just(Value::null_produced()),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: CSV text cannot distinguish NaN spellings from
        // the "nan" null spelling, which is by design.
        prop::num::f64::NORMAL.prop_map(Value::Float),
        // Text that does not itself look like a number/null/bool, so that a
        // round trip preserves the type (CSV cannot distinguish the text
        // "na" from a null — see the csv module docs). Includes
        // quotes/commas/newlines/bare CRs to exercise the quoting machinery.
        "[a-zA-Z][a-zA-Z ,\"\n\r_-]{0,20}[a-zA-Z]"
            .prop_filter("must not spell a null/bool", |s| {
                !matches!(
                    s.trim().to_ascii_lowercase().as_str(),
                    "null" | "na" | "n/a" | "nan" | "none" | "true" | "false"
                )
            })
            .prop_map(Value::Text),
    ]
}

fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..6, 0usize..12).prop_flat_map(|(cols, rows)| {
        let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
        prop::collection::vec(prop::collection::vec(arb_value(), cols), rows).prop_map(
            move |rows| {
                Table::from_rows("t", &names, rows).expect("arity is fixed by construction")
            },
        )
    })
}

proptest! {
    #[test]
    fn csv_round_trip_preserves_content(t in arb_table()) {
        let csv = table_to_csv(&t);
        let back = read_csv_str("t", &csv, &CsvOptions::default()).unwrap();
        prop_assert!(t.same_content(&back), "csv was:\n{csv}");
    }

    #[test]
    fn parse_csv_field_counts_are_consistent(t in arb_table()) {
        let csv = table_to_csv(&t);
        let recs = parse_csv(&csv, &CsvOptions::default()).unwrap();
        // header + rows
        prop_assert_eq!(recs.len(), 1 + t.row_count());
        for rec in &recs {
            prop_assert_eq!(rec.len(), t.column_count());
        }
    }

    #[test]
    fn csv_line_endings_are_equivalent(t in arb_table()) {
        // The writer emits \n; re-terminating unquoted record boundaries
        // with \r\n or lone \r must parse to the same records. (Quoted
        // fields are left alone — their newlines are content.)
        let csv = table_to_csv(&t);
        let reterminate = |sep: &str| {
            let mut out = String::new();
            let mut in_quotes = false;
            for c in csv.chars() {
                match c {
                    '"' => { in_quotes = !in_quotes; out.push(c); }
                    '\n' if !in_quotes => out.push_str(sep),
                    _ => out.push(c),
                }
            }
            out
        };
        let base = parse_csv(&csv, &CsvOptions::default()).unwrap();
        for sep in ["\r\n", "\r"] {
            let alt = parse_csv(&reterminate(sep), &CsvOptions::default()).unwrap();
            prop_assert_eq!(&base, &alt, "separator {:?} diverged", sep);
        }
    }

    #[test]
    fn value_ordering_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            prop_assert_eq!(&a, &b);
        }
    }

    #[test]
    fn value_ordering_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2]);
    }

    #[test]
    fn eq_implies_same_hash(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    #[test]
    fn distinct_is_idempotent(t in arb_table()) {
        let once = t.distinct();
        let twice = once.distinct();
        prop_assert!(once.same_content(&twice));
        prop_assert!(once.row_count() <= t.row_count());
    }

    #[test]
    fn sorted_is_canonical(t in arb_table()) {
        let s1 = t.sorted();
        let s2 = s1.sorted();
        prop_assert_eq!(&s1, &s2);
        prop_assert!(t.same_content(&s1));
    }

    #[test]
    fn parse_str_never_panics(s in "\\PC*") {
        let _ = Value::parse_str(&s);
    }

    // ---- ValueInterner laws (direct coverage; previously only exercised
    // transitively through the integrate crate). -------------------------

    #[test]
    fn interner_round_trips_and_is_idempotent(vs in prop::collection::vec(arb_value(), 0..40)) {
        let mut interner = ValueInterner::new();
        let ids: Vec<u32> = vs.iter().map(|v| interner.intern(v)).collect();
        // Round trip: every id resolves back to a content-equal value.
        for (v, id) in vs.iter().zip(&ids) {
            prop_assert_eq!(interner.resolve(*id), v);
            // `get` agrees without inserting.
            prop_assert_eq!(interner.get(v), Some(*id));
        }
        // Idempotent: re-interning yields the identical ids and grows nothing.
        let n = interner.len();
        let again: Vec<u32> = vs.iter().map(|v| interner.intern(v)).collect();
        prop_assert_eq!(&ids, &again);
        prop_assert_eq!(interner.len(), n);
    }

    #[test]
    fn interner_ids_respect_content_equality(vs in prop::collection::vec(arb_value(), 0..40)) {
        let mut interner = ValueInterner::new();
        let ids: Vec<u32> = vs.iter().map(|v| interner.intern(v)).collect();
        for (a, ia) in vs.iter().zip(&ids) {
            for (b, ib) in vs.iter().zip(&ids) {
                // Content equality — except the two null kinds, which are
                // *equal as content* but deliberately keep distinct
                // reserved ids to preserve the ±/⊥ provenance distinction.
                let want = if a.is_null() && b.is_null() {
                    matches!(
                        (a, b),
                        (Value::Null(NullKind::Missing), Value::Null(NullKind::Missing))
                            | (Value::Null(NullKind::Produced), Value::Null(NullKind::Produced))
                    )
                } else {
                    a == b
                };
                prop_assert_eq!(*ia == *ib, want, "id equality must mirror {:?} vs {:?}", a, b);
            }
        }
        // Ids are dense: reserved nulls first, then first-seen order.
        let mut seen: Vec<u32> = ids.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(
            interner.len(),
            ValueInterner::FIRST_VALUE_ID as usize
                + seen.iter().filter(|&&id| !ValueInterner::is_null_id(id)).count()
        );
    }

    #[test]
    fn interner_reserves_null_ids_by_kind(vs in prop::collection::vec(arb_value(), 0..40)) {
        let mut interner = ValueInterner::new();
        for v in &vs {
            let id = interner.intern(v);
            match v {
                Value::Null(NullKind::Produced) => {
                    prop_assert_eq!(id, ValueInterner::NULL_PRODUCED)
                }
                Value::Null(NullKind::Missing) => {
                    prop_assert_eq!(id, ValueInterner::NULL_MISSING)
                }
                _ => prop_assert!(id >= ValueInterner::FIRST_VALUE_ID),
            }
            prop_assert_eq!(ValueInterner::is_null_id(id), v.is_null());
        }
    }
}
