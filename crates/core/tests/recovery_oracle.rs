//! Recovery oracle for the durability layer: crash-replay at arbitrary
//! trace prefixes must reproduce the never-restarted lake **byte for
//! byte** — same version stamps, same table set, same discovery output —
//! and version stamps must stay strictly monotone across the simulated
//! restart (the restart-unsafe stamp bug this PR fixes).
//!
//! A deterministic companion test pins the warm-start economics: reopening
//! from a sketch-bearing snapshot re-hashes `O(events since snapshot)`
//! column domains, not `O(lake)`.

use std::path::PathBuf;

use dialite_core::{DurableConfig, Pipeline};
use dialite_datagen::workloads::{ChurnOp, ChurnWorkload};
use dialite_discovery::TableQuery;
use dialite_table::{table, DataLake};
use proptest::prelude::*;

/// A scratch data dir, unique per test case, wiped on entry.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dialite_recovery_oracle_{}_{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The observable lake state equality the oracle pins: version stamp and
/// the full name → rows mapping. (Plain panics; proptest catches them.)
fn assert_same_lake(live: &DataLake, recovered: &DataLake) {
    assert_eq!(live.version(), recovered.version(), "version stamp drift");
    assert_eq!(live.len(), recovered.len(), "table count drift");
    for (_, t) in live.entries() {
        let r = recovered
            .get(t.name())
            .unwrap_or_else(|| panic!("recovered lake lost {}", t.name()));
        assert_eq!(
            t.rows().collect::<Vec<_>>(),
            r.rows().collect::<Vec<_>>(),
            "rows drift in {}",
            t.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random churn traces, snapshot at an arbitrary mutation prefix,
    /// crash at an arbitrary later prefix: reopening from disk must equal
    /// the live (never-restarted) lake byte for byte, discovery output
    /// included, and a post-restart mutation must mint a strictly newer
    /// stamp that the recovered changelog serves as an ordinary delta.
    #[test]
    fn crash_replay_equals_live_lake(
        seed in any::<u64>(),
        ops in 8usize..18,
        snap_frac in 0.0f64..1.0,
        crash_frac in 0.0f64..1.0,
        shards in 1usize..3,
    ) {
        let trace = ChurnWorkload {
            initial_tables: 5,
            rows_per_table: 8,
            vocab: 80,
            ops,
            seed,
        }
        .generate();
        // Flatten the whole trace into one mutation list; queries are
        // kept aside as probes.
        let mutations: Vec<&ChurnOp> = trace.ops.iter().filter(|op| !matches!(op, ChurnOp::Query(_))).collect();
        let queries: Vec<&ChurnOp> = trace.ops.iter().filter(|op| matches!(op, ChurnOp::Query(_))).collect();
        let crash_at = ((mutations.len() as f64) * crash_frac) as usize;
        let snap_at = ((crash_at as f64) * snap_frac) as usize;

        let dir = scratch(&format!("crash_{seed}_{ops}_{shards}"));
        let (pipeline, mut lake, mut durable) =
            Pipeline::open_durable(&dir, shards, DurableConfig::default()).expect("fresh dir opens");
        for t in &trace.initial {
            let since = lake.version();
            lake.add_table(t.clone()).expect("unique trace names");
            durable.append_since(&lake, since).expect("append");
        }
        for (i, op) in mutations.iter().take(crash_at).enumerate() {
            let since = lake.version();
            op.apply(&mut lake);
            durable.append_since(&lake, since).expect("append");
            if i + 1 == snap_at {
                pipeline.snapshot(&lake, &mut durable).expect("snapshot");
            }
        }
        // Crash: drop the handle with no further checkpoint.
        drop(durable);
        drop(pipeline);

        let (warm, recovered, mut durable) =
            Pipeline::open_durable(&dir, shards, DurableConfig::default()).expect("reopen");
        assert_same_lake(&lake, &recovered);

        // Discovery over the recovered lake is byte-identical to a cold
        // pipeline over the live lake.
        let cold = Pipeline::demo_sharded(&lake, shards);
        for (qi, op) in queries.iter().enumerate() {
            let ChurnOp::Query(q) = op else { unreachable!() };
            let query = TableQuery::with_column(q.clone(), 0);
            prop_assert_eq!(
                warm.discover_stage(&recovered, &query),
                cold.discover_stage(&lake, &query),
                "discovery drift at query {}",
                qi
            );
        }

        // Post-restart mutations mint strictly newer stamps and flow
        // through the recovered changelog as an ordinary delta.
        let before = recovered.version();
        let mut recovered = recovered;
        let since = recovered.version();
        recovered
            .add_table(table! { "post_restart"; ["k"]; ["zeta"] })
            .expect("fresh name");
        durable.append_since(&recovered, since).expect("append after reopen");
        prop_assert!(recovered.version() > before, "stamp went backwards across restart");
        let delta = recovered.events_since(before).expect("changelog serves the delta");
        prop_assert_eq!(delta.len(), 1, "exactly the post-restart event");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Warm-start economics, pinned deterministically: with a sketch-bearing
/// snapshot covering all but a tiny tail, reopening re-hashes only the
/// tail's column domains — not the whole lake.
#[test]
fn warm_start_sketch_work_is_proportional_to_the_tail() {
    let dir = scratch("warm_work");
    let (pipeline, mut lake, mut durable) =
        Pipeline::open_durable(&dir, 1, DurableConfig::default()).expect("fresh dir opens");
    for i in 0..40 {
        let since = lake.version();
        let name = format!("big_t{i}");
        let (ka, kb) = (format!("tok{i}a"), format!("tok{i}b"));
        lake.add_table(table! { &name; ["k", "v"]; [ka.as_str(), 1], [kb.as_str(), 2] })
            .expect("unique names");
        durable.append_since(&lake, since).expect("append");
    }
    pipeline.snapshot(&lake, &mut durable).expect("snapshot");
    // A three-mutation tail after the checkpoint.
    for i in 0..3 {
        let since = lake.version();
        let name = format!("tail_t{i}");
        let tk = format!("tail{i}");
        lake.add_table(table! { &name; ["k"]; [tk.as_str()] })
            .expect("unique names");
        durable.append_since(&lake, since).expect("append");
    }
    drop(durable);
    drop(pipeline);

    let (warm, recovered, _durable) =
        Pipeline::open_durable(&dir, 1, DurableConfig::default()).expect("reopen");
    assert_eq!(recovered.version(), lake.version());
    let warm_work = warm.sketch_work().expect("indexed pipeline");

    let cold = Pipeline::demo_sharded(&lake, 1);
    let cold_work = cold.sketch_work().expect("indexed pipeline");

    // The tail is 3 single-column tables; the lake is 43 tables with 83
    // column domains. Warm work must cover only the tail.
    assert!(
        warm_work <= 6,
        "warm start re-hashed more than the tail: {warm_work} signatures"
    );
    assert!(
        cold_work >= 80,
        "cold build unexpectedly cheap: {cold_work} signatures"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The serving layer with write-ahead durability: mutations applied
/// through [`dialite_core::DurableService::mutate`] land in the commitlog
/// under the write lock, a checkpoint truncates it, and a restart serves
/// everything back.
#[test]
fn durable_service_mutations_survive_restart() {
    let dir = scratch("service");
    let (pipeline, lake, durable) =
        Pipeline::open_durable(&dir, 2, DurableConfig::default()).expect("fresh dir opens");
    let service = pipeline
        .serve_durable(lake, 16, durable)
        .expect("indexed pipeline");
    for i in 0..6 {
        let name = format!("svc_t{i}");
        let tok = format!("s{i}");
        service
            .mutate(|lake| lake.add_table(table! { &name; ["k"]; [tok.as_str()] }))
            .expect("durable mutate");
    }
    service.snapshot().expect("checkpoint");
    assert_eq!(service.log_len(), 0, "checkpoint truncates the log");
    service
        .mutate(|lake| lake.add_table(table! { "svc_after"; ["k"]; ["late"] }))
        .expect("durable mutate");
    assert_eq!(service.log_len(), 1, "tail after the checkpoint");
    let served_version = service.service().version();
    drop(service);

    let (_warm, recovered, _durable) =
        Pipeline::open_durable(&dir, 2, DurableConfig::default()).expect("reopen");
    assert_eq!(recovered.version(), served_version);
    assert_eq!(recovered.len(), 7);
    assert!(recovered.get("svc_after").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn tail at the end-to-end level: chopping bytes off the commitlog
/// recovers the longest valid prefix, and the recovered lake equals the
/// live lake as of that prefix.
#[test]
fn torn_log_tail_recovers_the_longest_valid_prefix() {
    let dir = scratch("torn_e2e");
    let (_pipeline, mut lake, mut durable) =
        Pipeline::open_durable(&dir, 1, DurableConfig::default()).expect("fresh dir opens");
    let mut versions = vec![lake.version()];
    for i in 0..5 {
        let since = lake.version();
        let name = format!("torn_t{i}");
        let wk = format!("w{i}");
        lake.add_table(table! { &name; ["k"]; [wk.as_str()] })
            .expect("unique names");
        durable.append_since(&lake, since).expect("append");
        versions.push(lake.version());
    }
    drop(durable);

    // Tear mid-record: chop 3 bytes off the log. The last record dies,
    // the first four survive.
    let log_path = dir.join("events.log");
    let bytes = std::fs::read(&log_path).expect("log exists");
    std::fs::write(&log_path, &bytes[..bytes.len() - 3]).expect("chop");

    let (_warm, recovered, _durable) =
        Pipeline::open_durable(&dir, 1, DurableConfig::default()).expect("reopen tolerates tear");
    assert_eq!(recovered.version(), versions[4], "longest valid prefix");
    assert_eq!(recovered.len(), 4);
    assert!(recovered.get("torn_t3").is_some());
    assert!(
        recovered.get("torn_t4").is_none(),
        "torn record must not be served"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
