//! End-to-end equivalence oracle for the planner-routed discovery stage:
//! `Pipeline::run` with [`DiscoveryBudget::unlimited`] must produce
//! **byte-identical** `Discovered` sets — per-engine lists, order and
//! tie-breaks included — to the pre-routing probe-all path
//! (`LakeIndex::discover_all`, scan-then-truncate), across churned and
//! freshly built indexes.
//!
//! This is the contract that lets the routing ship at all: the budgeted
//! machinery (signature cache, partition scheduling, posting-list
//! verification, bound-ranked capped SANTOS retrieval) collapses to the
//! legacy output exactly when nothing is capped, so any drift here is a
//! planner/cap bug, not a tuning choice.

use std::sync::Arc;

use dialite_core::Pipeline;
use dialite_datagen::lake::{LakeSpec, SyntheticLake};
use dialite_datagen::workloads::{ChurnOp, ChurnWorkload};
use dialite_discovery::{
    Discovered, DiscoveryBudget, LakeIndex, LakeIndexConfig, LshEnsembleConfig, SantosConfig,
    TableQuery,
};
use dialite_kb::curated::covid_kb;
use dialite_kb::KnowledgeBase;
use dialite_table::DataLake;
use proptest::prelude::*;

/// The legacy scan-then-truncate discovery stage: a freshly built
/// probe-all `LakeIndex` with no planner, no caps and no telemetry.
fn legacy_stage(
    lake: &DataLake,
    kb: Arc<KnowledgeBase>,
    config: &LakeIndexConfig,
    query: &TableQuery,
    k: usize,
) -> Vec<(String, Vec<Discovered>)> {
    LakeIndex::build(lake, kb, config.clone()).discover_all(query, k)
}

fn configs() -> Vec<LakeIndexConfig> {
    vec![
        // The real sketch path (both stages see the same sketches, so
        // LSH randomness cancels out of the comparison).
        LakeIndexConfig {
            santos: SantosConfig::default(),
            lshe: LshEnsembleConfig {
                num_perm: 64,
                num_partitions: 4,
                rebalance_dirtiness: 0.2,
                pool_compact_min: 0,
                ..LshEnsembleConfig::default()
            },
            metadata: None,
        },
        // The exact-verification regime: output is a pure function of the
        // lake state, so equality here pins scores bit-for-bit. The
        // metadata leg is pure too, so it rides along here and the oracle
        // pins its churn-sync equality at the pipeline level as well.
        LakeIndexConfig {
            santos: SantosConfig::default(),
            lshe: LshEnsembleConfig {
                num_perm: 64,
                num_partitions: 4,
                exact_fallback_below: usize::MAX,
                rebalance_dirtiness: 0.15,
                ..LshEnsembleConfig::default()
            },
            metadata: Some(dialite_discovery::MetadataConfig::default()),
        },
    ]
}

proptest! {
    /// Random churn traces: one pipeline keeps its index warm across the
    /// whole trace (syncing per mutation via `run`), and at every query
    /// point its unlimited-budget `run` output equals the legacy
    /// probe-all stage over a freshly built index.
    #[test]
    fn unlimited_budgeted_run_equals_legacy_probe_all(seed in any::<u64>(), ops in 12usize..28) {
        let trace = ChurnWorkload {
            initial_tables: 8,
            rows_per_table: 12,
            vocab: 150,
            ops,
            seed,
        }
        .generate();
        let kb = Arc::new(covid_kb());
        for config in configs() {
            let mut lake = DataLake::from_tables(trace.initial.clone()).unwrap();
            let pipeline = Pipeline::builder()
                .indexed_discovery(kb.clone(), config.clone())
                .discovery_budget(DiscoveryBudget::unlimited())
                .top_k(6)
                .build();
            let mut compared = 0usize;
            for op in &trace.ops {
                if let ChurnOp::Query(q) = op {
                    let query = TableQuery::with_column(q.clone(), 0);
                    // The churn-maintained, planner-routed stage...
                    let got = pipeline.discover_stage(&lake, &query);
                    // ...vs the legacy probe-all scan over a fresh build.
                    let want = legacy_stage(&lake, kb.clone(), &config, &query, 6);
                    prop_assert_eq!(
                        &got,
                        &want,
                        "budgeted stage diverged from probe-all at query {}",
                        compared
                    );
                    // And `run` reports exactly that stage (when it has an
                    // integration set to build at all).
                    if let Ok(run) = pipeline.run(&lake, &query) {
                        prop_assert_eq!(
                            &run.discovered,
                            &want,
                            "run.discovered diverged at query {}",
                            compared
                        );
                    }
                    compared += 1;
                } else {
                    op.apply(&mut lake);
                }
            }
            prop_assert!(compared > 0, "trace contained no queries");
        }
    }
}

/// Deterministic datagen-lake spot check: unlimited-budget `run` equals
/// the legacy stage on a synthetic lake with its own ground-truth KB —
/// the KB-rich regime where the SANTOS type index (and therefore the
/// capped-retrieval machinery) actually drives candidate retrieval.
#[test]
fn unlimited_run_matches_legacy_on_a_synthetic_lake() {
    let synth = SyntheticLake::generate(&LakeSpec {
        universes: 4,
        fragments_per_universe: 4,
        rows_per_universe: 50,
        categorical_cols: 2,
        numeric_cols: 1,
        null_rate: 0.05,
        value_dirt_rate: 0.0,
        scramble_headers: false,
        seed: 97,
    });
    let kb = Arc::new(synth.truth.kb.clone());
    let config = LakeIndexConfig::default();
    let pipeline = Pipeline::builder()
        .indexed_discovery(kb.clone(), config.clone())
        .discovery_budget(DiscoveryBudget::unlimited())
        .top_k(5)
        .build();
    let mut compared = 0usize;
    for table in synth.lake.tables().take(8) {
        let query = TableQuery::with_column(table.as_ref().clone(), 0);
        let got = pipeline.discover_stage(&synth.lake, &query);
        let want = legacy_stage(&synth.lake, kb.clone(), &config, &query, 5);
        assert_eq!(got, want, "diverged on query {}", table.name());
        compared += 1;
    }
    assert!(compared > 0);
}

/// The flip side of the oracle: a *finite* budget may legitimately trim
/// results, but what it reports stays a subset of the legacy truth at
/// identical scores — budgets drop work, they never invent results.
#[test]
fn finite_budgets_stay_a_sound_subset_of_legacy() {
    let trace = ChurnWorkload {
        initial_tables: 12,
        rows_per_table: 14,
        vocab: 160,
        ops: 0,
        seed: 5,
    }
    .generate();
    let lake = DataLake::from_tables(trace.initial.clone()).unwrap();
    let kb = Arc::new(covid_kb());
    let config = LakeIndexConfig {
        santos: SantosConfig::default(),
        lshe: LshEnsembleConfig {
            exact_fallback_below: usize::MAX,
            ..LshEnsembleConfig::default()
        },
        metadata: None,
    };
    let tight = DiscoveryBudget::default()
        .with_santos_candidates(2)
        .with_joinable(
            dialite_discovery::QueryBudget::unlimited()
                .with_max_partitions(1)
                .with_max_verifications(4),
        );
    let pipeline = Pipeline::builder()
        .indexed_discovery(kb.clone(), config.clone())
        .discovery_budget(tight)
        .top_k(6)
        .build();
    for q in trace.initial.iter().take(6) {
        let query = TableQuery::with_column(q.clone(), 0);
        let got = pipeline.discover_stage(&lake, &query);
        let want = legacy_stage(&lake, kb.clone(), &config, &query, usize::MAX);
        for ((engine, hits), (w_engine, truth)) in got.iter().zip(&want) {
            assert_eq!(engine, w_engine);
            for hit in hits {
                let full = truth
                    .iter()
                    .find(|d| d.table == hit.table)
                    .unwrap_or_else(|| panic!("{engine} invented {} for {}", hit.table, q.name()));
                assert_eq!(
                    hit.score, full.score,
                    "{engine} reported a drifted score for {}",
                    hit.table
                );
            }
        }
    }
}
