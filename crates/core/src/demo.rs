//! The bundled demo data: the paper's Fig. 2 and Fig. 7 tables plus a few
//! distractor tables, forming the small data lake the demonstration
//! searches over (§3.1: "we will provide a data lake for the users to use
//! in the demonstration").
//!
//! The tables themselves live in [`dialite_table::fixtures`] — the shared,
//! workspace-wide fixture set — and are re-exported here so pipeline users
//! keep the ergonomic `demo::covid_lake()` entry point.

pub use dialite_table::fixtures::{
    covid_lake, fig2_joinable, fig2_query, fig2_tables, fig2_unionable, fig3_expected, fig7_tables,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lake_contains_the_demo_tables_but_not_the_query() {
        let lake = covid_lake();
        for t in ["T2", "T3", "T4", "T5", "T6", "gdp", "animals"] {
            assert!(lake.get(t).is_some(), "{t} missing");
        }
        assert!(lake.get("T1").is_none());
    }

    #[test]
    fn fig3_expected_has_paper_shape() {
        let t = fig3_expected();
        assert_eq!(t.row_count(), 7);
        assert_eq!(t.column_count(), 5);
    }
}
