//! The pipeline runner.

use std::fmt;
use std::io;
use std::path::Path;
use std::sync::{Arc, RwLock};

use dialite_align::{Alignment, HolisticMatcher, KbAnnotator};
use dialite_discovery::{
    top_k_discovered, union_integration_set, Discovered, Discovery, DiscoveryBudget,
    DiscoveryService, DiscoveryTelemetry, LakeIndexConfig, QueryBudget, ServingConfig,
    ShardedLakeIndex, TableQuery,
};
use dialite_durable::{DurableConfig, DurableLake};
use dialite_integrate::{
    AliteFd, IntegrateError, IntegratedTable, Integrator, OuterJoinIntegrator,
};
use dialite_kb::curated::covid_kb;
use dialite_kb::KnowledgeBase;
use dialite_table::{DataLake, Table, TableError};

use crate::durable::DurableService;

/// Pipeline failures.
#[derive(Debug)]
pub enum PipelineError {
    /// An integration engine failed.
    Integrate(IntegrateError),
    /// A table-level failure (unknown table etc.).
    Table(TableError),
    /// The discovery stage produced an empty integration set and the query
    /// alone cannot be integrated meaningfully.
    EmptyIntegrationSet,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Integrate(e) => write!(f, "integration failed: {e}"),
            PipelineError::Table(e) => write!(f, "table error: {e}"),
            PipelineError::EmptyIntegrationSet => {
                write!(f, "discovery produced an empty integration set")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<IntegrateError> for PipelineError {
    fn from(e: IntegrateError) -> Self {
        PipelineError::Integrate(e)
    }
}

impl From<TableError> for PipelineError {
    fn from(e: TableError) -> Self {
        PipelineError::Table(e)
    }
}

/// Everything a pipeline run produced, stage by stage — the demo lets users
/// "interact with the system after each step so that they can validate the
/// intermediate results" (§2.4), so every intermediate is kept.
pub struct PipelineRun {
    /// Per-engine discovery results, under the pipeline's **one ordering
    /// rule**: engines appear in registration order (indexed engines
    /// first — `santos`, then `lsh-ensemble` — followed by plain engines
    /// in builder order), and every engine's hit list is ranked by
    /// [`top_k_discovered`] (descending score, NaN last, ties broken by
    /// table name) and truncated to the pipeline's `top_k`. Merged views
    /// ([`Pipeline::discover_top_k`]) fold the per-engine lists they span
    /// (the planned joinable leg plus the plain engines) through a
    /// best-score union (NaN propagates, never fabricated) and re-rank
    /// with the same rule, so the two orderings can never drift apart.
    pub discovered: Vec<(String, Vec<Discovered>)>,
    /// The integration set: the query table first, then discovered tables.
    pub integration_set: Vec<Arc<Table>>,
    /// The integration-ID assignment.
    pub alignment: Alignment,
    /// The primary integration result.
    pub integrated: IntegratedTable,
    /// Results of the alternative integration operators, by engine name.
    pub alternatives: Vec<(String, IntegratedTable)>,
}

impl PipelineRun {
    /// A human-readable per-stage report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("== Discover ==\n");
        for (engine, hits) in &self.discovered {
            let names: Vec<String> = hits
                .iter()
                .map(|d| format!("{} ({:.3})", d.table, d.score))
                .collect();
            out.push_str(&format!("{engine}: [{}]\n", names.join(", ")));
        }
        let set: Vec<&str> = self.integration_set.iter().map(|t| t.name()).collect();
        out.push_str(&format!("integration set: [{}]\n", set.join(", ")));
        out.push_str("\n== Align ==\n");
        for (t, table) in self.integration_set.iter().enumerate() {
            let ids: Vec<String> = (0..table.column_count())
                .map(|c| {
                    format!(
                        "{} → {}",
                        table.schema().column(c).name,
                        self.alignment.name_of(self.alignment.id_of(t, c))
                    )
                })
                .collect();
            out.push_str(&format!("{}: {}\n", table.name(), ids.join(", ")));
        }
        out.push_str("\n== Integrate ==\n");
        out.push_str(&self.integrated.table().to_string());
        for (name, alt) in &self.alternatives {
            out.push_str(&format!("\n-- alternative: {name} --\n"));
            out.push_str(&alt.table().to_string());
        }
        out
    }
}

/// The lazily built, churn-following [`ShardedLakeIndex`] a pipeline keeps
/// warm across runs, keyed on [`DataLake::version`]. With the default
/// single shard the execution layer is a byte-for-byte passthrough over
/// one `LakeIndex` (no threads, no budget splits, no re-rank); with
/// [`PipelineBuilder::shards`]` > 1` the lake is striped across shards and
/// queries fan out in parallel.
struct IndexedDiscovery {
    kb: Arc<KnowledgeBase>,
    config: LakeIndexConfig,
    shards: usize,
    index: Option<ShardedLakeIndex>,
}

impl IndexedDiscovery {
    /// Make the index reflect the lake's current version: build on first
    /// use, apply the changelog delta on a version mismatch (each shard
    /// replays only its own stripe's events), no-op when already current.
    fn ensure_current(&mut self, lake: &DataLake) -> &ShardedLakeIndex {
        match &self.index {
            Some(index) => index.sync(lake),
            None => {
                self.index = Some(ShardedLakeIndex::build(
                    lake,
                    self.kb.clone(),
                    self.config.clone(),
                    self.shards,
                ));
            }
        }
        self.index.as_ref().expect("index just ensured")
    }

    /// The index, if it already reflects the lake's current version.
    fn current(&self, lake: &DataLake) -> Option<&ShardedLakeIndex> {
        self.index.as_ref().filter(|ix| ix.is_current(lake))
    }
}

/// The DIALITE pipeline. Build with [`Pipeline::builder`], or use
/// [`Pipeline::demo_default`] for the paper's demo configuration.
pub struct Pipeline {
    /// Maintained discovery over the (mutable) lake, if configured.
    /// `RwLock`, not `Mutex`: the steady state is many concurrent queries
    /// over an unchanged lake (read guard); the write guard is taken only
    /// to build or delta-sync after churn.
    indexed: Option<RwLock<IndexedDiscovery>>,
    discoveries: Vec<Box<dyn Discovery>>,
    matcher: HolisticMatcher,
    integrator: Box<dyn Integrator>,
    alternatives: Vec<Box<dyn Integrator>>,
    top_k: usize,
    budget: DiscoveryBudget,
}

/// Builder for [`Pipeline`].
pub struct PipelineBuilder {
    indexed: Option<IndexedDiscovery>,
    discoveries: Vec<Box<dyn Discovery>>,
    matcher: HolisticMatcher,
    integrator: Box<dyn Integrator>,
    alternatives: Vec<Box<dyn Integrator>>,
    top_k: usize,
    budget: DiscoveryBudget,
    shards: usize,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        PipelineBuilder {
            indexed: None,
            discoveries: Vec::new(),
            matcher: HolisticMatcher::default(),
            integrator: Box::new(AliteFd::default()),
            alternatives: Vec::new(),
            top_k: 5,
            budget: DiscoveryBudget::default(),
            shards: 1,
        }
    }
}

impl PipelineBuilder {
    /// Add a discovery engine (run in order; results unioned).
    pub fn discovery(mut self, d: Box<dyn Discovery>) -> Self {
        self.discoveries.push(d);
        self
    }

    /// Use a maintained index (SANTOS + LSH Ensemble behind a
    /// [`ShardedLakeIndex`]) as the discovery stage. The index is built
    /// lazily on the first [`Pipeline::run`] and then *kept* across runs:
    /// each run checks [`DataLake::version`] and applies only the lake's
    /// changelog delta instead of rebuilding — the churn-safe path for
    /// mutable lakes. [`PipelineBuilder::shards`] sets how many stripes
    /// the lake is partitioned into (default 1: the classic single
    /// `LakeIndex`, byte-for-byte).
    pub fn indexed_discovery(mut self, kb: Arc<KnowledgeBase>, config: LakeIndexConfig) -> Self {
        self.indexed = Some(IndexedDiscovery {
            kb,
            config,
            shards: 1,
            index: None,
        });
        self
    }

    /// Number of index shards the maintained discovery stage stripes the
    /// lake across (clamped to at least 1; default 1). Queries fan out
    /// across shards on scoped threads with per-shard
    /// [`QueryBudget::split`] slices and merge under the pipeline's one
    /// ordering rule; `shards(1)` is byte-for-byte the unsharded index.
    /// Only meaningful together with
    /// [`PipelineBuilder::indexed_discovery`]; plain engines are never
    /// sharded.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Replace the alignment matcher.
    pub fn matcher(mut self, m: HolisticMatcher) -> Self {
        self.matcher = m;
        self
    }

    /// Replace the primary integration operator (default: ALITE's FD).
    pub fn integrator(mut self, i: Box<dyn Integrator>) -> Self {
        self.integrator = i;
        self
    }

    /// Add an alternative integration operator for comparison (Fig. 6).
    pub fn alternative(mut self, i: Box<dyn Integrator>) -> Self {
        self.alternatives.push(i);
        self
    }

    /// Number of tables each discovery engine returns (§2.1: "users can
    /// control the number of tables returned").
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Work limits of the indexed discovery stage: the joinable leg's
    /// per-query [`QueryBudget`] and the SANTOS candidate cap. The default
    /// is generous but finite; [`DiscoveryBudget::unlimited`] reproduces
    /// the legacy probe-all stage exactly. Plain engines added via
    /// [`PipelineBuilder::discovery`] are not plannable and ignore the
    /// budget.
    pub fn discovery_budget(mut self, budget: DiscoveryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Finalize.
    pub fn build(self) -> Pipeline {
        let shards = self.shards;
        Pipeline {
            indexed: self.indexed.map(|mut ix| {
                ix.shards = shards;
                RwLock::new(ix)
            }),
            discoveries: self.discoveries,
            matcher: self.matcher,
            integrator: self.integrator,
            alternatives: self.alternatives,
            top_k: self.top_k,
            budget: self.budget,
        }
    }
}

impl Pipeline {
    /// Start building a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }

    /// Adjust the per-engine result count after construction.
    pub fn set_top_k(&mut self, k: usize) {
        self.top_k = k;
    }

    /// Adjust the discovery-stage budget after construction.
    pub fn set_discovery_budget(&mut self, budget: DiscoveryBudget) {
        self.budget = budget;
    }

    /// The discovery-stage budget [`Pipeline::run`] applies.
    pub fn discovery_budget(&self) -> DiscoveryBudget {
        self.budget
    }

    /// A snapshot of the rolling [`DiscoveryTelemetry`] the maintained
    /// index has accumulated across budgeted discovery calls — cache hit
    /// rate, partitions pruned, verification counts, budget-exhaustion
    /// rate and per-engine latency buckets. `None` when the pipeline has
    /// no indexed discovery or the index has not been built yet (no run
    /// has touched it).
    ///
    /// ```
    /// use dialite_core::{demo, Pipeline};
    /// use dialite_discovery::TableQuery;
    ///
    /// let lake = demo::covid_lake();
    /// let pipeline = Pipeline::demo_default(&lake);
    /// let query = TableQuery::with_column(demo::fig2_query(), 1);
    /// pipeline.run(&lake, &query).unwrap();
    ///
    /// let telemetry = pipeline.telemetry().expect("indexed pipeline");
    /// assert_eq!(telemetry.topk.queries, 1);
    /// assert_eq!(telemetry.santos.queries, 1);
    /// println!("{}", telemetry.summary());
    /// ```
    pub fn telemetry(&self) -> Option<DiscoveryTelemetry> {
        let guard = self
            .indexed
            .as_ref()?
            .read()
            .expect("indexed discovery lock");
        guard.index.as_ref().map(ShardedLakeIndex::telemetry)
    }

    /// The merged telemetry window as one JSON object
    /// ([`DiscoveryTelemetry::to_json`]): per-leg counters plus per-engine
    /// latency percentiles, with empty-window percentiles exported as
    /// `null`. Shard windows are merged *before* export (per-shard JSON
    /// rows would not be mergeable). `None` exactly when
    /// [`Pipeline::telemetry`] is `None`.
    ///
    /// ```
    /// use dialite_core::{demo, Pipeline};
    /// use dialite_discovery::TableQuery;
    ///
    /// let lake = demo::covid_lake();
    /// let pipeline = Pipeline::demo_default(&lake);
    /// let query = TableQuery::with_column(demo::fig2_query(), 1);
    /// pipeline.run(&lake, &query).unwrap();
    ///
    /// let json = pipeline.telemetry_json().expect("indexed pipeline");
    /// assert!(json.contains("\"topk\":{\"queries\":1"));
    /// assert!(json.contains("\"joinable_latency\""));
    /// ```
    pub fn telemetry_json(&self) -> Option<String> {
        self.telemetry().map(|t| t.to_json())
    }

    /// Total MinHash signatures the maintained index has computed so far
    /// (summed across shards). `None` without indexed discovery or before
    /// the first build. This is the warm-start metric the recovery oracle
    /// pins: after [`Pipeline::open_durable`] with a sketch-bearing
    /// snapshot, the count is `O(events since snapshot)`, not `O(lake)`.
    pub fn sketch_work(&self) -> Option<u64> {
        let guard = self
            .indexed
            .as_ref()?
            .read()
            .expect("indexed discovery lock");
        guard.index.as_ref().map(ShardedLakeIndex::sketch_work)
    }

    /// Zero the maintained index's telemetry window (no-op when no index
    /// exists yet).
    pub fn reset_telemetry(&self) {
        if let Some(indexed) = &self.indexed {
            let guard = indexed.read().expect("indexed discovery lock");
            if let Some(index) = guard.index.as_ref() {
                index.reset_telemetry();
            }
        }
    }

    /// Promote the pipeline's discovery stage to a standalone
    /// [`DiscoveryService`] — the concurrent serving layer: the service
    /// takes ownership of `lake`, indexes it with the pipeline's KB,
    /// index configuration and shard count
    /// ([`PipelineBuilder::shards`]), and serves version-stamped budgeted
    /// queries from many threads behind bounded admission
    /// (`max_in_flight`; see [`ServingConfig`]). The pipeline's own
    /// `top_k` and discovery budget become the service defaults; with
    /// more than one shard, writers lock one shard at a time while
    /// queries fan out over consistent snapshots.
    ///
    /// Returns `None` when the pipeline has no indexed discovery
    /// configured ([`PipelineBuilder::indexed_discovery`]) — plain
    /// engines are not churn-safe and cannot be served.
    ///
    /// ```
    /// use dialite_core::{demo, Pipeline};
    /// use dialite_discovery::TableQuery;
    ///
    /// let lake = demo::covid_lake();
    /// let pipeline = Pipeline::demo_default(&lake);
    /// let service = pipeline.serve(lake, 64).expect("indexed pipeline");
    /// let query = TableQuery::with_column(demo::fig2_query(), 1);
    /// let response = service.query_default(&query).expect("capacity");
    /// assert!(!response.results.is_empty());
    /// ```
    pub fn serve(&self, lake: DataLake, max_in_flight: usize) -> Option<DiscoveryService> {
        let guard = self
            .indexed
            .as_ref()?
            .read()
            .expect("indexed discovery lock");
        let serving = ServingConfig::default()
            .with_max_in_flight(max_in_flight)
            .with_budget(self.budget)
            .with_k(self.top_k);
        Some(DiscoveryService::with_shards(
            lake,
            guard.kb.clone(),
            guard.config.clone(),
            serving,
            guard.shards,
        ))
    }

    /// The paper's demo configuration over a given lake: a maintained
    /// index (SANTOS-style + LSH Ensemble discovery, built eagerly
    /// here and kept in sync with lake churn across runs) backed by the
    /// curated COVID KB, KB-assisted holistic matching, ALITE FD as the
    /// integrator and outer join as the comparison alternative.
    pub fn demo_default(lake: &DataLake) -> Pipeline {
        Pipeline::demo_sharded(lake, 1)
    }

    /// [`Pipeline::demo_default`] with the maintained index striped across
    /// `shards` index shards ([`PipelineBuilder::shards`]; clamped to at
    /// least 1) — what the CLI's `--shards` flag builds. `shards == 1` is
    /// exactly [`Pipeline::demo_default`].
    pub fn demo_sharded(lake: &DataLake, shards: usize) -> Pipeline {
        Pipeline::demo_configured(lake, shards, LakeIndexConfig::default())
    }

    /// [`Pipeline::demo_sharded`] with an explicit index configuration —
    /// what the CLI's `--metadata` flag builds (a third, header-matching
    /// discovery leg via `LakeIndexConfig::metadata`). The default config
    /// is exactly [`Pipeline::demo_sharded`].
    pub fn demo_configured(lake: &DataLake, shards: usize, config: LakeIndexConfig) -> Pipeline {
        let kb = Arc::new(covid_kb());
        let pipeline = Pipeline::builder()
            .indexed_discovery(kb.clone(), config)
            .shards(shards)
            .matcher(HolisticMatcher::default().with_annotator(Arc::new(KbAnnotator::new(kb))))
            .integrator(Box::new(AliteFd::default()))
            .alternative(Box::new(OuterJoinIntegrator))
            .build();
        if let Some(indexed) = &pipeline.indexed {
            indexed.write().expect("fresh lock").ensure_current(lake);
        }
        pipeline
    }

    /// Open (or create) a durable demo pipeline rooted at `dir`: recover
    /// the lake from the latest snapshot plus the commitlog tail
    /// (tolerating a torn tail), warm-start the maintained index from the
    /// persisted MinHash sketches instead of re-hashing the whole lake,
    /// and re-seed the process stamp source strictly past everything
    /// recovered — so versions minted after a restart can never collide
    /// with persisted history.
    ///
    /// Returns the pipeline (demo configuration, `shards` index stripes),
    /// the recovered lake, and the open durability handle, positioned for
    /// appending. Mutate-and-append through
    /// [`Pipeline::serve_durable`] or append manually with
    /// [`DurableLake::append_since`](dialite_durable::DurableLake::append_since).
    pub fn open_durable(
        dir: &Path,
        shards: usize,
        config: DurableConfig,
    ) -> io::Result<(Pipeline, DataLake, DurableLake)> {
        Pipeline::open_durable_configured(dir, shards, config, LakeIndexConfig::default())
    }

    /// [`Pipeline::open_durable`] with an explicit index configuration
    /// (e.g. the metadata leg enabled). The persisted sketches only cover
    /// the LSH leg, so warm-starting is config-agnostic: any extra legs
    /// are built fresh over the recovered snapshot.
    pub fn open_durable_configured(
        dir: &Path,
        shards: usize,
        config: DurableConfig,
        index_config: LakeIndexConfig,
    ) -> io::Result<(Pipeline, DataLake, DurableLake)> {
        let (durable, recovery) = DurableLake::open(dir, config)?;
        let kb = Arc::new(covid_kb());
        let pipeline = Pipeline::builder()
            .indexed_discovery(kb.clone(), index_config)
            .shards(shards)
            .matcher(HolisticMatcher::default().with_annotator(Arc::new(KbAnnotator::new(kb))))
            .integrator(Box::new(AliteFd::default()))
            .alternative(Box::new(OuterJoinIntegrator))
            .build();
        if let Some(indexed) = &pipeline.indexed {
            let mut guard = indexed.write().expect("fresh lock");
            // Build over the snapshot state — reusing persisted sketches
            // where they still match — then replay the commitlog tail as
            // an ordinary changelog delta: the restored snapshot lake's
            // log floor makes `sync` see exactly the replayed records.
            let index = match &recovery.sketches {
                Some(sketches) => ShardedLakeIndex::build_warm(
                    &recovery.snapshot,
                    guard.kb.clone(),
                    guard.config.clone(),
                    guard.shards,
                    sketches,
                ),
                None => ShardedLakeIndex::build(
                    &recovery.snapshot,
                    guard.kb.clone(),
                    guard.config.clone(),
                    guard.shards,
                ),
            };
            index.sync(&recovery.lake);
            guard.index = Some(index);
        }
        Ok((pipeline, recovery.lake, durable))
    }

    /// Write a durable snapshot of `lake` — including the maintained
    /// index's MinHash sketches, so the next [`Pipeline::open_durable`]
    /// warm-starts in `O(events since snapshot)` sketch work instead of
    /// `O(lake)` — and truncate the now-covered commitlog. The index is
    /// first caught up with the lake so the exported sketches match the
    /// snapshotted state.
    pub fn snapshot(&self, lake: &DataLake, durable: &mut DurableLake) -> io::Result<()> {
        let sketches = self.indexed.as_ref().map(|indexed| {
            let mut guard = indexed.write().expect("indexed discovery lock");
            guard.ensure_current(lake).export_sketches()
        });
        durable.write_snapshot(lake, sketches.as_ref())
    }

    /// [`Pipeline::serve`] with write-ahead durability: the returned
    /// [`DurableService`] appends every mutation's events to `durable`'s
    /// commitlog under the lake write lock (log order == serialization
    /// order) and can checkpoint on demand. When the pipeline's own index
    /// is current for `lake`, its sketches warm-start the serving index
    /// so handover does not re-hash the lake.
    ///
    /// Returns `None` when the pipeline has no indexed discovery
    /// configured, exactly like [`Pipeline::serve`].
    pub fn serve_durable(
        &self,
        lake: DataLake,
        max_in_flight: usize,
        durable: DurableLake,
    ) -> Option<DurableService> {
        let guard = self
            .indexed
            .as_ref()?
            .read()
            .expect("indexed discovery lock");
        let serving = ServingConfig::default()
            .with_max_in_flight(max_in_flight)
            .with_budget(self.budget)
            .with_k(self.top_k);
        let index = match guard.current(&lake) {
            Some(current) => {
                let sketches = current.export_sketches();
                ShardedLakeIndex::build_warm(
                    &lake,
                    guard.kb.clone(),
                    guard.config.clone(),
                    guard.shards,
                    &sketches,
                )
            }
            None => {
                ShardedLakeIndex::build(&lake, guard.kb.clone(), guard.config.clone(), guard.shards)
            }
        };
        let service = DiscoveryService::with_prebuilt(lake, index, serving);
        Some(crate::durable::DurableService::new(service, durable))
    }

    /// Budgeted top-k joinable discovery — the interactive hot path, run
    /// *without* the align/integrate stages.
    ///
    /// Routes through the maintained index's `TopKPlanner` (fanned out
    /// per shard when [`PipelineBuilder::shards`]` > 1`): the
    /// query-column signature is served from a small LRU on repeat
    /// queries, LSH partitions are probed best-bound-first with early
    /// termination, and candidates are verified on exact token posting
    /// lists. `budget` caps per-query work ([`QueryBudget::unlimited`]
    /// reproduces the probe-all results exactly). Like [`Pipeline::run`],
    /// the index first catches up with any lake churn.
    ///
    /// Plain discovery engines added via [`PipelineBuilder::discovery`]
    /// are merged in too (best score per table wins, as in
    /// [`Pipeline::run`]); the budget does not apply to them — they are
    /// not plannable — so a pipeline without indexed discovery degrades
    /// to an unbudgeted engine union.
    ///
    /// ```
    /// use dialite_core::{demo, Pipeline};
    /// use dialite_discovery::{QueryBudget, TableQuery};
    ///
    /// let lake = demo::covid_lake();
    /// let pipeline = Pipeline::demo_default(&lake);
    /// let query = TableQuery::with_column(demo::fig2_query(), 1); // City
    /// let hits = pipeline.discover_top_k(&lake, &query, 3, &QueryBudget::unlimited());
    /// assert_eq!(hits[0].table, "T3"); // joins on City
    /// ```
    pub fn discover_top_k(
        &self,
        lake: &DataLake,
        query: &TableQuery,
        k: usize,
        budget: &QueryBudget,
    ) -> Vec<Discovered> {
        let mut merged: Vec<Discovered> = Vec::new();
        if let Some(indexed) = &self.indexed {
            let guard = indexed.read().expect("indexed discovery lock");
            match guard.current(lake) {
                Some(index) => merged.extend(index.discover_top_k(query, k, budget)),
                None => {
                    drop(guard);
                    let mut guard = indexed.write().expect("indexed discovery lock");
                    merged.extend(guard.ensure_current(lake).discover_top_k(query, k, budget));
                }
            }
        }
        for engine in &self.discoveries {
            // The same sanitation `run` applies: rank + truncate each
            // engine's list before merging, so a table only a plain
            // engine's k+1-th slot would surface cannot appear here while
            // being absent from `run`'s integration set (the one-ordering
            // rule on [`PipelineRun::discovered`]).
            merged.extend(top_k_discovered(engine.discover(query, k), k));
        }
        // NaN-safe best-score union: degenerate engine scores propagate
        // as-is (ranked last) instead of becoming fabricated `-inf`s.
        let mut best: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
        dialite_discovery::merge_best_scores(&mut best, merged);
        top_k_discovered(
            best.into_iter()
                .map(|(table, score)| Discovered { table, score })
                .collect(),
            k,
        )
    }

    /// The discovery stage exactly as [`Pipeline::run`] executes it: the
    /// maintained index (caught up with lake churn, queried under the
    /// configured [`DiscoveryBudget`] through the planner and the capped
    /// SANTOS retrieval) followed by the plain engines, every hit list
    /// under the one ordering rule of [`PipelineRun::discovered`].
    /// Exposed so benchmarks and oracle tests can race the stage without
    /// paying for alignment and integration.
    pub fn discover_stage(
        &self,
        lake: &DataLake,
        query: &TableQuery,
    ) -> Vec<(String, Vec<Discovered>)> {
        let mut discovered = Vec::with_capacity(self.discoveries.len() + 2);
        if let Some(indexed) = &self.indexed {
            // Fast path: the index already matches the lake → query under
            // the shared read guard, so concurrent runs stay parallel.
            let guard = indexed.read().expect("indexed discovery lock");
            match guard.current(lake) {
                Some(index) => {
                    discovered.extend(index.discover_all_budgeted(query, self.top_k, &self.budget))
                }
                None => {
                    drop(guard);
                    // Slow path after churn: take the write guard, catch
                    // up (another thread may have done so meanwhile —
                    // ensure_current then no-ops) and query under it.
                    let mut guard = indexed.write().expect("indexed discovery lock");
                    let index = guard.ensure_current(lake);
                    discovered.extend(index.discover_all_budgeted(query, self.top_k, &self.budget));
                }
            }
        }
        for engine in &self.discoveries {
            // Plain engines are trusted for *scores*, not for shape: the
            // ordering rule re-ranks (NaN-last, name tie-breaks) and
            // truncates, so a misbehaving engine cannot leak an unsorted
            // or over-long list into the report or the integration set.
            discovered.push((
                engine.name().to_string(),
                top_k_discovered(engine.discover(query, self.top_k), self.top_k),
            ));
        }
        discovered
    }

    /// Run the full pipeline: discover an integration set for the query,
    /// align it, integrate it (plus alternatives).
    pub fn run(&self, lake: &DataLake, query: &TableQuery) -> Result<PipelineRun, PipelineError> {
        // Discover. The maintained index (if configured) first catches up
        // with any lake churn since the previous run; its joinable leg is
        // planner-routed and its SANTOS leg capped per `self.budget`.
        let discovered = self.discover_stage(lake, query);
        let results: Vec<Vec<Discovered>> =
            discovered.iter().map(|(_, hits)| hits.clone()).collect();
        let names = union_integration_set(&results);

        // Integration set = query + discovered tables.
        let mut integration_set: Vec<Arc<Table>> = vec![query.table.clone()];
        for name in &names {
            integration_set.push(lake.require(name)?);
        }
        if integration_set.len() == 1 && (self.indexed.is_some() || !self.discoveries.is_empty()) {
            return Err(PipelineError::EmptyIntegrationSet);
        }
        self.integrate_run(discovered, integration_set)
    }

    /// The "traditional data integration scenario" (§2.2): the integration
    /// set is given directly; discovery is skipped.
    pub fn integrate_set(&self, tables: Vec<Table>) -> Result<PipelineRun, PipelineError> {
        if tables.is_empty() {
            return Err(PipelineError::EmptyIntegrationSet);
        }
        let set: Vec<Arc<Table>> = tables.into_iter().map(Arc::new).collect();
        self.integrate_run(Vec::new(), set)
    }

    fn integrate_run(
        &self,
        discovered: Vec<(String, Vec<Discovered>)>,
        integration_set: Vec<Arc<Table>>,
    ) -> Result<PipelineRun, PipelineError> {
        // Align.
        let refs: Vec<&Table> = integration_set.iter().map(|t| t.as_ref()).collect();
        let alignment = self.matcher.align(&refs);

        // Integrate.
        let integrated = self.integrator.integrate(&refs, &alignment)?;
        let mut alternatives = Vec::with_capacity(self.alternatives.len());
        for alt in &self.alternatives {
            alternatives.push((alt.name().to_string(), alt.integrate(&refs, &alignment)?));
        }
        Ok(PipelineRun {
            discovered,
            integration_set,
            alignment,
            integrated,
            alternatives,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo;
    use dialite_analyze::{extremes, pearson_columns};
    use dialite_discovery::SimilarityDiscovery;
    use dialite_table::{table, Value};

    fn demo_run() -> PipelineRun {
        let lake = demo::covid_lake();
        let pipeline = Pipeline::demo_default(&lake);
        let query = TableQuery::with_column(demo::fig2_query(), 1);
        pipeline.run(&lake, &query).unwrap()
    }

    #[test]
    fn serve_promotes_indexed_discovery_to_a_service() {
        let lake = demo::covid_lake();
        let pipeline = Pipeline::demo_default(&lake);
        let service = pipeline.serve(lake, 16).expect("indexed pipeline serves");
        assert_eq!(service.config().max_in_flight, 16);
        assert_eq!(service.config().k, pipeline.top_k);
        let query = TableQuery::with_column(demo::fig2_query(), 1);
        let response = service.query_default(&query).unwrap();
        assert_eq!(response.version, service.version());
        assert!(response
            .results
            .iter()
            .any(|(_, hits)| hits.iter().any(|d| d.table == "T3")));
        // Churn through the service stays self-contained: the service owns
        // its lake copy and keeps serving the new state.
        let v = service.mutate(|lake| {
            lake.remove("T2");
        });
        assert!(v > response.version);
        assert!(service.query_default(&query).unwrap().version == v);

        // A pipeline without indexed discovery cannot serve.
        let plain = Pipeline::builder()
            .discovery(Box::new(SimilarityDiscovery::new(
                "noop",
                &demo::covid_lake(),
                |_: &Table, _: &Table| 0.0,
            )))
            .build();
        assert!(plain.serve(demo::covid_lake(), 16).is_none());
    }

    #[test]
    fn end_to_end_discovers_t2_and_t3() {
        let run = demo_run();
        let set: Vec<&str> = run.integration_set.iter().map(|t| t.name()).collect();
        assert!(set.contains(&"T1"), "{set:?}");
        assert!(
            set.contains(&"T2"),
            "unionable T2 must be discovered: {set:?}"
        );
        assert!(
            set.contains(&"T3"),
            "joinable T3 must be discovered: {set:?}"
        );
        assert!(!set.contains(&"animals"), "{set:?}");
    }

    #[test]
    fn end_to_end_reproduces_fig3_exactly() {
        let run = demo_run();
        let out = run.integrated.table();
        let expected = demo::fig3_expected();
        assert!(
            out.same_content(&expected),
            "pipeline output:\n{out}\nexpected (paper Fig. 3):\n{expected}"
        );
    }

    #[test]
    fn example3_analysis_over_pipeline_output() {
        let run = demo_run();
        let out = run.integrated.table();
        let col = |name: &str| {
            out.schema()
                .names()
                .position(|n| n.eq_ignore_ascii_case(name))
                .unwrap_or_else(|| panic!("column {name} missing"))
        };
        let rate = col("vaccination rate");
        let death = col("death rate");
        let cases = col("total cases");
        let r1 = pearson_columns(out, rate, death).unwrap();
        assert!((r1 - 0.16).abs() < 0.02, "paper says 0.16, got {r1:.3}");
        let r2 = pearson_columns(out, cases, rate).unwrap();
        assert!((r2 - 0.9).abs() < 0.02, "paper says 0.9, got {r2:.3}");
        // Boston lowest, Toronto highest.
        let (lo, hi) = extremes(out, rate).unwrap();
        let city = col("city");
        assert_eq!(out.row(lo).unwrap()[city], Value::Text("Boston".into()));
        assert_eq!(out.row(hi).unwrap()[city], Value::Text("Toronto".into()));
    }

    #[test]
    fn alternatives_are_computed() {
        let run = demo_run();
        assert_eq!(run.alternatives.len(), 1);
        assert_eq!(run.alternatives[0].0, "outer-join");
    }

    #[test]
    fn report_mentions_every_stage() {
        let run = demo_run();
        let report = run.report();
        for needle in ["== Discover ==", "== Align ==", "== Integrate ==", "santos"] {
            assert!(
                report.contains(needle),
                "report missing {needle}:\n{report}"
            );
        }
    }

    #[test]
    fn integrate_set_skips_discovery() {
        let (t4, t5, t6) = demo::fig7_tables();
        let pipeline = Pipeline::demo_default(&demo::covid_lake());
        let run = pipeline.integrate_set(vec![t4, t5, t6]).unwrap();
        assert!(run.discovered.is_empty());
        assert_eq!(run.integrated.table().row_count(), 3, "Fig. 8(b)");
    }

    #[test]
    fn empty_integration_set_is_an_error() {
        let pipeline = Pipeline::demo_default(&demo::covid_lake());
        assert!(matches!(
            pipeline.integrate_set(vec![]),
            Err(PipelineError::EmptyIntegrationSet)
        ));
    }

    #[test]
    fn user_defined_discovery_plugs_in() {
        // Fig. 4: an inner-join-size similarity as a user algorithm.
        let lake = demo::covid_lake();
        let custom = SimilarityDiscovery::new("inner-join-size", &lake, |q, t| {
            let mut best = 0usize;
            for qc in 0..q.column_count() {
                for tc in 0..t.column_count() {
                    let qs = q.column_token_set(qc);
                    let ts = t.column_token_set(tc);
                    best = best.max(qs.intersection(&ts).count());
                }
            }
            best as f64
        });
        let pipeline = Pipeline::builder()
            .discovery(Box::new(custom))
            .top_k(2)
            .build();
        let query = TableQuery::with_column(demo::fig2_query(), 1);
        let run = pipeline.run(&lake, &query).unwrap();
        assert_eq!(run.discovered.len(), 1);
        assert_eq!(run.discovered[0].0, "inner-join-size");
        let set: Vec<&str> = run.integration_set.iter().map(|t| t.name()).collect();
        assert!(set.contains(&"T3"), "T3 shares the most values: {set:?}");
    }

    #[test]
    fn custom_integrator_as_primary() {
        let pipeline = Pipeline::builder()
            .integrator(Box::new(OuterJoinIntegrator))
            .build();
        let (t4, t5, t6) = demo::fig7_tables();
        let run = pipeline.integrate_set(vec![t4, t5, t6]).unwrap();
        assert_eq!(run.integrated.table().row_count(), 5, "Fig. 8(a)");
    }

    #[test]
    fn discover_top_k_merges_plain_engines_with_the_index() {
        // A hybrid pipeline (indexed discovery + a plain engine): tables
        // only the plain engine can see must still surface from
        // discover_top_k, exactly as they do from run().
        let lake = demo::covid_lake();
        let always_gdp =
            SimilarityDiscovery::new(
                "gdp-fan",
                &lake,
                |_, t| {
                    if t.name() == "gdp" {
                        42.0
                    } else {
                        0.0
                    }
                },
            );
        let pipeline = Pipeline::builder()
            .indexed_discovery(
                Arc::new(covid_kb()),
                dialite_discovery::LakeIndexConfig::default(),
            )
            .discovery(Box::new(always_gdp))
            .build();
        let query = TableQuery::with_column(demo::fig2_query(), 1);
        let hits = pipeline.discover_top_k(
            &lake,
            &query,
            10,
            &dialite_discovery::QueryBudget::unlimited(),
        );
        assert!(
            hits.iter().any(|d| d.table == "gdp" && d.score == 42.0),
            "plain-engine result must not be dropped: {hits:?}"
        );
        assert!(
            hits.iter().any(|d| d.table == "T3"),
            "indexed joinable result must still be there: {hits:?}"
        );
    }

    #[test]
    fn pipeline_follows_lake_churn_across_runs() {
        // One pipeline, one maintained index: mutate the lake between runs
        // and the discovery stage must reflect the new state without being
        // rebuilt from scratch.
        let mut lake = demo::covid_lake();
        let pipeline = Pipeline::demo_default(&lake);
        let query = TableQuery::with_column(demo::fig2_query(), 1);

        let run1 = pipeline.run(&lake, &query).unwrap();
        let set1: Vec<&str> = run1.integration_set.iter().map(|t| t.name()).collect();
        assert!(set1.contains(&"T2") && set1.contains(&"T3"), "{set1:?}");

        // Churn: T2 (the unionable table) is withdrawn.
        lake.remove("T2").unwrap();
        let run2 = pipeline.run(&lake, &query).unwrap();
        let set2: Vec<&str> = run2.integration_set.iter().map(|t| t.name()).collect();
        assert!(
            !set2.contains(&"T2"),
            "withdrawn table discovered: {set2:?}"
        );
        assert!(set2.contains(&"T3"), "{set2:?}");

        // Churn: T2 comes back.
        lake.add(demo::fig2_unionable()).unwrap();
        let run3 = pipeline.run(&lake, &query).unwrap();
        let set3: Vec<&str> = run3.integration_set.iter().map(|t| t.name()).collect();
        assert!(set3.contains(&"T2"), "re-added table missing: {set3:?}");
        assert!(
            run3.integrated.table().same_content(&demo::fig3_expected()),
            "round-trip churn must restore the Fig. 3 output"
        );
    }

    #[test]
    fn indexed_pipeline_with_unrelated_query_errors_like_before() {
        let lake = demo::covid_lake();
        let pipeline = Pipeline::builder()
            .indexed_discovery(
                Arc::new(covid_kb()),
                dialite_discovery::LakeIndexConfig::default(),
            )
            .build();
        let query = TableQuery::new(table! {
            "offtopic"; ["isotope"];
            ["U-235"], ["C-14"],
        });
        // Indexed discovery counts as a discovery stage: an empty
        // integration set is an error, not a silent single-table run.
        match pipeline.run(&lake, &query) {
            Err(PipelineError::EmptyIntegrationSet) | Ok(_) => {}
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    /// A deliberately misbehaving plain engine: ignores `k`, returns an
    /// unsorted list with a NaN score — the shape the one-ordering rule
    /// must sanitize identically in `run` and `discover_top_k`.
    struct MessyEngine;

    impl Discovery for MessyEngine {
        fn name(&self) -> &str {
            "messy"
        }

        fn discover(&self, _query: &TableQuery, _k: usize) -> Vec<Discovered> {
            vec![
                Discovered {
                    table: "animals".into(),
                    score: f64::NAN,
                },
                Discovered {
                    table: "gdp".into(),
                    score: 0.1,
                },
                Discovered {
                    table: "T3".into(),
                    score: 0.9,
                },
                Discovered {
                    table: "T2".into(),
                    score: 0.05,
                },
            ]
        }
    }

    fn hybrid_messy_pipeline(k: usize) -> Pipeline {
        Pipeline::builder()
            .indexed_discovery(
                Arc::new(covid_kb()),
                dialite_discovery::LakeIndexConfig::default(),
            )
            .discovery(Box::new(MessyEngine))
            .top_k(k)
            .build()
    }

    #[test]
    fn hybrid_pipeline_orderings_follow_one_rule() {
        // Regression for the run-vs-discover_top_k ordering drift: both
        // paths must rank and truncate a plain engine's raw output with
        // the same NaN-last, name-tie-broken rule before using it.
        let lake = demo::covid_lake();
        let pipeline = hybrid_messy_pipeline(2);
        let query = TableQuery::with_column(demo::fig2_query(), 1);

        let run = pipeline.run(&lake, &query).unwrap();
        // Engine registration order: indexed legs first, then plain.
        let engines: Vec<&str> = run.discovered.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(engines, vec!["santos", "lsh-ensemble", "messy"]);
        // The messy list is re-ranked and truncated to top_k: the NaN and
        // the over-long tail are gone, scores descend.
        let messy = &run.discovered[2].1;
        assert_eq!(
            messy,
            &vec![
                Discovered {
                    table: "T3".into(),
                    score: 0.9
                },
                Discovered {
                    table: "gdp".into(),
                    score: 0.1
                },
            ]
        );
        // The engine's k+1-th slot (T2 at 0.05) must not leak into the
        // integration set through the raw list either.
        let set: Vec<&str> = run.integration_set.iter().map(|t| t.name()).collect();
        assert!(!set.contains(&"animals"), "NaN row leaked: {set:?}");

        // discover_top_k applies the identical sanitation: at k=2 the
        // messy tail cannot surface a table `run` would not.
        let hits = pipeline.discover_top_k(&lake, &query, 2, &QueryBudget::unlimited());
        assert_eq!(hits.len(), 2);
        assert!(
            hits.iter().all(|d| d.table != "T2" && d.table != "animals"),
            "sanitized tail leaked into the merged view: {hits:?}"
        );
        // Determinism: repeat calls agree exactly.
        assert_eq!(
            hits,
            pipeline.discover_top_k(&lake, &query, 2, &QueryBudget::unlimited())
        );
    }

    #[test]
    fn hybrid_merge_propagates_nan_without_outranking_real_scores() {
        let lake = demo::covid_lake();
        let pipeline = hybrid_messy_pipeline(10);
        let query = TableQuery::with_column(demo::fig2_query(), 1);
        let hits = pipeline.discover_top_k(&lake, &query, 10, &QueryBudget::unlimited());
        let animals = hits.iter().find(|d| d.table == "animals");
        match animals {
            Some(d) => {
                assert!(d.score.is_nan(), "NaN must propagate verbatim: {d:?}");
                assert_eq!(
                    hits.last().unwrap().table,
                    "animals",
                    "NaN ranks below every real score: {hits:?}"
                );
            }
            None => panic!("NaN-scored table dropped instead of propagated: {hits:?}"),
        }
    }

    #[test]
    fn default_budget_equals_unlimited_on_the_demo_lake() {
        // The default budget is generous: on a small lake it must not
        // change a single byte of the discovery stage.
        let lake = demo::covid_lake();
        let query = TableQuery::with_column(demo::fig2_query(), 1);
        let defaulted = Pipeline::demo_default(&lake);
        assert_eq!(defaulted.discovery_budget(), DiscoveryBudget::default());
        let mut unlimited = Pipeline::demo_default(&lake);
        unlimited.set_discovery_budget(DiscoveryBudget::unlimited());
        assert_eq!(
            defaulted.discover_stage(&lake, &query),
            unlimited.discover_stage(&lake, &query),
        );
    }

    #[test]
    fn telemetry_accumulates_across_runs_and_resets() {
        let lake = demo::covid_lake();
        let pipeline = Pipeline::demo_default(&lake);
        let query = TableQuery::with_column(demo::fig2_query(), 1);
        assert_eq!(
            pipeline.telemetry().expect("index built eagerly"),
            DiscoveryTelemetry::default(),
            "no queries recorded yet"
        );

        pipeline.run(&lake, &query).unwrap();
        pipeline.run(&lake, &query).unwrap();
        pipeline.discover_top_k(&lake, &query, 3, &QueryBudget::unlimited());
        let t = pipeline.telemetry().unwrap();
        assert_eq!(t.topk.queries, 3, "2 runs + 1 interactive top-k");
        assert_eq!(t.santos.queries, 2, "santos leg runs only in run()");
        assert_eq!(t.joinable_latency.samples, 3);

        pipeline.reset_telemetry();
        assert_eq!(pipeline.telemetry().unwrap(), DiscoveryTelemetry::default());

        // A pipeline without indexed discovery has nothing to report.
        let plain = Pipeline::builder().build();
        assert!(plain.telemetry().is_none());
        plain.reset_telemetry(); // and resetting it is a no-op, not a panic
    }

    /// The sketch-free index config of the oracle suites: discovery
    /// output becomes a pure function of lake state, so single-shard and
    /// sharded pipelines can be compared byte-for-byte (the sketch path is
    /// only *statistically* stable across shardings — per-shard ensembles
    /// partition their own domains).
    fn exact_index_config() -> LakeIndexConfig {
        LakeIndexConfig {
            santos: dialite_discovery::SantosConfig::default(),
            lshe: dialite_discovery::LshEnsembleConfig {
                num_perm: 64,
                num_partitions: 4,
                exact_fallback_below: usize::MAX,
                ..dialite_discovery::LshEnsembleConfig::default()
            },
            metadata: None,
        }
    }

    #[test]
    fn sharded_pipeline_is_byte_identical_to_single_shard() {
        let mut lake = demo::covid_lake();
        let single = Pipeline::builder()
            .indexed_discovery(Arc::new(covid_kb()), exact_index_config())
            .build();
        let sharded = Pipeline::builder()
            .indexed_discovery(Arc::new(covid_kb()), exact_index_config())
            .shards(3)
            .build();
        let query = TableQuery::with_column(demo::fig2_query(), 1);
        assert_eq!(
            single.discover_stage(&lake, &query),
            sharded.discover_stage(&lake, &query),
            "fan-out + merge must reproduce the single index exactly"
        );

        // Churn between runs: each shard replays only its own stripe of
        // the changelog, and the outputs stay in lockstep.
        lake.remove("T2").unwrap();
        assert_eq!(
            single.discover_stage(&lake, &query),
            sharded.discover_stage(&lake, &query),
        );
        assert_eq!(
            single.discover_top_k(&lake, &query, 4, &QueryBudget::unlimited()),
            sharded.discover_top_k(&lake, &query, 4, &QueryBudget::unlimited()),
        );

        // serve() carries the shard count into the service.
        let service = sharded.serve(lake, 16).expect("indexed pipeline");
        assert_eq!(service.shard_count(), 3);
        let response = service.query_default(&query).unwrap();
        assert!(response
            .results
            .iter()
            .any(|(_, hits)| hits.iter().any(|d| d.table == "T3")));
    }

    #[test]
    fn shards_zero_clamps_to_one() {
        let lake = demo::covid_lake();
        let pipeline = Pipeline::builder()
            .indexed_discovery(Arc::new(covid_kb()), exact_index_config())
            .shards(0)
            .build();
        let service = pipeline.serve(lake, 16).expect("indexed pipeline");
        assert_eq!(service.shard_count(), 1);
    }

    #[test]
    fn telemetry_json_exports_the_merged_window() {
        let lake = demo::covid_lake();
        let pipeline = Pipeline::demo_default(&lake);
        let fresh = pipeline.telemetry_json().expect("index built eagerly");
        assert!(fresh.contains("\"queries\":0"), "{fresh}");

        let query = TableQuery::with_column(demo::fig2_query(), 1);
        pipeline.run(&lake, &query).unwrap();
        let json = pipeline.telemetry_json().unwrap();
        assert!(json.contains("\"topk\":{\"queries\":1"), "{json}");
        assert!(json.contains("\"santos\":{\"queries\":1"), "{json}");
        assert!(json.contains("\"joinable_latency\""), "{json}");

        // No indexed discovery → nothing to export.
        assert!(Pipeline::builder().build().telemetry_json().is_none());
    }

    #[test]
    fn pipeline_error_display() {
        let e = PipelineError::EmptyIntegrationSet;
        assert!(e.to_string().contains("empty"));
        let e = PipelineError::Table(TableError::UnknownTable { table: "x".into() });
        assert!(e.to_string().contains('x'));
    }

    #[test]
    fn off_topic_query_may_yield_no_results() {
        // §3.1 footnote: an off-topic query "may yield no results".
        let lake = demo::covid_lake();
        let pipeline = Pipeline::demo_default(&lake);
        let query = TableQuery::new(table! {
            "offtopic"; ["isotope", "half_life"];
            ["U-235", 7.04e8],
            ["C-14", 5.73e3],
        });
        match pipeline.run(&lake, &query) {
            Err(PipelineError::EmptyIntegrationSet) => {}
            Ok(run) => {
                // Anything that *was* discovered must at least be scored.
                assert!(run
                    .discovered
                    .iter()
                    .all(|(_, hits)| hits.iter().all(|d| d.score > 0.0)));
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
}
