//! # dialite-core
//!
//! The DIALITE pipeline (paper Fig. 1): **Discover → Align & Integrate →
//! Analyze**, with every stage pluggable — the extensibility that §3.2
//! demonstrates:
//!
//! * any number of [`Discovery`] engines (SANTOS-style, LSH Ensemble,
//!   exact overlap, user-defined closures — Fig. 4);
//! * a configurable holistic matcher for alignment;
//! * a primary [`Integrator`] (ALITE's FD by default) plus alternative
//!   operators for comparison (outer join — Fig. 6);
//! * downstream analysis via `dialite-analyze` over the integrated table.
//!
//! ```
//! use dialite_core::{demo, Pipeline};
//! use dialite_discovery::TableQuery;
//!
//! let lake = demo::covid_lake();
//! let pipeline = Pipeline::demo_default(&lake);
//! let query = TableQuery::with_column(demo::fig2_query(), 1); // City
//! let run = pipeline.run(&lake, &query).unwrap();
//! assert!(run.integrated.table().row_count() >= 7);
//! ```

pub mod demo;
mod durable;
mod pipeline;

pub use durable::DurableService;
pub use pipeline::{Pipeline, PipelineBuilder, PipelineError, PipelineRun};

// Durability layer handles, re-exported so durable pipelines need only
// this crate: `Pipeline::open_durable` / `Pipeline::serve_durable`.
pub use dialite_durable::{DurableConfig, DurableLake, Recovery};

// Re-export the stage traits so downstream users need only this crate.
pub use dialite_align::{Alignment, HolisticMatcher};
pub use dialite_analyze::{EntityResolver, GroupBy};
pub use dialite_discovery::{
    Discovered, Discovery, DiscoveryBudget, DiscoveryService, DiscoveryTelemetry, QueryBudget,
    ServingConfig, ServingError, ServingResponse, ServingTelemetry, TableQuery, TopKPlanner,
};
pub use dialite_integrate::{IntegratedTable, Integrator};
