//! Durable serving: a [`DiscoveryService`] whose mutations are appended to
//! an on-disk commitlog *under the same write lock that serializes them*,
//! so log order always equals serialization order (the PR 6 invariant:
//! "equal versions imply identical history" — now across restarts too).
//!
//! Built by [`Pipeline::serve_durable`](crate::Pipeline::serve_durable);
//! recovery is [`Pipeline::open_durable`](crate::Pipeline::open_durable).

use std::io;
use std::sync::Mutex;

use dialite_discovery::DiscoveryService;
use dialite_durable::DurableLake;
use dialite_table::DataLake;

/// The durability handle plus its health. After a failed append the log
/// may have a hole (the lake moved but the records never landed), so
/// further appends are refused until a snapshot re-establishes coverage.
struct LogState {
    lake: DurableLake,
    broken: bool,
}

/// A [`DiscoveryService`] with write-ahead durability: every mutation is
/// appended to the commitlog before the lake write guard is released, and
/// [`DurableService::snapshot`] checkpoints lake + index sketches so the
/// next open replays only the tail.
///
/// Queries go straight to the wrapped service
/// ([`DurableService::service`]) — reads never touch the log.
pub struct DurableService {
    service: DiscoveryService,
    /// Locked strictly *inside* the service's lake guard (write guard for
    /// mutations, read guard for snapshots), so the lock order is acyclic
    /// and appends land in serialization order.
    durable: Mutex<LogState>,
}

impl DurableService {
    /// Wrap an already-recovered service + durability handle. The log
    /// must already cover the served lake (which
    /// [`Pipeline::open_durable`](crate::Pipeline::open_durable)
    /// guarantees).
    pub(crate) fn new(service: DiscoveryService, durable: DurableLake) -> DurableService {
        DurableService {
            service,
            durable: Mutex::new(LogState {
                lake: durable,
                broken: false,
            }),
        }
    }

    /// The wrapped serving layer: queries, telemetry, version stamps.
    pub fn service(&self) -> &DiscoveryService {
        &self.service
    }

    /// Apply one lake mutation, append its events to the commitlog under
    /// the write lock, and return the post-mutation lake version.
    ///
    /// If a previous append failed, the mutation is **refused** (the lake
    /// is not touched) until [`DurableService::snapshot`] succeeds —
    /// otherwise the log would replay into a state missing the lost
    /// records.
    pub fn mutate<R>(&self, f: impl FnOnce(&mut DataLake) -> R) -> io::Result<u64> {
        let mut outcome: io::Result<()> = Ok(());
        let version = self.service.mutate(|lake| {
            let mut log = self.durable.lock().expect("durable lock");
            if log.broken {
                outcome = Err(io::Error::other(
                    "commitlog has a hole after a failed append; write a snapshot to resume",
                ));
                return;
            }
            let since = lake.version();
            let _ = f(lake);
            if let Err(e) = log.lake.append_since(lake, since) {
                log.broken = true;
                outcome = Err(e);
            }
        });
        outcome.map(|_| version)
    }

    /// Checkpoint the served lake (and the index's MinHash sketches) to a
    /// durable snapshot, truncating the now-covered log. Runs over a
    /// consistent lake+index view, so a concurrent mutation is either
    /// fully before or fully after the snapshot.
    pub fn snapshot(&self) -> io::Result<()> {
        self.service.with_state(|lake, index| {
            let sketches = index.export_sketches();
            let mut log = self.durable.lock().expect("durable lock");
            log.lake.write_snapshot(lake, Some(&sketches))?;
            log.broken = false;
            Ok(())
        })
    }

    /// Force buffered log appends to stable storage (the explicit flush
    /// for [`DurableConfig::fsync_every`](crate::DurableConfig) `= 0`).
    pub fn sync(&self) -> io::Result<()> {
        self.durable.lock().expect("durable lock").lake.sync()
    }

    /// Records currently in the commitlog (since the last snapshot).
    pub fn log_len(&self) -> usize {
        self.durable.lock().expect("durable lock").lake.log_len()
    }
}
